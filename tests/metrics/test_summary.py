"""format_table rendering and SLO percentile helpers."""

import pytest

from repro.metrics import percentile, percentiles
from repro.metrics.summary import format_table


def test_format_table_renders_aligned_columns():
    out = format_table(["name", "value"], [["a", 1.25], ["bb", 10.0]])
    lines = out.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert len({len(line) for line in lines}) == 1  # rectangular


def test_format_table_names_the_ragged_row():
    """Regression: a short row used to crash deep in column sizing with
    an opaque IndexError; it must name the offending row instead."""
    with pytest.raises(ValueError, match=r"row 1 has 2 cell\(s\)"):
        format_table(["a", "b", "c"], [[1, 2, 3], [4, 5]])


def test_format_table_names_the_long_row_too():
    with pytest.raises(ValueError, match="row 0 has 4"):
        format_table(["a", "b", "c"], [[1, 2, 3, 4]])


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 50.0) == 20.0
    assert percentile(values, 95.0) == 40.0
    assert percentile(values, 99.0) == 40.0
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 100.0) == 40.0


def test_percentile_single_sample():
    assert percentile([7.5], 50.0) == 7.5
    assert percentile([7.5], 99.0) == 7.5


def test_percentile_is_an_observed_sample():
    values = [3.0, 1.0, 2.0]
    for q in (1.0, 25.0, 50.0, 75.0, 99.0):
        assert percentile(values, q) in values


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_percentiles_keys_and_ordering():
    stats = percentiles([5.0, 1.0, 9.0, 3.0, 7.0])
    assert set(stats) == {"p50", "p95", "p99"}
    assert stats["p50"] <= stats["p95"] <= stats["p99"]
