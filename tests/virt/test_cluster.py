"""Tests for PhysicalHost, VM, and the cluster builder."""

import pytest

from repro.iosched import scheduler_factory
from repro.sim import Environment
from repro.virt import ClusterConfig, SchedulerPair, VirtualCluster

MB = 1024 * 1024


def small_config(**overrides):
    return ClusterConfig(**{"hosts": 2, "vms_per_host": 2, **overrides})


def test_cluster_builds_requested_shape():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    assert len(cluster.hosts) == 2
    assert len(cluster.vms) == 4
    assert {vm.vm_id for vm in cluster.vms} == {"h0v0", "h0v1", "h1v0", "h1v1"}


def test_initial_pair_installed_everywhere():
    env = Environment()
    pair = SchedulerPair("anticipatory", "deadline")
    cluster = VirtualCluster(env, small_config(initial_pair=pair))
    for host in cluster.hosts:
        assert host.disk.scheduler.name == "anticipatory"
        for vm in host.vms:
            assert vm.scheduler_name == "deadline"
    assert cluster.current_pair == pair


def test_vm_images_are_disjoint_and_spread():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    host = cluster.hosts[0]
    offs = [vm.vdisk.lba_offset for vm in host.vms]
    caps = [vm.vdisk.capacity_sectors for vm in host.vms]
    assert offs[0] + caps[0] <= offs[1]
    # Images are spread across the platter: gap is a sizable fraction.
    assert offs[1] - offs[0] >= host.geometry.total_sectors // 4


def test_set_pair_switches_all_levels():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    target = SchedulerPair("deadline", "noop")
    done = cluster.set_pair(target)
    env.run(until=done)
    for host in cluster.hosts:
        assert host.disk.scheduler.name == "deadline"
        for vm in host.vms:
            assert vm.scheduler_name == "noop"
    assert cluster.current_pair == target


def test_host_current_pair_reports_installed():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    host = cluster.hosts[0]
    assert host.current_pair == SchedulerPair("cfq", "cfq")


def test_host_full_rejects_extra_vm():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    host = cluster.hosts[0]
    with pytest.raises(RuntimeError):
        host.add_vm("extra", scheduler_factory("cfq"))


def test_vm_lookup():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    vm = cluster.vm("h1v0")
    assert vm.vm_id == "h1v0"
    assert cluster.host_of(vm).name == "h1"
    with pytest.raises(KeyError):
        cluster.vm("nope")


def test_vm_end_to_end_file_io():
    """A VM writes a file, syncs it, reads it back — across the stack."""
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    vm = cluster.vms[0]
    host = cluster.hosts[0]

    def task(vm):
        f = vm.create_file("data", 8 * MB)
        yield from vm.write_file(f, 0, 8 * MB, "task")
        yield from vm.fsync(f, "task")
        yield from vm.read_file(f, 0, 8 * MB, "task")

    p = env.process(task(vm))
    env.run(until=p)
    assert host.disk.stats.write_bytes >= 8 * MB
    assert env.now > 0


def test_vm_compute_uses_processor_sharing():
    env = Environment()
    cluster = VirtualCluster(env, small_config())
    vm = cluster.vms[0]
    j1 = vm.compute(1.0)
    j2 = vm.compute(1.0)
    env.run(until=j2)
    assert env.now == pytest.approx(2.0)  # two jobs share 1 VCPU


def test_config_with_helper():
    cfg = small_config()
    cfg2 = cfg.with_(hosts=6)
    assert cfg2.hosts == 6
    assert cfg2.vms_per_host == cfg.vms_per_host


def test_two_vms_contend_on_shared_disk():
    """Concurrent streams from two VMs take longer than one (interference)."""

    def run(n_vms):
        env = Environment()
        cluster = VirtualCluster(env, small_config(hosts=1))
        done = []

        def task(vm, i):
            f = vm.create_file("data", 16 * MB)
            yield from vm.write_file(f, 0, 16 * MB, f"t{i}")
            yield from vm.fsync(f, f"t{i}")
            done.append(env.now)

        procs = [
            env.process(task(vm, i))
            for i, vm in enumerate(cluster.vms[:n_vms])
        ]
        for p in procs:
            env.run(until=p)
        return max(done)

    assert run(2) > run(1)
