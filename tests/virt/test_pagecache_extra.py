"""Additional page-cache behaviours: drop, partial chunks, stats."""

import numpy as np
import pytest

from repro.disk import DiskDevice, ServiceTimeModel
from repro.iosched import NoopScheduler
from repro.sim import Environment
from repro.virt import (
    GuestFilesystem,
    PageCache,
    PageCacheParams,
    VirtualBlockDevice,
)

MB = 1024 * 1024


def make_cache(env, **over):
    params = PageCacheParams(**{
        "capacity_bytes": 64 * MB,
        "dirty_background_bytes": 8 * MB,
        "dirty_limit_bytes": 32 * MB,
        **over,
    })
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    dom0 = DiskDevice(env, NoopScheduler(), model)
    vdisk = VirtualBlockDevice(env, NoopScheduler(), dom0, "vm0", 0, 200_000_000)
    fs = GuestFilesystem(200_000_000, fragmentation=0.0)
    return PageCache(env, vdisk, params), vdisk, fs


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)


def test_drop_evicts_clean_keeps_dirty():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    clean = fs.create("clean", 2 * MB)
    dirty = fs.create("dirty", 2 * MB)
    run(env, cache.read(clean, 0, 2 * MB, "r"))
    run(env, cache.write(dirty, 0, 2 * MB, "w"))
    cache.drop()
    # Clean chunks gone; dirty survive (they still must reach disk).
    assert cache.dirty_bytes == 2 * MB
    before = vdisk.stats.read_bytes
    run(env, cache.read(clean, 0, 2 * MB, "r"))
    assert vdisk.stats.read_bytes > before  # re-read hits disk


def test_drop_single_file_only():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    a = fs.create("a", 2 * MB)
    b = fs.create("b", 2 * MB)
    run(env, cache.read(a, 0, 2 * MB, "r"))
    run(env, cache.read(b, 0, 2 * MB, "r"))
    cache.drop(a)
    before = vdisk.stats.read_bytes
    run(env, cache.read(b, 0, 2 * MB, "r"))  # still cached
    assert vdisk.stats.read_bytes == before
    run(env, cache.read(a, 0, 2 * MB, "r"))  # dropped
    assert vdisk.stats.read_bytes > before


def test_partial_tail_chunk_io_clamped_to_file_size():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    # 1.5 MB file: second chunk is a partial tail.
    f = fs.create("tail", MB + MB // 2)
    run(env, cache.write(f, 0, MB + MB // 2, "w", sync=True))
    assert vdisk.stats.write_bytes == MB + MB // 2


def test_hit_and_miss_counters():
    env = Environment()
    cache, _, fs = make_cache(env)
    f = fs.create("data", 4 * MB)
    run(env, cache.read(f, 0, 4 * MB, "r"))
    misses_after_cold = cache.misses
    run(env, cache.read(f, 0, 4 * MB, "r"))
    assert cache.misses == misses_after_cold
    assert cache.hits >= 4


def test_interleaved_hit_miss_ranges_read_correct_bytes():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("data", 6 * MB)
    # Warm the middle chunks only.
    run(env, cache.read(f, 2 * MB, 2 * MB, "r"))
    before = vdisk.stats.read_bytes
    run(env, cache.read(f, 0, 6 * MB, "r"))
    # Only the cold 4 MB (head + tail) hit the disk.
    assert vdisk.stats.read_bytes - before == 4 * MB
