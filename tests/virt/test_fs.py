"""Unit tests for the guest filesystem."""

import numpy as np
import pytest

from repro.disk import SECTOR_SIZE
from repro.virt import GuestFilesystem


def test_create_contiguous_file():
    fs = GuestFilesystem(total_sectors=10_000, fragmentation=0.0)
    f = fs.create("a", 100 * SECTOR_SIZE)
    assert len(f.extents) == 1
    assert f.extents[0].nsectors == 100
    assert f.allocated_bytes == 100 * SECTOR_SIZE


def test_size_rounds_up_to_sector():
    fs = GuestFilesystem(total_sectors=10_000)
    f = fs.create("a", SECTOR_SIZE + 1)
    assert f.extents[0].nsectors == 2
    assert f.size_bytes == SECTOR_SIZE + 1


def test_files_do_not_overlap():
    fs = GuestFilesystem(total_sectors=100_000, fragmentation=0.0)
    files = [fs.create(f"f{i}", 1000 * SECTOR_SIZE) for i in range(5)]
    spans = sorted(
        (e.lba, e.end_lba) for f in files for e in f.extents
    )
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_duplicate_name_rejected():
    fs = GuestFilesystem(total_sectors=10_000)
    fs.create("a", 100)
    with pytest.raises(FileExistsError):
        fs.create("a", 100)


def test_create_or_replace():
    fs = GuestFilesystem(total_sectors=100_000)
    f1 = fs.create_or_replace("a", 100)
    f2 = fs.create_or_replace("a", 200)
    assert fs.lookup("a") is f2
    assert f2.size_bytes == 200


def test_delete():
    fs = GuestFilesystem(total_sectors=10_000)
    fs.create("a", 100)
    fs.delete("a")
    assert fs.lookup("a") is None
    with pytest.raises(FileNotFoundError):
        fs.delete("a")


def test_full_filesystem_raises():
    fs = GuestFilesystem(total_sectors=100)
    with pytest.raises(OSError):
        fs.create("big", 101 * SECTOR_SIZE)


def test_fragmented_allocation_splits_large_files():
    rng = np.random.default_rng(0)
    fs = GuestFilesystem(total_sectors=10_000_000, fragmentation=0.8, rng=rng)
    f = fs.create("big", 8000 * SECTOR_SIZE)
    assert len(f.extents) >= 2
    assert sum(e.nsectors for e in f.extents) == 8000


def test_ranges_single_extent():
    fs = GuestFilesystem(total_sectors=10_000, fragmentation=0.0)
    f = fs.create("a", 1000 * SECTOR_SIZE)
    base = f.extents[0].lba
    runs = list(f.ranges(0, 10 * SECTOR_SIZE))
    assert runs == [(base, 10)]
    runs = list(f.ranges(5 * SECTOR_SIZE, 10 * SECTOR_SIZE))
    assert runs == [(base + 5, 10)]


def test_ranges_cross_extents():
    fs = GuestFilesystem(total_sectors=100_000, fragmentation=0.0)
    f = fs.create("a", 10 * SECTOR_SIZE)
    # Manufacture a second extent manually to control the split.
    from repro.virt import Extent

    f.extents = [Extent(0, 5), Extent(1000, 5)]
    runs = list(f.ranges(3 * SECTOR_SIZE, 4 * SECTOR_SIZE))
    assert runs == [(3, 2), (1000, 2)]


def test_ranges_sub_sector_rounding():
    fs = GuestFilesystem(total_sectors=10_000, fragmentation=0.0)
    f = fs.create("a", 10 * SECTOR_SIZE)
    base = f.extents[0].lba
    # 100 bytes starting at byte 200 → sectors 0 and 1 (rounded outward).
    runs = list(f.ranges(200, 400))
    assert runs == [(base, 2)]


def test_ranges_past_end_raises():
    fs = GuestFilesystem(total_sectors=10_000, fragmentation=0.0)
    f = fs.create("a", 10 * SECTOR_SIZE)
    with pytest.raises(ValueError):
        list(f.ranges(0, 11 * SECTOR_SIZE))


def test_ranges_zero_length_empty():
    fs = GuestFilesystem(total_sectors=10_000)
    f = fs.create("a", 10 * SECTOR_SIZE)
    assert list(f.ranges(0, 0)) == []


def test_invalid_params():
    with pytest.raises(ValueError):
        GuestFilesystem(total_sectors=0)
    with pytest.raises(ValueError):
        GuestFilesystem(total_sectors=10, fragmentation=1.0)
