"""Integration tests for the virtual block device and the Dom0 path."""

import numpy as np
import pytest

from repro.disk import BlockRequest, DiskDevice, IoOp, ServiceTimeModel
from repro.iosched import NoopScheduler, scheduler_factory
from repro.sim import Environment
from repro.virt import VirtualBlockDevice


def make_stack(env, ring_slots=32, guest_sched=None, dom0_sched=None):
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    dom0 = DiskDevice(env, dom0_sched or NoopScheduler(), model, name="sda")
    vdisk = VirtualBlockDevice(
        env,
        guest_sched or NoopScheduler(),
        dom0,
        vm_id="vm0",
        lba_offset=500_000_000,
        capacity_sectors=100_000_000,
        ring_slots=ring_slots,
    )
    return dom0, vdisk


def req(lba, n=256, op=IoOp.READ, pid="task", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def test_request_translated_to_physical_offset():
    env = Environment()
    dom0, vdisk = make_stack(env)
    seen = []
    orig_submit = dom0.submit

    def spy(request):
        seen.append(request)
        return orig_submit(request)

    dom0.submit = spy
    done = vdisk.submit(req(1000))
    env.run(until=done)
    assert len(seen) == 1
    assert seen[0].lba == 500_001_000
    assert seen[0].process_id == "vm0"  # VM identity at Dom0 level
    assert seen[0].sync  # sync class preserved


def test_guest_completion_fires():
    env = Environment()
    _, vdisk = make_stack(env)
    done = vdisk.submit(req(0))
    env.run(until=done)
    assert done.value.complete_time == env.now
    assert vdisk.stats.read_count == 1


def test_beyond_capacity_rejected():
    env = Environment()
    _, vdisk = make_stack(env)
    vdisk.submit(req(99_999_900, 256))
    with pytest.raises(ValueError):
        env.run()


def test_ring_backpressure_limits_outstanding():
    env = Environment()
    dom0, vdisk = make_stack(env, ring_slots=4)
    max_seen = 0
    orig = dom0.submit

    def spy(request):
        nonlocal max_seen
        max_seen = max(max_seen, vdisk._outstanding())
        return orig(request)

    dom0.submit = spy
    # Submit far more than the ring holds; spread LBAs to avoid merging.
    for i in range(40):
        vdisk.submit(req(i * 10_000, 256))
    env.run()
    assert max_seen <= 4
    assert vdisk.stats.read_count == 40


def test_larger_ring_lets_dom0_elevator_sort():
    """With ring=1 Dom0 sees one request at a time and cannot reorder;
    a deeper ring exposes a sortable batch, cutting total seek time."""
    from repro.iosched import DeadlineScheduler

    lbas = (np.random.default_rng(3).integers(0, 90_000_000, 64) // 256 * 256)

    def total_time(slots):
        env = Environment()
        _, vdisk = make_stack(
            env, ring_slots=slots, dom0_sched=DeadlineScheduler()
        )
        for lba in lbas:
            vdisk.submit(req(int(lba), 256))
        env.run()
        return env.now

    assert total_time(32) < total_time(1)


def test_guest_scheduler_switch_while_running():
    env = Environment()
    _, vdisk = make_stack(env)
    for i in range(10):
        vdisk.submit(req(i * 100_000, 256))
    done = vdisk.switch_scheduler(scheduler_factory("deadline"))
    env.run()
    assert done.processed
    assert vdisk.scheduler.name == "deadline"


def test_two_vdisks_share_dom0_disk():
    env = Environment()
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    dom0 = DiskDevice(env, NoopScheduler(), model, name="sda")
    v1 = VirtualBlockDevice(
        env, NoopScheduler(), dom0, "vm1", 0, 100_000_000
    )
    v2 = VirtualBlockDevice(
        env, NoopScheduler(), dom0, "vm2", 900_000_000, 100_000_000
    )
    for i in range(5):
        v1.submit(req(i * 10_000))
        v2.submit(req(i * 10_000))
    env.run()
    assert dom0.stats.total_requests == 10
    assert v1.stats.read_count == 5
    assert v2.stats.read_count == 5


def test_invalid_construction():
    env = Environment()
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    dom0 = DiskDevice(env, NoopScheduler(), model)
    with pytest.raises(ValueError):
        VirtualBlockDevice(env, NoopScheduler(), dom0, "v", 0, 100, ring_slots=0)
    with pytest.raises(ValueError):
        VirtualBlockDevice(env, NoopScheduler(), dom0, "v", -1, 100)
    with pytest.raises(ValueError):
        VirtualBlockDevice(env, NoopScheduler(), dom0, "v", 0, 0)
