"""Unit tests for scheduler pairs."""

import pytest

from repro.virt import DEFAULT_PAIR, SchedulerPair, all_pairs, pairs_excluding_noop_vmm


def test_default_pair_is_cfq_cfq():
    assert DEFAULT_PAIR.vmm == "cfq"
    assert DEFAULT_PAIR.vm == "cfq"


def test_canonicalizes_aliases():
    p = SchedulerPair("AS", "dl")
    assert p.vmm == "anticipatory"
    assert p.vm == "deadline"


def test_str_matches_paper_notation():
    assert str(SchedulerPair("anticipatory", "deadline")) == "(AS, DL)"
    assert str(DEFAULT_PAIR) == "(CFQ, CFQ)"


def test_label_two_letters():
    assert SchedulerPair("anticipatory", "deadline").label == "ad"
    assert SchedulerPair("cfq", "noop").label == "cn"


def test_parse_variants():
    assert SchedulerPair.parse("(AS, DL)") == SchedulerPair("anticipatory", "deadline")
    assert SchedulerPair.parse("cfq,noop") == SchedulerPair("cfq", "noop")
    assert SchedulerPair.parse("ad") == SchedulerPair("anticipatory", "deadline")


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        SchedulerPair.parse("xy")
    with pytest.raises(ValueError):
        SchedulerPair.parse("not-a-pair-at-all")


def test_all_pairs_is_16_unique():
    pairs = all_pairs()
    assert len(pairs) == 16
    assert len(set(pairs)) == 16
    assert DEFAULT_PAIR in pairs


def test_pairs_excluding_noop_vmm_is_12():
    pairs = pairs_excluding_noop_vmm()
    assert len(pairs) == 12
    assert all(p.vmm != "noop" for p in pairs)


def test_pair_equality_and_hash():
    a = SchedulerPair("AS", "DL")
    b = SchedulerPair("anticipatory", "deadline")
    assert a == b
    assert hash(a) == hash(b)
