"""Host-level control-plane details: per-host switching, current_pair."""

import pytest

from repro.iosched import scheduler_factory
from repro.mapreduce import MB
from repro.sim import Environment
from repro.virt import ClusterConfig, PageCacheParams, SchedulerPair, VirtualCluster


def small_cluster(env):
    return VirtualCluster(
        env,
        ClusterConfig(
            hosts=2,
            vms_per_host=2,
            pagecache=PageCacheParams(
                capacity_bytes=40 * MB,
                dirty_background_bytes=2 * MB,
                dirty_limit_bytes=8 * MB,
            ),
        ),
    )


def test_single_host_switch_leaves_others_alone():
    env = Environment()
    cluster = small_cluster(env)
    done = cluster.hosts[0].set_pair(SchedulerPair("anticipatory", "deadline"))
    env.run(until=done)
    assert cluster.hosts[0].current_pair == SchedulerPair("anticipatory", "deadline")
    assert cluster.hosts[1].current_pair == SchedulerPair("cfq", "cfq")


def test_vmm_only_switch():
    env = Environment()
    cluster = small_cluster(env)
    host = cluster.hosts[0]
    done = host.set_vmm_scheduler(scheduler_factory("noop"))
    env.run(until=done)
    assert host.disk.scheduler.name == "noop"
    for vm in host.vms:
        assert vm.scheduler_name == "cfq"  # guests untouched


def test_guest_only_switch():
    env = Environment()
    cluster = small_cluster(env)
    vm = cluster.vms[0]
    done = vm.switch_scheduler(scheduler_factory("deadline"))
    env.run(until=done)
    assert vm.scheduler_name == "deadline"
    assert cluster.hosts[0].disk.scheduler.name == "cfq"
    # Sibling VM untouched.
    assert cluster.hosts[0].vms[1].scheduler_name == "cfq"


def test_switch_counts_accumulate_per_device():
    env = Environment()
    cluster = small_cluster(env)
    host = cluster.hosts[0]
    for name in ("deadline", "anticipatory", "cfq"):
        done = host.set_vmm_scheduler(scheduler_factory(name))
        env.run(until=done)
    assert host.disk.switch_count == 3


def test_set_pair_fires_switches_concurrently():
    """Dom0 + both guests switch in one round, not serially."""
    env = Environment()
    cluster = small_cluster(env)
    host = cluster.hosts[0]
    done = host.set_pair(SchedulerPair("deadline", "noop"))
    env.run(until=done)
    # On an idle host every switch costs just the control latency; the
    # parallel round completes in ~one latency, not three.
    assert env.now < host.disk.switch_control_latency * 2.5
