"""Integration tests for the page cache and writeback daemon."""

import numpy as np
import pytest

from repro.disk import DiskDevice, IoOp, ServiceTimeModel
from repro.iosched import NoopScheduler
from repro.sim import Environment
from repro.virt import (
    GuestFilesystem,
    PageCache,
    PageCacheParams,
    VirtualBlockDevice,
)

MB = 1024 * 1024


def make_cache(env, **param_overrides):
    params = PageCacheParams(**{
        "capacity_bytes": 64 * MB,
        "dirty_background_bytes": 8 * MB,
        "dirty_limit_bytes": 32 * MB,
        **param_overrides,
    })
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    dom0 = DiskDevice(env, NoopScheduler(), model)
    vdisk = VirtualBlockDevice(env, NoopScheduler(), dom0, "vm0", 0, 200_000_000)
    fs = GuestFilesystem(200_000_000, fragmentation=0.0)
    cache = PageCache(env, vdisk, params)
    return cache, vdisk, fs


def run_proc(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p


def test_cold_read_hits_disk():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("data", 4 * MB)
    run_proc(env, cache.read(f, 0, 4 * MB, "r"))
    assert cache.misses > 0
    assert cache.bytes_read_disk == 4 * MB
    assert vdisk.stats.read_bytes == 4 * MB


def test_warm_read_is_free():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("data", 4 * MB)
    run_proc(env, cache.read(f, 0, 4 * MB, "r"))
    before = vdisk.stats.read_bytes
    run_proc(env, cache.read(f, 0, 4 * MB, "r"))
    assert vdisk.stats.read_bytes == before  # all hits
    assert cache.hits >= 4


def test_buffered_write_is_instant_no_io():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("out", 4 * MB)
    t0 = env.now
    run_proc(env, cache.write(f, 0, 4 * MB, "w"))
    assert env.now == t0  # absorbed by the cache
    assert cache.dirty_bytes == 4 * MB
    assert vdisk.stats.write_bytes == 0


def test_writeback_kicks_past_background_threshold():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("out", 16 * MB)
    run_proc(env, cache.write(f, 0, 16 * MB, "w"))  # > 8 MB background
    env.run()  # let the flusher work
    assert vdisk.stats.write_bytes > 0
    assert cache.dirty_bytes <= 8 * MB


def test_write_after_cache_read_back_is_hit():
    """Spill-then-merge: recently written data reads back with no I/O."""
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("spill", 4 * MB)
    run_proc(env, cache.write(f, 0, 4 * MB, "w"))
    before = vdisk.stats.read_bytes
    run_proc(env, cache.read(f, 0, 4 * MB, "r"))
    assert vdisk.stats.read_bytes == before


def test_dirty_throttling_blocks_writer():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("big", 64 * MB)

    def writer(cache, f):
        # Way past dirty_limit (32 MB): must block on writeback.
        yield from cache.write(f, 0, 48 * MB, "w")
        yield from cache.write(f, 48 * MB, 16 * MB, "w")

    run_proc(env, writer(cache, f))
    assert cache.throttle_events > 0
    assert env.now > 0  # writer did not finish instantly


def test_fsync_flushes_synchronously():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("log", 4 * MB)
    run_proc(env, cache.write(f, 0, 4 * MB, "w"))

    def do_fsync(cache, f):
        yield from cache.fsync(f, "w")

    run_proc(env, do_fsync(cache, f))
    assert cache.dirty_bytes == 0
    assert vdisk.stats.write_bytes >= 4 * MB
    # fsync writes are synchronous at the block layer.
    assert env.now > 0


def test_sync_write_bypasses_buffering():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("direct", 2 * MB)
    run_proc(env, cache.write(f, 0, 2 * MB, "w", sync=True))
    assert cache.dirty_bytes == 0
    assert vdisk.stats.write_bytes == 2 * MB
    assert env.now > 0


def test_lru_eviction_bounds_residency():
    env = Environment()
    cache, vdisk, fs = make_cache(env, capacity_bytes=8 * MB)
    f = fs.create("stream", 32 * MB)
    run_proc(env, cache.read(f, 0, 32 * MB, "r"))
    assert cache.resident_bytes <= 8 * MB
    # Re-reading the evicted head hits disk again.
    before = vdisk.stats.read_bytes
    run_proc(env, cache.read(f, 0, 1 * MB, "r"))
    env.run()
    assert vdisk.stats.read_bytes > before


def test_evicting_dirty_chunk_forces_writeback():
    env = Environment()
    cache, vdisk, fs = make_cache(
        env,
        capacity_bytes=4 * MB,
        dirty_background_bytes=64 * MB,  # never kicks on threshold
        dirty_limit_bytes=128 * MB,
    )
    f = fs.create("out", 16 * MB)
    run_proc(env, cache.write(f, 0, 16 * MB, "w"))
    env.run()
    # Evictions forced most chunks out despite thresholds never firing.
    assert vdisk.stats.write_bytes >= 8 * MB


def test_flush_all_clears_dirty():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("out", 6 * MB)
    run_proc(env, cache.write(f, 0, 6 * MB, "w"))

    def flush(cache):
        yield from cache.flush_all()

    run_proc(env, flush(cache))
    assert cache.dirty_bytes == 0
    assert vdisk.stats.write_bytes >= 6 * MB


def test_read_past_eof_rejected():
    env = Environment()
    cache, _, fs = make_cache(env)
    f = fs.create("small", 1 * MB)
    with pytest.raises(ValueError):
        run_proc(env, cache.read(f, 0, 2 * MB, "r"))


def test_reads_are_sync_writes_are_async_at_block_layer():
    env = Environment()
    cache, vdisk, fs = make_cache(env)
    f = fs.create("data", 2 * MB)
    classes = []
    orig = vdisk.submit

    def spy(request):
        classes.append((request.op, request.sync))
        return orig(request)

    vdisk.submit = spy
    run_proc(env, cache.read(f, 0, 2 * MB, "r"))
    g = fs.create("out", 16 * MB)
    run_proc(env, cache.write(g, 0, 16 * MB, "w"))
    env.run()
    read_classes = {c for c in classes if c[0] is IoOp.READ}
    write_classes = {c for c in classes if c[0] is IoOp.WRITE}
    assert read_classes == {(IoOp.READ, True)}
    assert write_classes == {(IoOp.WRITE, False)}


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        PageCacheParams(capacity_bytes=0)
    with pytest.raises(ValueError):
        PageCacheParams(dirty_background_bytes=10 * MB, dirty_limit_bytes=1 * MB)
