"""Unit tests for the max-min fair flow network."""

import pytest

from repro.net import FlowNetwork, Link, Topology
from repro.sim import Environment


def test_single_flow_runs_at_link_rate():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    done = net.transfer([link], 1000.0)
    env.run(until=done)
    assert env.now == pytest.approx(10.0)


def test_two_flows_share_fairly():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    d1 = net.transfer([link], 500.0)
    d2 = net.transfer([link], 500.0)
    env.run()
    assert d1.processed and d2.processed
    assert env.now == pytest.approx(10.0)  # each at 50 B/s


def test_completion_releases_capacity():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    short = net.transfer([link], 100.0)
    long = net.transfer([link], 300.0)
    env.run(until=short)
    assert env.now == pytest.approx(2.0)  # both at 50 → short done at 2
    env.run(until=long)
    # long: 200 left at t=2, now at full 100 B/s → done at t=4.
    assert env.now == pytest.approx(4.0)


def test_max_min_with_bottleneck_and_free_link():
    env = Environment()
    net = FlowNetwork(env)
    narrow = Link("narrow", 10.0)
    wide = Link("wide", 100.0)
    # f1 crosses both links; f2 only the wide one.
    f1 = net.transfer([narrow, wide], 100.0)
    f2 = net.transfer([wide], 900.0)
    env.run(until=f1)
    # f1 bottlenecked at 10; f2 gets the residual 90.
    assert env.now == pytest.approx(10.0)
    env.run(until=f2)
    assert env.now == pytest.approx(10.0)  # 900/90 = 10 as well


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    net = FlowNetwork(env)
    done = net.transfer([Link("l", 10.0)], 0.0)
    assert done.triggered
    env.run()
    assert env.now == 0.0


def test_invalid_transfer_args():
    env = Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.transfer([], 10.0)
    with pytest.raises(ValueError):
        net.transfer([Link("l", 10.0)], -1.0)
    with pytest.raises(ValueError):
        Link("bad", 0.0)


def test_late_arrival_slows_existing_flow():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)

    def late(env, net, link):
        yield env.timeout(1.0)
        done = net.transfer([link], 100.0)
        yield done
        return env.now

    first = net.transfer([link], 200.0)
    later = env.process(late(env, net, link))
    env.run()
    # first alone [0,1): 100 done.  Shared [1,3): 50 each → both end at 3.
    assert later.value == pytest.approx(3.0)


def test_stats_accumulate():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    net.transfer([link], 100.0)
    net.transfer([link], 200.0)
    env.run()
    assert net.completed_flows == 2
    assert net.bytes_transferred == pytest.approx(300.0)
    assert net.active_flows == 0


def test_many_flows_conserve_work():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 1000.0)
    total = 0.0
    for i in range(20):
        size = 100.0 * (i + 1)
        total += size
        net.transfer([link], size)
    env.run()
    # One shared bottleneck, always busy → makespan == total/capacity.
    assert env.now == pytest.approx(total / 1000.0)


# -- topology ------------------------------------------------------------------


def test_topology_cross_host_uses_both_nics():
    env = Environment()
    topo = Topology(env, nic_bandwidth=100.0)
    topo.add_host("a")
    topo.add_host("b")
    topo.add_host("c")
    # Two flows out of host a to different hosts share a's egress.
    d1 = topo.transfer("a", "b", 500.0)
    d2 = topo.transfer("a", "c", 500.0)
    env.run()
    assert env.now == pytest.approx(10.0)


def test_topology_incast_shares_ingress():
    env = Environment()
    topo = Topology(env, nic_bandwidth=100.0)
    for h in "abc":
        topo.add_host(h)
    d1 = topo.transfer("a", "c", 500.0)
    d2 = topo.transfer("b", "c", 500.0)
    env.run()
    assert env.now == pytest.approx(10.0)  # c.rx is the bottleneck


def test_topology_same_host_uses_loopback():
    env = Environment()
    topo = Topology(env, nic_bandwidth=100.0, loopback_bandwidth=1000.0)
    topo.add_host("a")
    done = topo.transfer("a", "a", 1000.0)
    env.run(until=done)
    assert env.now == pytest.approx(1.0)  # 10x faster than the NIC


def test_topology_unknown_host_raises():
    env = Environment()
    topo = Topology(env)
    with pytest.raises(KeyError):
        topo.transfer("x", "y", 10.0)


def test_add_host_idempotent():
    env = Environment()
    topo = Topology(env)
    n1 = topo.add_host("a")
    n2 = topo.add_host("a")
    assert n1 is n2
