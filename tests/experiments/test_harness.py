"""Tests for the experiment harness plumbing (small scales only —
the calibrated shape checks run in benchmarks/)."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, ShapeCheck
from repro.experiments.base import ExperimentResult as BaseResult
from repro.metrics import format_matrix, format_series, format_table


def test_registry_covers_every_paper_artifact():
    expected = {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
        "fig7a", "fig7b", "fig7c", "fig7d", "fig8",
        "table1", "table2",
    }
    assert expected <= set(EXPERIMENTS)
    # Extensions are registered too.
    assert {
        "ablation-mechanisms", "ablation-online", "ablation-chain",
        "fig9-faults", "fig-multijob", "fig-ctrl",
    } <= set(EXPERIMENTS)


def test_shape_check_str():
    assert str(ShapeCheck("x", True, "d")) == "[PASS] x: d"
    assert str(ShapeCheck("x", False)) == "[FAIL] x"


def test_experiment_result_render_combines_parts():
    result = BaseResult(
        experiment_id="t",
        title="Title",
        data={"v": 1},
        renderer=lambda r: f"v={r.data['v']}",
        checker=lambda r: [ShapeCheck("ok", True)],
    )
    text = result.render()
    assert "### t: Title" in text
    assert "v=1" in text
    assert "[PASS] ok" in text
    assert result.all_checks_pass


def test_experiment_result_fail_detection():
    result = BaseResult(
        experiment_id="t",
        title="Title",
        checker=lambda r: [ShapeCheck("a", True), ShapeCheck("b", False)],
    )
    assert not result.all_checks_pass


# -- table renderers ---------------------------------------------------------------


def test_format_table_alignment_and_floats():
    text = format_table(["name", "val"], [["a", 1.234], ["bbbb", 10.0]])
    lines = text.splitlines()
    assert "name" in lines[0] and "val" in lines[0]
    assert "1.2" in text and "10.0" in text
    # Separator present.
    assert set(lines[1]) <= {"-", "+"}


def test_format_table_with_title():
    text = format_table(["c"], [[1]], title="hello")
    assert text.startswith("hello\n")


def test_format_series():
    text = format_series("s", [(1, 2.5), (3, 4.0)])
    assert text.startswith("series: s")
    assert "2.50" in text


def test_format_matrix_keys():
    text = format_matrix(
        ["r1", "r2"], ["c1", "c2"],
        {("r1", "c1"): 1.0, ("r2", "c2"): 2.0},
    )
    assert "r1" in text and "c2" in text
    assert "1.0" in text and "2.0" in text


# -- scaled config helpers ------------------------------------------------------------


def test_scaled_testbed_preserves_wave_structure():
    from repro.experiments import scaled_testbed
    from repro.workloads import SORT

    for scale in (0.05, 0.25, 1.0):
        config = scaled_testbed(SORT, scale=scale)
        assert config.job.blocks_per_vm() == 8
        assert config.job.waves() == pytest.approx(4.0)


def test_scaled_testbed_scales_sizes_linearly():
    from repro.experiments import scaled_testbed
    from repro.workloads import SORT

    small = scaled_testbed(SORT, scale=0.1)
    big = scaled_testbed(SORT, scale=0.2)
    assert big.job.bytes_per_vm == pytest.approx(2 * small.job.bytes_per_vm, rel=0.01)
    assert big.cluster.pagecache.capacity_bytes == pytest.approx(
        2 * small.cluster.pagecache.capacity_bytes, rel=0.01
    )


def test_env_scale_validation(monkeypatch):
    import importlib

    import repro.api as api

    monkeypatch.setenv("REPRO_SCALE", "2.0")
    with pytest.raises(ValueError):
        importlib.reload(api)
    monkeypatch.setenv("REPRO_SCALE", "abc")
    with pytest.raises(ValueError):
        importlib.reload(api)
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    importlib.reload(api)
    assert api.DEFAULT_SCALE == 0.5
    monkeypatch.delenv("REPRO_SCALE")
    importlib.reload(api)
