"""CLI tests (tiny scale so each invocation stays quick)."""

import pytest

from repro.cli import build_parser, main, run_one
from repro.experiments.base import ExperimentResult
from repro.api import default_seeds, validate_scale
from repro.runner import SweepRunner


def test_parser_accepts_known_experiments():
    args = build_parser().parse_args(["fig8", "--scale", "0.05", "--seeds", "0,1"])
    assert args.experiment == "fig8"
    assert args.scale == 0.05
    assert args.seeds == (0, 1)


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_parser_rejects_bad_seeds():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--seeds", "x,y"])


def test_parser_rejects_empty_seeds():
    # `--seeds ""` used to parse to an empty tuple and crash downstream.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--seeds", ""])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--seeds", ","])


@pytest.mark.parametrize("scale", ["0", "-0.5", "1.5", "nan"])
def test_parser_rejects_out_of_range_scale(scale):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--scale", scale])


def test_parser_accepts_boundary_scale():
    assert build_parser().parse_args(["fig8", "--scale", "1.0"]).scale == 1.0


def test_parser_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--jobs", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--jobs", "two"])


def test_parser_runner_flags(tmp_path):
    args = build_parser().parse_args(
        ["fig8", "--jobs", "2", "--cache-dir", str(tmp_path), "--no-cache",
         "--quiet"]
    )
    assert args.jobs == 2
    assert args.cache_dir == str(tmp_path)
    assert args.no_cache
    assert args.quiet


def test_validate_scale_bounds():
    assert validate_scale(0.5) == 0.5
    assert validate_scale(1.0) == 1.0
    for bad in (0, -1, 1.01):
        with pytest.raises(ValueError):
            validate_scale(bad)


def test_default_seeds_extends_past_paper_set():
    # Used to silently truncate to the paper's three seeds.
    assert default_seeds(1) == (0,)
    assert default_seeds(3) == (0, 1, 2)
    assert default_seeds(5) == (0, 1, 2, 3, 4)


def test_checker_invoked_once_per_result():
    calls = []

    def checker(result):
        calls.append(1)
        return []

    result = ExperimentResult("x", "t", {}, renderer=lambda r: "", checker=checker)
    result.render()
    assert result.all_checks_pass
    result.render()
    assert len(calls) == 1


def test_main_runs_fig8_small(tmp_path, capsys):
    rc = main(["fig8", "--scale", "0.05", "--seeds", "0",
               "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert "### fig8" in out
    assert "wordcount" in out
    assert "simulations executed" in out
    assert rc in (0, 1)  # shape checks may not hold at toy scale


def test_main_warm_cache_output_identical_and_simulation_free(tmp_path, capsys):
    argv = ["fig8", "--scale", "0.05", "--seeds", "0",
            "--cache-dir", str(tmp_path), "--quiet"]
    main(argv)
    cold = capsys.readouterr().out
    main(argv)
    warm = capsys.readouterr().out
    assert warm == cold

    main(["fig8", "--scale", "0.05", "--seeds", "0",
          "--cache-dir", str(tmp_path)])
    assert "simulations executed 0" in capsys.readouterr().out


def test_main_parallel_output_identical_to_serial(tmp_path, capsys):
    main(["fig8", "--scale", "0.05", "--seeds", "0", "--quiet",
          "--jobs", "1", "--cache-dir", str(tmp_path / "serial")])
    serial = capsys.readouterr().out
    main(["fig8", "--scale", "0.05", "--seeds", "0", "--quiet",
          "--jobs", "2", "--cache-dir", str(tmp_path / "parallel")])
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_main_reports_bad_repro_jobs_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    rc = main(["fig8", "--scale", "0.05", "--seeds", "0"])
    assert rc == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


def test_run_one_returns_check_status(tmp_path, capsys):
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        ok = run_one("fig8", sweep, scale=0.05, seeds=(0,), quiet=True)
    assert isinstance(ok, bool)
    assert "fig8" in capsys.readouterr().out


def test_main_progress_renders_a_sweep_line(tmp_path, capsys):
    rc = main(["fig8", "--scale", "0.05", "--seeds", "0", "--jobs", "1",
               "--cache-dir", str(tmp_path), "--progress"])
    assert rc in (0, 1)
    captured = capsys.readouterr()
    assert "sweep:" in captured.err
    assert "cache" in captured.err and "memo" in captured.err
    # The per-run "ran ..." lines are replaced by the progress line.
    assert "  ran " not in captured.err
    # ...and ends with a newline so the profile summary starts clean.
    assert "### fig8" in captured.out


def test_render_obs_blame_folds_into_experiment_output():
    from repro.experiments.base import render_obs_blame

    blame = {
        "run.trace.jsonl": {
            "makespan": 10.0, "segments": 2,
            "phases": {"map": {
                "duration": 10.0, "task": 8.0, "fault": 2.0,
                "switch": 0.0, "idle": 0.0, "io_wait": 3.0,
                "service": 4.0,
            }},
            "devices": {}, "vms": {},
            "top_owners": [
                {"owner": "map1@h0v0", "kind": "task", "seconds": 8.0},
            ],
        },
    }
    result = ExperimentResult(
        "x", "t", {"obs": {"critical_path": blame}},
        renderer=lambda r: "",
    )
    text = render_obs_blame(result)
    assert "critical-path blame: run.trace.jsonl" in text
    assert "map1@h0v0 (8.000s)" in text

    untraced = ExperimentResult("x", "t", {}, renderer=lambda r: "")
    assert render_obs_blame(untraced) == ""
