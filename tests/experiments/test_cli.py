"""CLI tests (tiny scale so each invocation stays quick)."""

import pytest

from repro.cli import build_parser, main, run_one


def test_parser_accepts_known_experiments():
    args = build_parser().parse_args(["fig8", "--scale", "0.05", "--seeds", "0,1"])
    assert args.experiment == "fig8"
    assert args.scale == 0.05
    assert args.seeds == (0, 1)


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_parser_rejects_bad_seeds():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--seeds", "x,y"])


def test_main_runs_fig8_small(capsys):
    rc = main(["fig8", "--scale", "0.05", "--seeds", "0"])
    out = capsys.readouterr().out
    assert "### fig8" in out
    assert "wordcount" in out
    assert rc in (0, 1)  # shape checks may not hold at toy scale


def test_run_one_returns_check_status(capsys):
    ok = run_one("fig8", scale=0.05, seeds=(0,))
    assert isinstance(ok, bool)
    assert "fig8" in capsys.readouterr().out
