"""fig-ssd smoke: the pair study on flash, restricted to a pair subset."""

import pytest

from repro.experiments import EXPERIMENTS, fig_ssd
from repro.runner import SweepRunner
from repro.virt.pair import SchedulerPair


@pytest.fixture(scope="module")
def result():
    pairs = [SchedulerPair.parse("ad"), SchedulerPair.parse("cc")]
    with SweepRunner(jobs=2, use_cache=False) as sweep:
        return fig_ssd.run(scale=0.05, seeds=(0,), pairs=pairs, sweep=sweep)


def test_registered():
    assert EXPERIMENTS["fig-ssd"] is fig_ssd.run


def test_runs_both_backends_with_write_amp(result):
    assert result.data["backends"] == ["ssd", "hybrid"]
    for backend in ("ssd", "hybrid"):
        for pair, duration in result.data["durations"][backend].items():
            assert duration > 0
            assert result.data["write_amp"][backend][pair] >= 1.0
        assert result.data["adaptive"][backend]["duration"] > 0


def test_ssd_stats_cover_expected_hosts(result):
    assert result.data["ssd_devices"]["ssd"] == fig_ssd.HOSTS
    assert result.data["ssd_devices"]["hybrid"] == fig_ssd.HOSTS // 2


def test_checks_pass_on_subset(result):
    # The pair-count check compares against the pairs actually run, so
    # a restricted subset still passes.
    assert result.all_checks_pass, result.render()


def test_render_mentions_adaptive_row(result):
    text = result.render()
    assert "ssd cluster" in text and "hybrid cluster" in text
    assert "adaptive ad->cc" in text
    assert "write amp" in text


def test_storage_param_restricts_backends():
    pairs = [SchedulerPair.parse("cc")]
    with SweepRunner(jobs=1, use_cache=False) as sweep:
        result = fig_ssd.run(scale=0.05, seeds=(0,), pairs=pairs,
                             storage="ssd", sweep=sweep)
    assert result.data["backends"] == ["ssd"]
    assert result.all_checks_pass, result.render()
