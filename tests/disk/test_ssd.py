"""Unit tests for the FTL-based SSD backend: conservation, GC, cache."""

import pytest

from repro.disk import BlockRequest, IoOp, SsdDevice, SsdParameters
from repro.iosched import NoopScheduler
from repro.sim import Environment


#: Tiny geometry so a synthetic workload can fill and churn the FTL.
SMALL = SsdParameters(
    pages_per_block=4,
    channels=2,
    write_cache_pages=8,
    writeback_delay=0.001,
    gc_min_invalid=2,
)


def make_ssd(env, params=SMALL, **kwargs):
    return SsdDevice(env, NoopScheduler(), params, **kwargs)


def write(lba, n=8, pid="p"):
    return BlockRequest(lba, n, IoOp.WRITE, pid)


def read(lba, n=8, pid="p"):
    return BlockRequest(lba, n, IoOp.READ, pid)


def run_all(env, dev, requests):
    events = [dev.submit(r) for r in requests]
    for ev in events:
        env.run(until=ev)
    # Let the delayed writeback drain the cache completely.
    env.run(until=env.now + 10 * dev.params.writeback_delay + 1.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        SsdParameters(pages_per_block=0)
    with pytest.raises(ValueError):
        SsdParameters(channels=0)
    with pytest.raises(ValueError):
        SsdParameters(write_cache_pages=-1)


def test_sequential_writes_conserved_and_wa_one():
    """Append-only writes: every logical page lands exactly once."""
    env = Environment()
    dev = make_ssd(env)
    run_all(env, dev, [write(i * 8) for i in range(64)])
    dev.check_conservation()
    stats = dev.storage_stats()
    assert stats["kind"] == "ssd"
    # No overwrites -> nothing for GC to reclaim -> no amplification.
    assert stats["write_amp"] == pytest.approx(1.0)
    assert stats["nand_erases"] == 0
    assert stats["host_pages"] == stats["nand_programs"]


def test_overwrite_churn_forces_gc_and_wa_above_one():
    """Overwriting a hot set invalidates pages until greedy GC fires."""
    env = Environment()
    dev = make_ssd(env)
    # 16 logical extents overwritten across 16 rounds, with the write
    # cache drained between rounds so every overwrite reaches NAND and
    # invalidates the previous on-flash copy (a single burst would
    # coalesce in cache and never amplify).
    for _ in range(16):
        run_all(env, dev, [write(i * 8) for i in range(16)])
    dev.check_conservation()
    stats = dev.storage_stats()
    assert stats["gc_cycles"] > 0
    assert stats["nand_erases"] >= stats["gc_cycles"]
    assert stats["write_amp"] >= 1.0
    # Conservation: programs account for every host flush plus every
    # GC relocation, nothing else.
    assert stats["nand_programs"] == \
        stats["host_pages"] + stats["gc_moved_pages"]


def test_write_amp_never_below_one_under_coalescing():
    """Back-to-back overwrites coalesce in cache, but WA stays >= 1."""
    env = Environment()
    dev = make_ssd(env)
    # Same extent hammered while still dirty in cache: the cache
    # absorbs the repeats, so host_pages counts flushes, not submits.
    run_all(env, dev, [write(0) for _ in range(32)])
    dev.check_conservation()
    stats = dev.storage_stats()
    assert stats["cache_coalesced"] > 0
    assert stats["write_amp"] >= 1.0


def test_read_after_write_hits_dirty_cache():
    env = Environment()
    dev = make_ssd(env)
    done = dev.submit(write(0))
    env.run(until=done)
    done = dev.submit(read(0))
    env.run(until=done)
    assert dev.storage_stats()["cache_read_hits"] > 0


def test_reads_complete_and_charge_channels():
    env = Environment()
    dev = make_ssd(env)
    run_all(env, dev, [write(i * 8) for i in range(16)])
    events = [dev.submit(read(i * 8)) for i in range(16)]
    for ev in events:
        env.run(until=ev)
    assert all(ev.triggered for ev in events)
    # Contiguous reads may merge in the elevator, but every NAND page
    # still gets charged on its channel.
    assert dev.storage_stats()["nand_reads"] >= 16


def test_service_scale_slows_ssd():
    """The fault knob stretches flash service like it does a spindle."""
    def run_with(scale):
        env = Environment()
        dev = make_ssd(env)
        dev.service_scale = scale
        done = dev.submit(write(0))
        env.run(until=done)
        return env.now

    assert run_with(4.0) > run_with(1.0)


def test_trace_topics_published():
    """ssd.* topics fire on churn (registry half lives in obs.topics)."""
    from repro.sim import TraceBus

    env = Environment()
    bus = TraceBus()
    seen = []
    for topic in ("ssd.gc", "ssd.writeback", "ssd.channel"):
        bus.subscribe(topic, lambda r: seen.append(r.topic))
    dev = make_ssd(env, trace=bus)
    for _ in range(16):
        run_all(env, dev, [write(i * 8) for i in range(16)])
    assert {"ssd.gc", "ssd.writeback", "ssd.channel"} <= set(seen)
