"""Unit tests for disk geometry and the service-time model."""

import numpy as np
import pytest

from repro.disk import (
    BlockRequest,
    DiskGeometry,
    DiskParameters,
    IoOp,
    ServiceTimeModel,
)


def test_geometry_defaults_are_1tb():
    g = DiskGeometry()
    assert g.capacity_bytes == pytest.approx(1e12, rel=0.05)


def test_cylinder_mapping_monotone():
    g = DiskGeometry(total_sectors=1000, cylinders=10)
    cyls = [g.cylinder_of(lba) for lba in range(0, 1000, 100)]
    assert cyls == sorted(cyls)
    assert g.cylinder_of(999) == 9


def test_cylinder_clamped_at_end():
    g = DiskGeometry(total_sectors=1000, cylinders=10)
    assert g.cylinder_of(10_000) == 9


def test_negative_lba_rejected():
    with pytest.raises(ValueError):
        DiskGeometry().cylinder_of(-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=0)
    with pytest.raises(ValueError):
        DiskGeometry(outer_rate=10, inner_rate=20)


def test_zoned_rate_outer_faster():
    g = DiskGeometry()
    assert g.rate_at(0) == pytest.approx(g.outer_rate)
    assert g.rate_at(g.total_sectors - 1) == pytest.approx(g.inner_rate, rel=0.01)
    assert g.rate_at(0) > g.rate_at(g.total_sectors // 2) > g.rate_at(g.total_sectors - 1)


def test_seek_distance_symmetric():
    g = DiskGeometry()
    a, b = 1000, 500_000_000
    assert g.seek_distance(a, b) == g.seek_distance(b, a) > 0


def test_seek_time_curve():
    p = DiskParameters()
    assert p.seek_time(0) == 0.0
    assert 0 < p.seek_time(1) < p.seek_time(100) < p.seek_time(10_000)
    # Full-stroke seek on the default geometry lands in a plausible range.
    full = p.seek_time(DiskGeometry().cylinders)
    assert 0.010 < full < 0.030


def test_sequential_request_has_no_seek_or_rotation():
    m = ServiceTimeModel(rng=np.random.default_rng(1))
    first = BlockRequest(0, 256, IoOp.READ, "p")
    m.service(first)
    second = BlockRequest(256, 256, IoOp.READ, "p")
    b = m.service(second)
    assert b.seek == 0.0
    assert b.rotation == 0.0
    assert b.transfer > 0


def test_random_request_pays_seek_and_rotation():
    m = ServiceTimeModel(rng=np.random.default_rng(1))
    m.service(BlockRequest(0, 256, IoOp.READ, "p"))
    far = BlockRequest(1_000_000_000, 256, IoOp.READ, "p")
    b = m.service(far)
    assert b.seek > 0
    assert 0 <= b.rotation <= m.params.rotation_time


def test_write_settle_charged_on_reposition():
    m1 = ServiceTimeModel(rng=np.random.default_rng(1))
    m2 = ServiceTimeModel(rng=np.random.default_rng(1))
    m1.service(BlockRequest(0, 8, IoOp.READ, "p"))
    m2.service(BlockRequest(0, 8, IoOp.READ, "p"))
    read = m1.service(BlockRequest(10_000_000, 8, IoOp.READ, "p"))
    write = m2.service(BlockRequest(10_000_000, 8, IoOp.WRITE, "p"))
    assert write.seek == pytest.approx(read.seek + m2.params.write_settle)


def test_head_advances_to_request_end():
    m = ServiceTimeModel()
    m.service(BlockRequest(100, 28, IoOp.READ, "p"))
    assert m.head_lba == 128


def test_sequential_stream_much_faster_than_random():
    """The core premise: sequential streaming beats random access by >5x."""
    rng = np.random.default_rng(7)
    seq = ServiceTimeModel(rng=np.random.default_rng(1))
    rand = ServiceTimeModel(rng=np.random.default_rng(1))
    n, size = 200, 512  # 256 KB requests
    t_seq = sum(seq.service(BlockRequest(i * size, size, IoOp.READ, "p")).total for i in range(n))
    positions = rng.integers(0, 1_900_000_000, n)
    t_rand = sum(
        rand.service(BlockRequest(int(p), size, IoOp.READ, "p")).total for p in positions
    )
    assert t_rand > 5 * t_seq


def test_service_deterministic_for_same_rng_seed():
    def run(seed):
        m = ServiceTimeModel(rng=np.random.default_rng(seed))
        return [
            m.service(BlockRequest(i * 100_000_000 % 1_900_000_000, 64, IoOp.READ, "p")).total
            for i in range(20)
        ]

    assert run(3) == run(3)
    assert run(3) != run(4)
