"""The storage-backend registry: names, factories, error surface."""

import numpy as np
import pytest

from repro.disk import (
    DiskDevice,
    SsdDevice,
    StorageParams,
    UnknownStorageError,
    make_device,
    register_storage,
    resolve_storage,
    storage_names,
)
from repro.disk.backend import _BACKENDS
from repro.iosched import NoopScheduler
from repro.sim import Environment


def build(storage, host_index=0):
    env = Environment()
    return make_device(
        storage, env, StorageParams(host_index=host_index),
        rng=np.random.default_rng(0),
        scheduler=NoopScheduler(), name="t.sda",
    )


def test_builtin_names_registered():
    assert storage_names() == ("hdd", "hybrid", "ssd")
    for name in storage_names():
        assert resolve_storage(name) == name


def test_factories_build_the_right_device():
    assert isinstance(build("hdd"), DiskDevice)
    assert isinstance(build("ssd"), SsdDevice)
    assert build("hdd").kind == "hdd"
    assert build("ssd").kind == "ssd"


def test_hybrid_alternates_by_host_parity():
    assert isinstance(build("hybrid", host_index=0), DiskDevice)
    assert isinstance(build("hybrid", host_index=1), SsdDevice)


def test_unknown_name_lists_registered_backends():
    with pytest.raises(UnknownStorageError) as exc:
        resolve_storage("floppy")
    message = str(exc.value)
    assert "floppy" in message
    for name in storage_names():
        assert name in message
    # Catchable under both idioms callers might already use.
    assert isinstance(exc.value, KeyError)
    assert isinstance(exc.value, ValueError)


def test_register_storage_round_trip():
    @register_storage("test-null")
    def _make_null(env, params, rng, **kwargs):  # pragma: no cover
        raise NotImplementedError

    try:
        assert resolve_storage("test-null") == "test-null"
        assert "test-null" in storage_names()
    finally:
        del _BACKENDS["test-null"]
    with pytest.raises(UnknownStorageError):
        resolve_storage("test-null")
