"""Integration tests for the disk device dispatch loop and switching."""

import numpy as np
import pytest

from repro.disk import (
    BlockRequest,
    DiskDevice,
    DiskGeometry,
    IoOp,
    ServiceTimeModel,
)
from repro.iosched import (
    AnticipatoryScheduler,
    CfqScheduler,
    DeadlineScheduler,
    NoopScheduler,
    scheduler_factory,
)
from repro.sim import Environment, TraceBus


def make_device(env, sched=None, seed=1, **kwargs):
    model = ServiceTimeModel(rng=np.random.default_rng(seed))
    return DiskDevice(env, sched or NoopScheduler(), model, **kwargs)


def req(lba, n=256, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def test_single_request_completes():
    env = Environment()
    dev = make_device(env)
    done = dev.submit(req(0))
    env.run(until=done)
    assert done.value.complete_time == env.now
    assert dev.stats.read_count == 1
    assert dev.idle


def test_requests_while_busy_are_queued():
    env = Environment()
    dev = make_device(env)
    d1 = dev.submit(req(0))
    d2 = dev.submit(req(1_000_000_000))
    env.run()
    assert d1.processed and d2.processed
    assert dev.stats.total_requests == 2


def test_merged_requests_complete_together():
    env = Environment()
    dev = make_device(env)
    d1 = dev.submit(req(1_000_000, 256))

    completions = []

    def submit_adjacent(env, dev):
        # While the first request is being served... queue two that merge.
        yield env.timeout(0.0001)
        a = dev.submit(req(2_000_000, 256))
        b = dev.submit(req(2_000_256, 256))
        yield a & b
        completions.append(env.now)

    env.process(submit_adjacent(env, dev))
    env.run()
    assert d1.processed
    assert completions
    # Two submissions merged into one disk command.
    assert dev.stats.total_requests == 2  # first + merged pair
    assert dev.stats.merged_count == 1


def test_sequential_stream_throughput_near_media_rate():
    env = Environment()
    dev = make_device(env)
    n, size = 100, 1024  # 100 x 512 KB sequential
    events = [dev.submit(req(i * size, size)) for i in range(n)]
    env.run()
    total_bytes = n * size * 512
    rate = total_bytes / env.now
    # Should be close to the outer-zone rate (130 MB/s), minus overheads.
    assert rate > 100e6


def test_anticipatory_device_idles_then_fires():
    env = Environment()
    dev = make_device(env, sched=AnticipatoryScheduler())
    log = []

    def reader(env, dev, pid, base):
        for i in range(5):
            done = dev.submit(req(base + i * 256, 256, pid=pid))
            yield done
            log.append((env.now, pid))
            yield env.timeout(0.001)  # think time < antic window

    env.process(reader(env, dev, "a", 0))
    env.process(reader(env, dev, "b", 1_000_000_000))
    env.run()
    # Anticipation should keep each process streaming: few alternations.
    sequence = [pid for _, pid in log]
    alternations = sum(1 for x, y in zip(sequence, sequence[1:]) if x != y)
    assert alternations <= 4
    assert dev.scheduler.antic_hits > 0


def test_switch_scheduler_installs_new_elevator():
    env = Environment()
    dev = make_device(env)
    done = dev.switch_scheduler(scheduler_factory("deadline"))
    env.run(until=done)
    assert isinstance(dev.scheduler, DeadlineScheduler)
    assert dev.switch_count == 1
    assert done.value >= dev.switch_control_latency


def test_switch_under_load_drains_backlog_first():
    env = Environment()
    dev = make_device(env, sched=DeadlineScheduler())
    events = [dev.submit(req(i * 100_000_000 % 1_900_000_000, 256)) for i in range(30)]
    switch_done = dev.switch_scheduler(scheduler_factory("cfq"))
    env.run(until=switch_done)
    # All requests queued before the switch have completed.
    assert all(ev.processed for ev in events)
    assert isinstance(dev.scheduler, CfqScheduler)
    assert switch_done.value > 0.01  # stall includes the drain


def test_requests_during_switch_bypass_and_complete():
    env = Environment()
    dev = make_device(env, sched=DeadlineScheduler())
    for i in range(20):
        dev.submit(req(i * 50_000_000, 256))
    switch_done = dev.switch_scheduler(scheduler_factory("noop"))

    late = []

    def submit_late(env, dev):
        yield env.timeout(0.005)  # mid-switch
        late.append(dev.submit(req(123_456, 256)))

    env.process(submit_late(env, dev))
    env.run()
    assert late and late[0].processed


def test_same_to_same_switch_still_pays():
    """The paper: re-selecting the current scheduler is not free."""
    env = Environment()
    dev = make_device(env, sched=DeadlineScheduler())
    for i in range(10):
        dev.submit(req(i * 100_000_000, 256))
    done = dev.switch_scheduler(scheduler_factory("deadline"))
    env.run(until=done)
    assert done.value > dev.switch_control_latency


def test_concurrent_switches_serialize():
    env = Environment()
    dev = make_device(env)
    d1 = dev.switch_scheduler(scheduler_factory("cfq"))
    d2 = dev.switch_scheduler(scheduler_factory("anticipatory"))
    env.run()
    assert d1.processed and d2.processed
    assert isinstance(dev.scheduler, AnticipatoryScheduler)
    assert dev.switch_count == 2


def test_trace_events_published():
    env = Environment()
    bus = TraceBus()
    bus.record_topic("disk.submit")
    bus.record_topic("disk.complete")
    dev = make_device(env, trace=bus)
    dev.submit(req(0))
    env.run()
    assert len(bus.recorded("disk.submit")) == 1
    assert len(bus.recorded("disk.complete")) == 1


def test_stats_busy_time_accumulates():
    env = Environment()
    dev = make_device(env)
    dev.submit(req(0, 1024))
    env.run()
    assert dev.stats.busy_time > 0
    assert dev.stats.busy_time <= env.now + 1e-9
    assert dev.stats.utilization(env.now) > 0
