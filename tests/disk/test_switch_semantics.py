"""Focused tests for the two elevator-switch quiesce semantics."""

import numpy as np
import pytest

from repro.disk import BlockRequest, DiskDevice, IoOp, ServiceTimeModel
from repro.iosched import DeadlineScheduler, NoopScheduler, scheduler_factory
from repro.sim import Environment


def make_device(env, holds=False):
    model = ServiceTimeModel(rng=np.random.default_rng(1))
    return DiskDevice(
        env,
        DeadlineScheduler(),
        model,
        quiesce_holds_arrivals=holds,
    )


def req(lba, n=256):
    return BlockRequest(lba, n, IoOp.READ, "p")


def submit_backlog(dev, count=20):
    return [dev.submit(req(i * 50_000_000 % 1_900_000_000)) for i in range(count)]


def test_bypass_mode_serves_arrivals_during_switch():
    """Default 2.6 semantics: mid-switch arrivals flow via the FIFO."""
    env = Environment()
    dev = make_device(env, holds=False)
    submit_backlog(dev)
    switch_done = dev.switch_scheduler(scheduler_factory("noop"))

    mid = {}

    def prober():
        yield env.timeout(0.06)  # after control latency, during drain
        assert dev._switching
        mid["ev"] = dev.submit(req(123_000))
        yield mid["ev"]
        mid["completed_at"] = env.now

    env.process(prober())
    env.run(until=switch_done)
    switch_end = env.now
    env.run()
    # The mid-switch request rode the dispatch FIFO: it completes with
    # the drain tail rather than waiting for the new elevator (it sits
    # behind the drained backlog, so allow the FIFO tail's slack).
    assert mid["completed_at"] <= switch_end + 0.1


def test_hold_mode_blocks_arrivals_until_installed():
    """elv_may_queue semantics: mid-switch arrivals wait out the drain."""
    env = Environment()
    dev = make_device(env, holds=True)
    submit_backlog(dev)
    switch_done = dev.switch_scheduler(scheduler_factory("noop"))

    mid = {}

    def prober():
        yield env.timeout(0.06)
        assert dev._switching
        ev = dev.submit(req(123_000))
        yield ev
        mid["completed_at"] = env.now

    env.process(prober())
    env.run(until=switch_done)
    switch_end = env.now
    env.run()
    assert mid["completed_at"] >= switch_end - 1e-9


def test_switch_completes_even_under_continuous_arrivals():
    """Bypass arrivals must not extend the drain wait indefinitely."""
    env = Environment()
    dev = make_device(env, holds=False)
    submit_backlog(dev, count=10)
    switch_done = dev.switch_scheduler(scheduler_factory("cfq"))

    def firehose():
        i = 0
        while not switch_done.processed and i < 500:
            dev.submit(req((i * 7_000_000) % 1_000_000_000))
            i += 1
            yield env.timeout(0.002)

    env.process(firehose())
    env.run(until=switch_done)
    assert dev.scheduler.name == "cfq"
    # The backlog queued pre-switch is fully served by then.
    assert not dev._drain_watch


def test_drain_watch_empties_and_new_elevator_gets_later_requests():
    env = Environment()
    dev = make_device(env, holds=False)
    pre = submit_backlog(dev, count=8)
    done = dev.switch_scheduler(scheduler_factory("noop"))
    env.run(until=done)
    assert all(ev.processed for ev in pre)
    post = dev.submit(req(42_000))
    env.run()
    assert post.processed
    assert isinstance(dev.scheduler, NoopScheduler)
