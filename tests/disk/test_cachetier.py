"""The host buffer-cache tier: hit accounting, writeback, eviction."""

import numpy as np
import pytest

from repro.disk import (
    BlockRequest,
    CacheTier,
    CacheTierParams,
    DiskDevice,
    IoOp,
    ServiceTimeModel,
)
from repro.iosched import NoopScheduler
from repro.sim import Environment


def make_tier(env, capacity_pages=64, writeback_delay=0.001):
    device = DiskDevice(
        env, NoopScheduler(),
        ServiceTimeModel(rng=np.random.default_rng(0)),
    )
    params = CacheTierParams(enabled=True, capacity_pages=capacity_pages,
                             writeback_delay=writeback_delay)
    return CacheTier(env, device, params), device


def req(lba, n=8, op=IoOp.READ, pid="p"):
    return BlockRequest(lba, n, op, pid)


def settle(env, tier):
    env.run(until=env.now + 100 * tier.params.writeback_delay + 1.0)


def test_params_validation():
    with pytest.raises(ValueError):
        CacheTierParams(page_bytes=1000)
    with pytest.raises(ValueError):
        CacheTierParams(capacity_pages=0)
    with pytest.raises(ValueError):
        CacheTierParams(writeback_delay=-1.0)


def test_hits_plus_misses_equals_references():
    env = Environment()
    tier, _ = make_tier(env)
    for lba in (0, 8, 0, 16, 8, 0):
        done = tier.submit(req(lba))
        env.run(until=done)
    for lba in (0, 24):
        done = tier.submit(req(lba, op=IoOp.WRITE))
        env.run(until=done)
    stats = tier.storage_stats()
    assert stats["hits"] + stats["misses"] == stats["references"]
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_read_after_read_hits_at_memory_latency():
    env = Environment()
    tier, _ = make_tier(env)
    done = tier.submit(req(0))
    env.run(until=done)
    t0 = env.now
    done = tier.submit(req(0))
    env.run(until=done)
    assert tier.hits > 0
    assert env.now - t0 == pytest.approx(tier.params.hit_latency)


def test_write_absorbed_then_flushed_to_device():
    env = Environment()
    tier, device = make_tier(env)
    done = tier.submit(req(0, op=IoOp.WRITE))
    env.run(until=done)
    assert device.stats.write_count == 0  # still buffered
    settle(env, tier)
    assert tier.flushed_pages == 1
    assert device.stats.write_count == 1


def test_writeback_coalesces_contiguous_pages():
    env = Environment()
    tier, device = make_tier(env)
    # Three contiguous pages plus one distant page -> two device writes.
    for lba in (0, 8, 16, 800):
        done = tier.submit(req(lba, op=IoOp.WRITE))
        env.run(until=done)
    settle(env, tier)
    assert tier.flushed_pages == 4
    assert device.stats.write_count == 2


def test_dirty_eviction_syncs_to_device():
    env = Environment()
    # Tiny cache and a long writeback delay so capacity pressure (not
    # the flusher) forces the dirty pages out.
    tier, device = make_tier(env, capacity_pages=4, writeback_delay=50.0)
    for i in range(16):
        done = tier.submit(req(i * 8, op=IoOp.WRITE))
        env.run(until=done)
    env.run(until=env.now + 5.0)
    assert tier.evicted_dirty > 0
    assert device.stats.write_count > 0


def test_runs_helper_collapses_sorted_pages():
    assert CacheTier._runs([1, 2, 3, 7, 9, 10]) == [(1, 3), (7, 1), (9, 2)]
    assert CacheTier._runs([5]) == [(5, 1)]
