"""Unit tests for BlockRequest and merging rules."""

import pytest

from repro.disk import SECTOR_SIZE, BlockRequest, IoOp


def make(lba, n, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def test_basic_fields():
    r = make(100, 8)
    assert r.end_lba == 108
    assert r.nbytes == 8 * SECTOR_SIZE
    assert r.sync  # reads default sync


def test_writes_default_async():
    r = make(0, 8, op=IoOp.WRITE)
    assert not r.sync


def test_sync_override():
    r = make(0, 8, op=IoOp.WRITE, sync=True)
    assert r.sync


def test_invalid_args():
    with pytest.raises(ValueError):
        make(0, 0)
    with pytest.raises(ValueError):
        make(-1, 8)


def test_rids_unique():
    assert make(0, 1).rid != make(0, 1).rid


def test_back_merge_allowed_when_adjacent():
    a, b = make(0, 8), make(8, 8)
    assert a.can_back_merge(b, max_sectors=64)
    a.back_merge(b)
    assert a.lba == 0 and a.nsectors == 16
    assert b in a.merged_children


def test_front_merge_allowed_when_adjacent():
    a, b = make(8, 8), make(0, 8)
    assert a.can_front_merge(b, max_sectors=64)
    a.front_merge(b)
    assert a.lba == 0 and a.nsectors == 16


def test_merge_rejected_across_ops():
    a, b = make(0, 8), make(8, 8, op=IoOp.WRITE, sync=False)
    assert not a.can_back_merge(b, max_sectors=64)


def test_merge_rejected_across_sync_class():
    a = make(0, 8, op=IoOp.WRITE, sync=True)
    b = make(8, 8, op=IoOp.WRITE, sync=False)
    assert not a.can_back_merge(b, max_sectors=64)


def test_merge_rejected_when_too_big():
    a, b = make(0, 8), make(8, 8)
    assert not a.can_back_merge(b, max_sectors=15)


def test_merge_rejected_when_not_adjacent():
    a, b = make(0, 8), make(9, 8)
    assert not a.can_back_merge(b, max_sectors=64)
    assert not a.can_front_merge(b, max_sectors=64)


def test_latency_none_until_complete():
    r = make(0, 8)
    assert r.latency is None
    r.queue_time, r.complete_time = 1.0, 3.5
    assert r.latency == pytest.approx(2.5)


def test_all_completions_collects_children():
    from repro.sim import Environment

    env = Environment()
    a, b, c = make(0, 8), make(8, 8), make(16, 8)
    a.completion = env.event()
    b.completion = env.event()
    c.completion = env.event()
    a.back_merge(b)
    a.back_merge(c)
    assert set(a.all_completions()) == {a.completion, b.completion, c.completion}
