"""Property-based tests for the simulation kernel's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FlowNetwork, Link
from repro.sim import Environment, ProcessorSharingCPU


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),   # arrival
        st.floats(min_value=0.01, max_value=5.0),  # work
    ),
    min_size=1,
    max_size=15,
))
def test_ps_cpu_conserves_work_and_orders_time(jobs):
    """Makespan >= total work / capacity; all jobs complete; work adds up."""
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    completions = []

    def submit(env, cpu, delay, work):
        yield env.timeout(delay)
        job = cpu.execute(work)
        yield job
        completions.append(env.now)

    for delay, work in jobs:
        env.process(submit(env, cpu, delay, work))
    env.run()
    total = sum(w for _, w in jobs)
    first_arrival = min(d for d, _ in jobs)
    assert len(completions) == len(jobs)
    assert cpu.completed_work == pytest.approx(total)
    # Work conservation bound: can't finish before arrival + total/capacity
    # restricted to overlap; weak but universal bound below.
    assert max(completions) >= first_arrival + max(w for _, w in jobs) - 1e-9
    assert max(completions) <= max(d for d, _ in jobs) + total + 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),    # start
        st.floats(min_value=1.0, max_value=1000.0),  # bytes
    ),
    min_size=1,
    max_size=12,
))
def test_single_link_network_work_conserving(flows):
    """One shared link: makespan == last_start-adjusted total/capacity bound."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    done_times = []

    def start(env, net, delay, nbytes):
        yield env.timeout(delay)
        ev = net.transfer([link], nbytes)
        yield ev
        done_times.append(env.now)

    for delay, nbytes in flows:
        env.process(start(env, net, delay, nbytes))
    env.run()
    total = sum(b for _, b in flows)
    assert len(done_times) == len(flows)
    assert net.bytes_transferred == pytest.approx(total)
    # The link is work-conserving: finishing earlier than total/capacity
    # from time zero is impossible.
    assert max(done_times) >= total / 100.0 - 1e-6
    # And it cannot be slower than serving everything after the last start.
    assert max(done_times) <= max(d for d, _ in flows) + total / 100.0 + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),   # flows on narrow path
    st.integers(min_value=1, max_value=6),   # flows on wide-only path
)
def test_max_min_allocation_respects_capacities(n_narrow, n_wide):
    env = Environment()
    net = FlowNetwork(env)
    narrow = Link("narrow", 10.0)
    wide = Link("wide", 100.0)
    for _ in range(n_narrow):
        net.transfer([narrow, wide], 1e6)
    for _ in range(n_wide):
        net.transfer([wide], 1e6)
    # Inspect rates immediately after allocation.
    flows = list(net._flows)
    for link in (narrow, wide):
        used = sum(f.rate for f in flows if link in f.links)
        assert used <= link.capacity + 1e-6
    # Narrow flows share the narrow link equally.
    narrow_rates = sorted(f.rate for f in flows if narrow in f.links)
    assert narrow_rates[-1] - narrow_rates[0] < 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                max_size=30))
def test_timeout_events_fire_in_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda ev, d=d: fired.append(d))
    env.run()
    assert fired == sorted(fired)
    assert env.now == pytest.approx(max(delays))
