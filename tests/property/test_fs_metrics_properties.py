"""Property-based tests: filesystem ranges, CDFs, solutions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Solution
from repro.disk import SECTOR_SIZE
from repro.metrics import Cdf, ProgressTimeline
from repro.virt import GuestFilesystem, SchedulerPair


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=4000),     # file sectors
    st.integers(min_value=0, max_value=4000),     # offset sectors
    st.integers(min_value=0, max_value=4000),     # length sectors
    st.floats(min_value=0.0, max_value=0.9),      # fragmentation
    st.integers(min_value=0, max_value=10_000),   # fs seed
)
def test_file_ranges_cover_exactly_the_request(size_s, off_s, len_s, frag, seed):
    import numpy as np

    fs = GuestFilesystem(
        total_sectors=10_000_000,
        fragmentation=frag,
        rng=np.random.default_rng(seed),
    )
    f = fs.create("f", size_s * SECTOR_SIZE)
    offset = off_s * SECTOR_SIZE
    length = len_s * SECTOR_SIZE
    if length == 0:
        assert list(f.ranges(offset, length)) == []
        return
    if offset + length > f.size_bytes:
        with pytest.raises(ValueError):
            list(f.ranges(offset, length))
        return
    runs = list(f.ranges(offset, length))
    # Total sectors match the (sector-rounded) request.
    assert sum(n for _, n in runs) == len_s
    # Runs fall inside allocated extents and don't overlap each other.
    extents = [(e.lba, e.end_lba) for e in f.extents]
    for lba, n in runs:
        assert n > 0
        assert any(lo <= lba and lba + n <= hi for lo, hi in extents)
    spans = sorted((lba, lba + n) for lba, n in runs)
    for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
        assert b1 <= a2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=100))
def test_cdf_percentiles_monotone(samples):
    cdf = Cdf.of(samples)
    qs = [0, 25, 50, 75, 100]
    values = [cdf.percentile(q) for q in qs]
    assert values == sorted(values)
    # np.mean can land 1 ulp outside [min, max] for identical samples.
    tol = 1e-9 * (1 + abs(cdf.maximum))
    assert cdf.minimum - tol <= cdf.mean <= cdf.maximum + tol
    assert cdf.prob_at_most(cdf.maximum) == pytest.approx(1.0)
    assert 0 <= cdf.prob_at_most(cdf.minimum - 1) <= cdf.prob_at_most(cdf.maximum)


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=100),
              st.floats(min_value=0, max_value=1)),
    min_size=1, max_size=50,
))
def test_progress_timeline_lookup_consistency(points):
    # Make progress monotone by sorting fractions against times.
    times = sorted(t for t, _ in points)
    fracs = sorted(f for _, f in points)
    timeline = ProgressTimeline.of(list(zip(times, fracs)))
    for t, f in zip(times, fracs):
        assert timeline.fraction_at_time(t) >= f - 1e-12
        assert timeline.time_at_fraction(f) <= t + 1e-12


PAIRS = st.sampled_from([
    SchedulerPair("cfq", "cfq"),
    SchedulerPair("anticipatory", "deadline"),
    SchedulerPair("deadline", "noop"),
    SchedulerPair("noop", "anticipatory"),
])


@settings(max_examples=50, deadline=None)
@given(st.lists(PAIRS, min_size=1, max_size=6))
def test_solution_of_roundtrips_effective(pairs):
    s = Solution.of(pairs)
    assert s.effective() == list(pairs)
    # Normalisation is idempotent.
    assert Solution.of(s.effective()) == s
    # Switch count equals the number of changes in the effective plan.
    changes = sum(1 for a, b in zip(pairs, pairs[1:]) if a != b)
    assert s.n_switches == changes
