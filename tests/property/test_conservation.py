"""Conservation invariants audited from trace records.

Every run — fault-free or under an aggressive fault plan — must conserve
bytes and requests end to end:

* every byte read from a scratch file (map spill, reduce spill, merged
  map output) was written to it first, at an extent that exists;
* every completed disk request was submitted, and no request completes
  twice (elevator merging is accounted via ``merged_rids``);
* the attempt ledger reconciles: attempts launched equal tasks finished
  plus failures plus kills, with no task lost or double-counted.

The audits run on the *same* trace topics the experiments consume, so
they double as regression tests for the instrumentation itself.
"""

from collections import defaultdict

import pytest

from repro.core.experiment import JobRunner
from repro.core.solution import Solution
from repro.api import scaled_testbed
from repro.faults import (
    DiskFaults,
    FaultPlan,
    SpeculationConfig,
    TaskFaults,
    VmFaults,
)
from repro.sim.tracing import TraceBus
from repro.virt.pair import DEFAULT_PAIR
from repro.workloads.profiles import SORT

SEEDS = (0, 1, 2)

#: Aggressive enough to exercise retries, speculation, kills, a crash,
#: pauses and disk degradation inside one small job.
AGGRESSIVE = FaultPlan(
    disk=DiskFaults(slow_interval_s=8.0, slow_factor=3.0, slow_duration_s=3.0,
                    spike_latency_s=0.002),
    vms=VmFaults(pause_interval_s=12.0, pause_duration_s=1.0,
                 crash_prob=0.4, crash_window_s=20.0, max_crashes=1),
    tasks=TaskFaults(map_fail_prob=0.2, reduce_fail_prob=0.15,
                     max_attempts=4),
    speculation=SpeculationConfig(enabled=True, check_interval_s=2.0),
)

PLANS = {"fault-free": None, "aggressive": AGGRESSIVE}

SCRATCH_PREFIXES = ("spill_", "rspill_", "mapout_")

_RUNS = {}


def traced_run(seed, plan_name):
    """One (memoised) instrumented run: ``(JobResult, TraceBus)``."""
    key = (seed, plan_name)
    if key not in _RUNS:
        buses = []

        def factory(s):
            bus = TraceBus()
            for topic in ("fs.read", "fs.write", "disk.submit",
                          "disk.complete"):
                bus.record_topic(topic)
            buses.append(bus)
            return bus

        runner = JobRunner(
            scaled_testbed(SORT, scale=0.02, hosts=2, vms_per_host=2,
                           seeds=(seed,)),
            trace_factory=factory,
            fault_plan=PLANS[plan_name],
        )
        result, _ = runner.execute_once(Solution.uniform(DEFAULT_PAIR, 2),
                                        seed)
        _RUNS[key] = (result, buses[0])
    return _RUNS[key]


def scratch_records(bus):
    """fs.read / fs.write records per scratch file, keyed ``(vm, file)``."""
    reads = defaultdict(list)
    writes = defaultdict(list)
    for record in bus.recorded("fs.read"):
        name = record.payload["file"]
        if name.startswith(SCRATCH_PREFIXES):
            reads[(record.payload["vm"], name)].append(record)
    for record in bus.recorded("fs.write"):
        name = record.payload["file"]
        if name.startswith(SCRATCH_PREFIXES):
            writes[(record.payload["vm"], name)].append(record)
    return reads, writes


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_scratch_reads_are_backed_by_writes(seed, plan_name):
    _, bus = traced_run(seed, plan_name)
    reads, writes = scratch_records(bus)
    assert writes, "job produced no scratch files — trace wiring broken?"
    for key, file_reads in reads.items():
        file_writes = writes.get(key)
        assert file_writes, f"{key} was read but never written"
        # Data must exist before it is consumed...
        first_write = min(r.time for r in file_writes)
        first_read = min(r.time for r in file_reads)
        assert first_write <= first_read, key
        # ...and reads must stay inside the written extent.
        written_end = max(
            r.payload["offset"] + r.payload["length"] for r in file_writes
        )
        for r in file_reads:
            assert r.payload["offset"] + r.payload["length"] <= written_end, key


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_scratch_bytes_conserve(seed):
    # Without retries, nothing re-reads scratch data: the bytes read out
    # of each spill / map output never exceed the bytes written into it.
    # (Under faults this deliberately does NOT hold — retried reducers
    # re-fetch map outputs — which is what the extent check above
    # verifies instead.)
    _, bus = traced_run(seed, "fault-free")
    reads, writes = scratch_records(bus)
    assert reads, "no scratch file was ever read back"
    for key, file_reads in reads.items():
        read_bytes = sum(r.payload["length"] for r in file_reads)
        written_bytes = sum(r.payload["length"] for r in writes[key])
        assert read_bytes <= written_bytes, key


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_disk_requests_complete_exactly_once(seed, plan_name):
    _, bus = traced_run(seed, plan_name)
    submitted = defaultdict(dict)
    for record in bus.recorded("disk.submit"):
        device = record.payload["device"]
        rid = record.payload["rid"]
        assert rid not in submitted[device], f"rid {rid} submitted twice"
        submitted[device][rid] = record.payload["op"]
    completed = defaultdict(set)
    for record in bus.recorded("disk.complete"):
        device = record.payload["device"]
        # A completion accounts for its own rid plus any requests the
        # elevator merged into it.
        for rid in [record.payload["rid"]] + list(record.payload["merged_rids"]):
            assert rid not in completed[device], f"rid {rid} completed twice"
            completed[device].add(rid)
    assert completed, "no disk completions recorded"
    for device, rids in completed.items():
        # Exactly-once: everything that completed was submitted exactly
        # once, and everything submitted completed — except page-cache
        # writeback still in flight at the instant the job finishes.
        # Reads are synchronous: a lost read would have hung the job.
        assert rids <= set(submitted[device]), device
        for rid, op in submitted[device].items():
            if rid not in rids:
                assert op == "write", (
                    f"{device}: read rid {rid} submitted but never completed"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_attempt_ledger_reconciles(seed):
    result, _ = traced_run(seed, "aggressive")
    stats = result.fault_stats
    assert stats["map_attempts"] > 0
    # Every launched attempt ends in exactly one bucket: success (one
    # per task), failure, or kill.
    assert stats["map_attempts"] == (
        result.n_maps + stats["map_failures"] + stats["map_killed"]
    )
    assert stats["reduce_attempts"] == (
        result.n_reducers + stats["reduce_retries"] + stats["reduce_killed"]
    )
    # Retries re-launch failed work, never invent or lose tasks.
    assert len([p for p in result.map_progress]) == result.n_maps
    assert result.phases.end is not None


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_run_has_empty_ledger(seed):
    result, _ = traced_run(seed, "fault-free")
    assert result.fault_stats == {}
    assert len(result.map_progress) == result.n_maps
