"""Property-based tests: every elevator conserves and orders requests."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import BlockRequest, IoOp
from repro.iosched import (
    AnticipatoryScheduler,
    CfqScheduler,
    DeadlineScheduler,
    NoopScheduler,
    SortedRequestList,
)
from repro.iosched.deadline import DeadlineParams

SCHEDULER_FACTORIES = [
    NoopScheduler,
    DeadlineScheduler,
    AnticipatoryScheduler,
    CfqScheduler,
]


request_strategy = st.tuples(
    st.integers(min_value=0, max_value=10_000_000),  # lba
    st.integers(min_value=1, max_value=1024),        # nsectors
    st.sampled_from([IoOp.READ, IoOp.WRITE]),
    st.sampled_from(["p1", "p2", "p3"]),
    st.floats(min_value=0.0, max_value=10.0),        # arrival time offset
)


def drain_via_dispatch(sched, horizon=10_000.0):
    """Dispatch everything, advancing past any idle holds."""
    out = []
    t = horizon  # far future: all holds expired, all batches rotate
    guard = 10_000
    while guard:
        guard -= 1
        d = sched.next_request(t)
        if d.request is not None:
            out.append(d.request)
        elif d.wait_until is not None and d.wait_until > t:
            t = d.wait_until
        else:
            break
    return out


@settings(max_examples=40, deadline=None)
@given(st.lists(request_strategy, min_size=0, max_size=60),
       st.sampled_from(SCHEDULER_FACTORIES))
def test_conservation_no_request_lost_or_duplicated(reqs, factory):
    """Sectors in == sectors out, for every scheduler and any arrivals."""
    sched = factory()
    arrivals = sorted(reqs, key=lambda r: r[4])
    total_in = 0
    for lba, n, op, pid, t in arrivals:
        sched.add_request(BlockRequest(lba, n, op, pid), t)
        total_in += n
    dispatched = drain_via_dispatch(sched)
    total_out = sum(r.nsectors for r in dispatched)
    assert total_out == total_in
    assert sched.pending == 0
    # No request id appears twice (merged children folded into parents).
    seen = set()
    for r in dispatched:
        for rid in [r.rid] + [c.rid for c in r.merged_children]:
            assert rid not in seen
            seen.add(rid)


@settings(max_examples=40, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=60),
       st.sampled_from(SCHEDULER_FACTORIES))
def test_drain_returns_exactly_whats_queued(reqs, factory):
    sched = factory()
    queued = 0
    for lba, n, op, pid, t in sorted(reqs, key=lambda r: r[4]):
        merged = sched.add_request(BlockRequest(lba, n, op, pid), t)
        if not merged:
            queued += 1
    drained = sched.drain()
    assert len(drained) == queued
    assert sched.pending == 0
    assert sched.next_request(0.0).idle


@settings(max_examples=40, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=60),
       st.sampled_from(SCHEDULER_FACTORIES))
def test_merges_only_adjacent_same_class(reqs, factory):
    """Any merged request must cover a contiguous LBA run of one class."""
    sched = factory()
    for lba, n, op, pid, t in sorted(reqs, key=lambda r: r[4]):
        sched.add_request(BlockRequest(lba, n, op, pid), t)
    for r in drain_via_dispatch(sched):
        if r.merged_children:
            covered = r.nsectors
            parts = sum(c.nsectors for c in r.merged_children)
            assert parts < covered  # parent kept its own sectors too
            assert all(c.op is r.op for c in r.merged_children)
            assert r.nsectors <= sched.max_sectors


def stepped_drain(sched, arrivals, delta, on_dispatch):
    """Drive the scheduler with a real clock: admit arrivals as time
    passes, dispatch one request per ``delta`` of service time, honour
    idle holds.  Returns False if the guard tripped (starvation)."""
    t = 0.0
    i = 0
    guard = 5000
    while (i < len(arrivals) or sched.pending) and guard:
        guard -= 1
        while i < len(arrivals) and arrivals[i][1] <= t:
            sched.add_request(arrivals[i][0], t)
            i += 1
        decision = sched.next_request(t)
        if decision.request is not None:
            on_dispatch(decision.request, t)
            sched.on_complete(decision.request, t + delta)
            t += delta
        elif decision.wait_until is not None and decision.wait_until > t:
            t = decision.wait_until
        elif i < len(arrivals):
            t = max(t + delta, arrivals[i][1])
        else:
            t += delta
    return guard > 0


@settings(max_examples=40, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=40))
def test_deadline_expiry_lateness_is_bounded(reqs):
    """Once a request's deadline expires, deadline serves it within a
    bounded amount of further dispatching — expiry jumps actually fire."""
    params = DeadlineParams()
    sched = DeadlineScheduler()
    delta = 0.05
    arrivals = [(BlockRequest(lba, n, op, pid), at)
                for lba, n, op, pid, at in sorted(reqs, key=lambda r: r[4])]
    worst = []

    def watch(request, now):
        if request.deadline is not None:
            worst.append(now - request.deadline)

    assert stepped_drain(sched, arrivals, delta, watch)
    assert sched.pending == 0
    # Worst admissible lateness: every other queued request is serviced
    # first (<= 40 x delta each), inflated by write-starvation batching.
    bound = delta * (len(arrivals) * (params.writes_starved + 2)
                     + params.fifo_batch)
    assert max(worst) <= bound


@settings(max_examples=30, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=40),
       st.sampled_from(SCHEDULER_FACTORIES))
def test_no_process_starves_under_stepped_dispatch(reqs, factory):
    """Every process's every request is eventually served, for every
    scheduler, under a realistic admit-as-you-go clock (unlike the
    jump-to-horizon drain above, idle holds and slices really engage)."""
    sched = factory()
    submitted = defaultdict(set)
    arrivals = []
    for lba, n, op, pid, at in sorted(reqs, key=lambda r: r[4]):
        request = BlockRequest(lba, n, op, pid)
        submitted[pid].add(request.rid)
        arrivals.append((request, at))
    served = set()

    def collect(request, now):
        served.update(request.all_rids())

    assert stepped_drain(sched, arrivals, 0.01, collect), (
        f"{sched.name} failed to drain: starvation"
    )
    assert sched.pending == 0
    for pid, rids in submitted.items():
        missing = rids - served
        assert not missing, f"{sched.name} starved {pid}: {missing}"


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.integers(min_value=0, max_value=1_000_000), min_size=0, max_size=80
))
def test_sorted_list_iterates_in_lba_order(lbas):
    s = SortedRequestList()
    reqs = [BlockRequest(lba, 1, IoOp.READ, "p") for lba in lbas]
    for r in reqs:
        s.add(r)
    out = [r.lba for r in s]
    assert out == sorted(lbas)
    assert len(s) == len(lbas)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
             max_size=50),
    st.integers(min_value=0, max_value=100_000),
)
def test_sorted_list_first_at_or_after_is_correct(lbas, probe):
    s = SortedRequestList()
    for lba in lbas:
        s.add(BlockRequest(lba, 1, IoOp.READ, "p"))
    hit = s.first_at_or_after(probe, wrap=False)
    expected = min((l for l in lbas if l >= probe), default=None)
    assert (hit.lba if hit else None) == expected
    wrapped = s.first_at_or_after(probe, wrap=True)
    assert wrapped.lba == (expected if expected is not None else min(lbas))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
             max_size=50),
    st.integers(min_value=0, max_value=100_000),
)
def test_sorted_list_closest_to_is_correct(lbas, probe):
    s = SortedRequestList()
    for lba in lbas:
        s.add(BlockRequest(lba, 1, IoOp.READ, "p"))
    hit = s.closest_to(probe)
    best = min(abs(l - probe) for l in lbas)
    assert abs(hit.lba - probe) == best
