"""Unit tests for AdaptiveReport and meta-scheduler caching."""

import pytest

from repro.core import AdaptiveMetaScheduler, AdaptiveReport, Solution
from repro.core.heuristic import ProfiledScores
from repro.virt import SchedulerPair

from .conftest import SEARCH_PAIRS, tiny_testbed

CC, AC, DC, NC = SEARCH_PAIRS


def fake_report(default=100.0, single=90.0, adaptive=80.0) -> AdaptiveReport:
    return AdaptiveReport(
        default_pair=CC,
        default_time=default,
        best_single_pair=AC,
        best_single_time=single,
        adaptive_solution=Solution((AC, DC)),
        adaptive_time=adaptive,
        evaluations=12,
        scores=ProfiledScores(totals={CC: default, AC: single},
                              per_phase={CC: (50, 50), AC: (45, 45)}),
    )


def test_gains_computed_correctly():
    rep = fake_report()
    assert rep.gain_vs_default == pytest.approx(0.2)
    assert rep.gain_vs_best_single == pytest.approx(1 - 80 / 90)


def test_summary_mentions_everything():
    text = fake_report().summary()
    assert "(CFQ, CFQ)" in text
    assert "(AS, CFQ)" in text
    assert "adaptive" in text
    assert "%" in text


def test_meta_scheduler_caches_profile_and_search():
    meta = AdaptiveMetaScheduler(tiny_testbed(), pairs=SEARCH_PAIRS[:2])
    p1 = meta.profile()
    p2 = meta.profile()
    assert p1 is p2
    s1 = meta.optimize()
    s2 = meta.optimize()
    assert s1 is s2


def test_meta_scheduler_report_consistent_with_runner():
    meta = AdaptiveMetaScheduler(tiny_testbed(), pairs=SEARCH_PAIRS[:2])
    rep = meta.report()
    assert rep.adaptive_time <= rep.best_single_time * 1.05
    assert rep.evaluations >= len(SEARCH_PAIRS[:2])
    # The adaptive plan really evaluates to the reported time.
    assert meta.runner.score(rep.adaptive_solution) == pytest.approx(
        rep.adaptive_time
    )


def test_report_includes_default_even_outside_candidates():
    # Candidate set without (CFQ, CFQ): the default baseline must still
    # be measured for the comparison.
    meta = AdaptiveMetaScheduler(tiny_testbed(), pairs=[AC, DC])
    rep = meta.report()
    assert rep.default_pair == CC
    assert rep.default_time > 0
