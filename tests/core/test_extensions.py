"""Tests for the future-work extensions: online controller, fine-grained
plans, job chains."""

import pytest

from repro.core import (
    ChainConfig,
    ChainRunner,
    FineGrainedAssignment,
    HeuristicSearch,
    OnlineController,
    OnlinePolicy,
    Solution,
    apply_assignment,
    profile_single_pairs,
)
from repro.hdfs import NameNode
from repro.mapreduce import MB, JobConfig, MapReduceJob
from repro.net import Topology
from repro.sim import Environment
from repro.virt import ClusterConfig, PageCacheParams, SchedulerPair, VirtualCluster
from repro.workloads import SORT, WORDCOUNT

from .conftest import SEARCH_PAIRS, tiny_testbed

CC = SchedulerPair("cfq", "cfq")
AD = SchedulerPair("anticipatory", "deadline")


def small_cluster_config():
    return ClusterConfig(
        hosts=2,
        vms_per_host=2,
        pagecache=PageCacheParams(
            capacity_bytes=40 * MB,
            dirty_background_bytes=2 * MB,
            dirty_limit_bytes=8 * MB,
        ),
    )


def small_job(spec=SORT, **over):
    defaults = dict(
        bytes_per_vm=16 * MB,
        block_size=8 * MB,
        sort_buffer_bytes=8 * MB,
        shuffle_buffer_bytes=8 * MB,
    )
    defaults.update(over)
    return JobConfig(spec=spec, **defaults)


# -- online controller ------------------------------------------------------------


def run_job_with_controller(policy=None):
    env = Environment()
    cluster = VirtualCluster(env, small_cluster_config())
    topo = Topology(env)
    nn = NameNode(cluster, block_size=8 * MB)
    job = MapReduceJob(env, cluster, topo, nn, small_job(bytes_per_vm=32 * MB))
    controller = OnlineController(env, cluster, policy)
    proc = job.start()

    def stopper():
        yield proc
        controller.stop()

    env.process(stopper())
    env.run(until=proc)
    env.run(until=env.now + 10)  # let the controller notice the stop
    return proc.value, controller


def test_online_controller_reacts_and_job_completes():
    result, controller = run_job_with_controller(
        OnlinePolicy(sample_interval=1.0, hysteresis=2)
    )
    assert result.duration > 0
    # The controller observed the workload and made decisions.
    assert controller.decisions or controller.switches == 0
    # Decisions reference real hosts.
    for _, host, regime in controller.decisions:
        assert host in {"h0", "h1"}
        assert regime in {"read-heavy", "write-heavy", "mixed"}


def test_online_policy_classification():
    policy = OnlinePolicy(read_heavy_share=0.6, write_heavy_share=0.3)
    assert policy.classify(0.8).name == "read-heavy"
    assert policy.classify(0.1).name == "write-heavy"
    assert policy.classify(0.45).name == "mixed"


def test_online_controller_hysteresis_limits_flapping():
    _, eager = run_job_with_controller(
        OnlinePolicy(sample_interval=0.5, hysteresis=1)
    )
    _, cautious = run_job_with_controller(
        OnlinePolicy(sample_interval=0.5, hysteresis=4)
    )
    assert cautious.switches <= eager.switches


# -- fine-grained plans ------------------------------------------------------------


def test_apply_assignment_switches_selected_devices():
    env = Environment()
    cluster = VirtualCluster(env, small_cluster_config())
    assignment = FineGrainedAssignment.of(
        vmm={"h0": "anticipatory"},
        vms={"h1v0": "deadline"},
    )
    done = apply_assignment(env, cluster, assignment)
    env.run(until=done)
    assert cluster.hosts[0].disk.scheduler.name == "anticipatory"
    assert cluster.hosts[1].disk.scheduler.name == "cfq"  # untouched
    assert cluster.vm("h1v0").scheduler_name == "deadline"
    assert cluster.vm("h0v0").scheduler_name == "cfq"  # untouched


def test_apply_assignment_skips_already_installed():
    env = Environment()
    cluster = VirtualCluster(env, small_cluster_config())
    before = cluster.hosts[0].disk.switch_count
    done = apply_assignment(
        env, cluster, FineGrainedAssignment.of(vmm={"h0": "cfq"})
    )
    env.run(until=done)
    assert cluster.hosts[0].disk.switch_count == before  # no-op, no drain


def test_assignment_unknown_host_raises():
    env = Environment()
    cluster = VirtualCluster(env, small_cluster_config())
    with pytest.raises(KeyError):
        apply_assignment(
            env, cluster, FineGrainedAssignment.of(vmm={"nope": "cfq"})
        )


def test_uniform_assignment_covers_cluster():
    env = Environment()
    cluster = VirtualCluster(env, small_cluster_config())
    a = FineGrainedAssignment.uniform(cluster, AD)
    assert len(a.vmm) == 2
    assert len(a.vms) == 4
    done = apply_assignment(env, cluster, a)
    env.run(until=done)
    for host in cluster.hosts:
        assert host.current_pair == AD


def test_assignment_canonicalizes_names():
    a = FineGrainedAssignment.of(vmm={"h0": "AS"}, vms={"v": "DL"})
    assert dict(a.vmm)["h0"] == "anticipatory"
    assert dict(a.vms)["v"] == "deadline"
    assert FineGrainedAssignment.of().is_noop


# -- job chains ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chain_runner():
    config = ChainConfig(
        cluster=small_cluster_config(),
        jobs=(small_job(WORDCOUNT), small_job(SORT)),
        seeds=(0,),
    )
    return ChainRunner(config)


def test_chain_has_two_phases_per_job(chain_runner):
    assert chain_runner.config.n_phases == 4


def test_chain_uniform_run_executes_both_jobs(chain_runner):
    outcome = chain_runner.run_uniform(CC)
    assert outcome.mean_duration > 0
    phases = outcome.mean_phases
    assert len(phases) == 4
    assert all(p >= 0 for p in phases)
    assert sum(phases) == pytest.approx(outcome.mean_duration, rel=0.01)


def test_chain_plan_with_switches_runs(chain_runner):
    plan = Solution((CC, AD, None, CC))
    outcome = chain_runner.run_plan(plan)
    assert outcome.mean_duration > 0


def test_chain_wrong_phase_count_rejected(chain_runner):
    with pytest.raises(ValueError):
        chain_runner.score(Solution.uniform(CC, 2))


def test_chain_caching(chain_runner):
    chain_runner.run_uniform(CC)
    n = chain_runner.runs_executed
    chain_runner.run_uniform(CC)
    assert chain_runner.runs_executed == n


def test_heuristic_runs_on_chain(chain_runner):
    """Algorithm 1 over a 4-phase chain: <= P x S evaluations."""
    pairs = SEARCH_PAIRS[:3]
    scores = profile_single_pairs(chain_runner, pairs)
    assert scores.n_phases == 4
    result = HeuristicSearch(chain_runner, scores, pairs).search()
    assert len(result.solution) == 4
    assert result.evaluations <= 4 * len(pairs)
    best_single = min(scores.totals.values())
    assert result.score <= best_single * 1.1


def test_chain_config_validation():
    with pytest.raises(ValueError):
        ChainConfig(cluster=small_cluster_config(), jobs=())
    with pytest.raises(ValueError):
        ChainConfig(cluster=small_cluster_config(), jobs=(small_job(),), seeds=())
