"""Unit tests for phase-plan solutions."""

import pytest

from repro.core import Solution
from repro.virt import SchedulerPair

CC = SchedulerPair("cfq", "cfq")
AD = SchedulerPair("anticipatory", "deadline")
DD = SchedulerPair("deadline", "deadline")


def test_uniform_plan_has_no_switches():
    s = Solution.uniform(CC, 3)
    assert len(s) == 3
    assert s.n_switches == 0
    assert s.is_uniform
    assert s.effective() == [CC, CC, CC]


def test_explicit_plan_counts_switches():
    s = Solution((AD, DD, None))
    assert s.n_switches == 1
    assert s.effective() == [AD, DD, DD]


def test_of_collapses_repeats():
    s = Solution.of([AD, AD, DD])
    assert s.assignments == (AD, None, DD)
    assert s.n_switches == 1


def test_of_preserves_alternation():
    s = Solution.of([AD, DD, AD])
    assert s.n_switches == 2
    assert s.effective() == [AD, DD, AD]


def test_first_phase_must_be_concrete():
    with pytest.raises(ValueError):
        Solution((None, AD))
    with pytest.raises(ValueError):
        Solution(())


def test_str_uses_paper_zero_notation():
    s = Solution((AD, None))
    assert str(s) == "(AS, DL) -> 0"


def test_uniform_invalid_phases():
    with pytest.raises(ValueError):
        Solution.uniform(CC, 0)


def test_solutions_hashable_and_equal():
    assert Solution((AD, None)) == Solution((AD, None))
    assert hash(Solution((AD, None))) == hash(Solution((AD, None)))
    assert Solution((AD, None)) != Solution((AD, DD))
