"""Tests: the observational phase detector vs the oracle job events."""

import pytest

from repro.core import DetectorParams, PhaseDetector, ResourceSample
from repro.hdfs import NameNode
from repro.mapreduce import MB, JobConfig, MapReduceJob
from repro.net import Topology
from repro.sim import Environment
from repro.virt import ClusterConfig, PageCacheParams, VirtualCluster
from repro.workloads import SORT


def run_sort_with_detector(params=None):
    env = Environment()
    cluster = VirtualCluster(
        env,
        ClusterConfig(
            hosts=2,
            vms_per_host=2,
            pagecache=PageCacheParams(
                capacity_bytes=40 * MB,
                dirty_background_bytes=2 * MB,
                dirty_limit_bytes=8 * MB,
            ),
        ),
    )
    topo = Topology(env)
    nn = NameNode(cluster, block_size=8 * MB)
    job = MapReduceJob(
        env, cluster, topo, nn,
        JobConfig(spec=SORT, bytes_per_vm=64 * MB, block_size=8 * MB,
                  sort_buffer_bytes=8 * MB, shuffle_buffer_bytes=8 * MB),
    )
    detector = PhaseDetector(env, cluster, params)
    proc = job.start()

    def stopper():
        yield proc
        detector.stop()

    env.process(stopper())
    env.run(until=proc)
    env.run(until=env.now + 5)
    return proc.value, detector


def test_detector_collects_samples():
    result, detector = run_sort_with_detector()
    assert len(detector.samples) >= int(result.duration) - 2
    for s in detector.samples:
        assert 0 <= s.cpu_util <= 1
        assert s.disk_read_rate >= 0 and s.disk_write_rate >= 0


def test_detector_finds_maps_done_near_oracle():
    result, detector = run_sort_with_detector()
    oracle = result.phases.maps_done
    assert detector.maps_done_detected is not None
    # Coarse-grained detection: within a handful of sampling windows of
    # the true boundary (the paper's detection is coarse by design).
    assert detector.maps_done_detected == pytest.approx(oracle, abs=6.0)
    # Crucially, never *before* the read stream actually collapsed
    # far ahead of the boundary.
    assert detector.maps_done_detected > oracle * 0.5


def test_read_share_property():
    s = ResourceSample(0.0, 0.5, 75.0, 25.0)
    assert s.read_share == pytest.approx(0.75)
    idle = ResourceSample(0.0, 0.0, 0.0, 0.0)
    assert idle.read_share == 0.0


def test_classification_classes():
    detector_cls = PhaseDetector.classify
    d = PhaseDetector.__new__(PhaseDetector)  # classify needs no state
    assert detector_cls(d, ResourceSample(0, 0.9, 100, 100)) == "computation+disk"
    assert detector_cls(d, ResourceSample(0, 0.0, 100, 100)) == "disk+network"
    assert detector_cls(d, ResourceSample(0, 0.9, 0, 0)) == "computation"
    assert detector_cls(d, ResourceSample(0, 0.0, 0, 0)) == "idle"


def test_hysteresis_avoids_spurious_boundaries():
    """A single write-dominated window must not trigger detection."""
    _, strict = run_sort_with_detector(
        DetectorParams(sample_interval=0.5, hysteresis=6)
    )
    _, eager = run_sort_with_detector(
        DetectorParams(sample_interval=0.5, hysteresis=1)
    )
    if strict.maps_done_detected and eager.maps_done_detected:
        assert eager.maps_done_detected <= strict.maps_done_detected + 1e-9
