"""Tests for the switch-cost meter, matrix, and prediction model."""

import pytest

from repro.core import SwitchCostMeter, SwitchCostModel
from repro.mapreduce import MB
from repro.virt import ClusterConfig, PageCacheParams, SchedulerPair

CC = SchedulerPair("cfq", "cfq")
AD = SchedulerPair("anticipatory", "deadline")
DD = SchedulerPair("deadline", "deadline")
NN = SchedulerPair("noop", "noop")

SMALL_CLUSTER = ClusterConfig(
    hosts=1,
    vms_per_host=2,
    pagecache=PageCacheParams(
        capacity_bytes=40 * MB,
        dirty_background_bytes=2 * MB,
        dirty_limit_bytes=8 * MB,
    ),
)


@pytest.fixture(scope="module")
def meter():
    return SwitchCostMeter(SMALL_CLUSTER, nbytes=48 * MB, seeds=(0,))


def test_pure_time_positive_and_cached(meter):
    t1 = meter.pure_time(CC)
    t2 = meter.pure_time(CC)
    assert t1 > 0
    assert t1 == t2  # cached


def test_transition_cost_nonzero(meter):
    cost = meter.transition_cost(CC, AD)
    # The drain + cold restart must cost something; it may in odd cases
    # be mildly negative if the destination half overperforms, but not
    # hugely so.
    assert cost > -meter.pure_time(CC) * 0.5


def test_same_to_same_switch_costly(meter):
    """The paper: re-assigning the same pair is not free."""
    cost = meter.transition_cost(CC, CC)
    assert cost > 0


def test_noncommutative_costs(meter):
    """cost(a->b) != cost(b->a) in general (paper Fig. 5)."""
    ab = meter.transition_cost(AD, NN)
    ba = meter.transition_cost(NN, AD)
    assert ab != pytest.approx(ba, rel=0.01)


def test_matrix_shape_and_contents(meter):
    pairs = [CC, DD]
    matrix = meter.matrix(pairs)
    assert set(matrix.costs) == {(a, b) for a in pairs for b in pairs}
    assert set(matrix.pure_times) == set(pairs)
    assert matrix.min_cost <= matrix.max_cost
    assert matrix.asymmetry(CC, DD) >= 0


def test_meter_forces_single_host():
    meter = SwitchCostMeter(ClusterConfig(hosts=4, vms_per_host=2))
    assert meter.cluster_config.hosts == 1


# -- prediction model --------------------------------------------------------------


def test_model_fits_and_predicts(meter):
    pairs = [CC, AD, NN]
    matrix = meter.matrix(pairs)
    model = SwitchCostModel()
    rms = model.fit(matrix)
    assert rms >= 0
    # Predictions should be in the ballpark of the measured range.
    span = matrix.max_cost - matrix.min_cost
    for (src, dst), cost in matrix.costs.items():
        assert abs(model.predict(src, dst) - cost) <= max(span, 1.0) * 1.5


def test_model_unfitted_raises():
    model = SwitchCostModel()
    with pytest.raises(RuntimeError):
        model.predict(CC, DD)
