"""Shared fixtures: a tiny testbed so core tests stay fast."""

import pytest

from repro.core import JobRunner, TestbedConfig
from repro.mapreduce import MB, JobConfig
from repro.virt import ClusterConfig, PageCacheParams, SchedulerPair
from repro.workloads import SORT


def tiny_testbed(seeds=(0,), n_phases=2, **job_overrides):
    """2 hosts x 2 VMs, 32 MB per VM: a job runs in <1 s of wall time."""
    cluster = ClusterConfig(
        hosts=2,
        vms_per_host=2,
        pagecache=PageCacheParams(
            capacity_bytes=40 * MB,
            dirty_background_bytes=2 * MB,
            dirty_limit_bytes=8 * MB,
        ),
    )
    job = JobConfig(
        spec=SORT,
        bytes_per_vm=32 * MB,
        block_size=8 * MB,
        sort_buffer_bytes=8 * MB,
        shuffle_buffer_bytes=8 * MB,
        **job_overrides,
    )
    return TestbedConfig(cluster=cluster, job=job, seeds=seeds,
                         n_phases=n_phases)


@pytest.fixture
def testbed():
    return tiny_testbed()


@pytest.fixture
def runner(testbed):
    return JobRunner(testbed)


#: A small pair subset used by search tests (4 plans at P=2 -> 16).
SEARCH_PAIRS = [
    SchedulerPair("cfq", "cfq"),
    SchedulerPair("anticipatory", "cfq"),
    SchedulerPair("deadline", "cfq"),
    SchedulerPair("noop", "cfq"),
]
