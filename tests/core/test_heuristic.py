"""Tests for Algorithm 1 and the brute-force baseline.

The heavy lifting runs on a tiny 2x2 testbed with a 4-pair candidate
set so the whole search stays under a minute.
"""

import pytest

from repro.core import (
    BruteForceSearch,
    HeuristicSearch,
    JobRunner,
    ProfiledScores,
    Solution,
    enumerate_solutions,
    profile_single_pairs,
)
from repro.virt import SchedulerPair

from .conftest import SEARCH_PAIRS, tiny_testbed

CC, AC, DC, NC = SEARCH_PAIRS


@pytest.fixture(scope="module")
def searched():
    """Profile + heuristic + brute force, shared by the module's tests."""
    runner = JobRunner(tiny_testbed())
    scores = profile_single_pairs(runner, SEARCH_PAIRS)
    heuristic = HeuristicSearch(runner, scores, SEARCH_PAIRS).search()
    brute = BruteForceSearch(runner, SEARCH_PAIRS).search()
    return runner, scores, heuristic, brute


# -- ProfiledScores --------------------------------------------------------------


def test_profile_covers_all_pairs(searched):
    _, scores, _, _ = searched
    assert set(scores.totals) == set(SEARCH_PAIRS)
    assert scores.n_phases == 2
    for pair in SEARCH_PAIRS:
        assert sum(scores.per_phase[pair]) == pytest.approx(
            scores.totals[pair], rel=0.01
        )


def test_ranked_for_phase_sorted(searched):
    _, scores, _, _ = searched
    order = scores.ranked_for_phase(0)
    values = [scores.per_phase[p][0] for p in order]
    assert values == sorted(values)


def test_best_single_is_argmin(searched):
    _, scores, _, _ = searched
    pair, value = scores.best_single()
    assert value == min(scores.totals.values())
    assert scores.totals[pair] == value


def test_best_for_remaining_minimizes_tail(searched):
    _, scores, _, _ = searched
    tail_pair = scores.best_for_remaining(1)
    tails = {p: scores.per_phase[p][1] for p in SEARCH_PAIRS}
    assert tails[tail_pair] == min(tails.values())


# -- Heuristic (Algorithm 1) ---------------------------------------------------------


def test_heuristic_returns_runnable_solution(searched):
    runner, _, heuristic, _ = searched
    assert isinstance(heuristic.solution, Solution)
    assert len(heuristic.solution) == 2
    assert heuristic.score == pytest.approx(runner.score(heuristic.solution))


def test_heuristic_respects_px_s_bound(searched):
    _, _, heuristic, _ = searched
    # The paper: running time at most P x S evaluations.
    assert heuristic.evaluations <= 2 * len(SEARCH_PAIRS)


def test_heuristic_beats_or_matches_default(searched):
    _, scores, heuristic, _ = searched
    assert heuristic.score <= scores.totals[CC] * 1.02


def test_heuristic_close_to_brute_force(searched):
    _, _, heuristic, brute = searched
    # Greedy isn't guaranteed optimal; bound its regret.
    assert heuristic.score <= brute.score * 1.15


def test_history_records_evaluations(searched):
    _, _, heuristic, _ = searched
    assert len(heuristic.history) == heuristic.evaluations
    for plan, score in heuristic.history:
        assert isinstance(plan, Solution)
        assert score > 0


def test_phase_count_mismatch_rejected():
    runner2 = JobRunner(tiny_testbed(n_phases=2))
    runner3 = JobRunner(tiny_testbed(n_phases=3))
    scores3 = ProfiledScores(
        totals={CC: 1.0},
        per_phase={CC: (0.4, 0.3, 0.3)},
    )
    with pytest.raises(ValueError):
        HeuristicSearch(runner2, scores3, [CC])


# -- Brute force ------------------------------------------------------------------


def test_enumerate_solutions_counts():
    plans = enumerate_solutions(SEARCH_PAIRS, 2)
    assert len(plans) == len(SEARCH_PAIRS) ** 2
    assert len(set(plans)) == len(plans)
    # Uniform plans appear with the no-switch encoding.
    assert Solution((CC, None)) in plans


def test_enumerate_invalid_phases():
    with pytest.raises(ValueError):
        enumerate_solutions(SEARCH_PAIRS, 0)


def test_brute_force_optimal_within_history(searched):
    _, _, _, brute = searched
    assert brute.score == min(score for _, score in brute.history)
    assert brute.evaluations == len(SEARCH_PAIRS) ** 2


def test_brute_force_at_least_as_good_as_any_single(searched):
    _, scores, _, brute = searched
    assert brute.score <= min(scores.totals.values()) + 1e-9
