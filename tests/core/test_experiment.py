"""Tests for the JobRunner harness (plans, caching, switching)."""

import pytest

from repro.core import JobRunner, Solution, TestbedConfig
from repro.mapreduce import JobConfig, MB
from repro.virt import ClusterConfig, SchedulerPair
from repro.workloads import SORT

from .conftest import tiny_testbed

CC = SchedulerPair("cfq", "cfq")
AD = SchedulerPair("anticipatory", "deadline")
DD = SchedulerPair("deadline", "deadline")


def test_uniform_run_produces_results_per_seed():
    runner = JobRunner(tiny_testbed(seeds=(0, 1)))
    outcome = runner.run_uniform(CC)
    assert len(outcome.results) == 2
    assert outcome.mean_duration > 0
    assert len(outcome.mean_phases) == 2
    assert sum(outcome.mean_phases) == pytest.approx(outcome.mean_duration,
                                                     rel=0.01)


def test_runner_caches_identical_plans():
    runner = JobRunner(tiny_testbed())
    runner.run_uniform(CC)
    n = runner.runs_executed
    runner.run_uniform(CC)
    assert runner.runs_executed == n


def test_score_equals_mean_duration():
    runner = JobRunner(tiny_testbed())
    plan = Solution.uniform(CC, 2)
    assert runner.score(plan) == runner.run_plan(plan).mean_duration


def test_plan_with_switch_executes_and_pays_stall():
    runner = JobRunner(tiny_testbed())
    outcome = runner.run_plan(Solution((CC, AD)))
    assert outcome.mean_duration > 0
    # The phase-2 switch stalled the devices for a measurable time.
    assert all(stall > 0 for stall in outcome.switch_stalls)


def test_uniform_plan_has_zero_stall():
    runner = JobRunner(tiny_testbed())
    outcome = runner.run_plan(Solution((CC, None)))
    assert all(stall == 0 for stall in outcome.switch_stalls)


def test_plan_phase_count_must_match():
    runner = JobRunner(tiny_testbed(n_phases=2))
    with pytest.raises(ValueError):
        runner.run_plan(Solution((CC, AD, DD)))


def test_three_phase_plans_supported():
    runner = JobRunner(tiny_testbed(n_phases=3))
    outcome = runner.run_plan(Solution((CC, AD, DD)))
    assert outcome.mean_duration > 0
    assert len(outcome.mean_phases) == 3


def test_deterministic_same_seed_same_score():
    r1 = JobRunner(tiny_testbed())
    r2 = JobRunner(tiny_testbed())
    assert r1.score(Solution.uniform(AD, 2)) == pytest.approx(
        r2.score(Solution.uniform(AD, 2))
    )


def test_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(cluster=ClusterConfig(), job=None)
    job = JobConfig(spec=SORT, bytes_per_vm=8 * MB, block_size=8 * MB)
    with pytest.raises(ValueError):
        TestbedConfig(cluster=ClusterConfig(), job=job, n_phases=5)
    with pytest.raises(ValueError):
        TestbedConfig(cluster=ClusterConfig(), job=job, seeds=())


def test_switch_changes_installed_pair():
    """After a planned switch the cluster really runs the new pair."""
    import repro.core.experiment as exp
    from repro.hdfs import NameNode
    from repro.mapreduce import MapReduceJob
    from repro.net import Topology
    from repro.sim import Environment
    from repro.virt import VirtualCluster

    config = tiny_testbed()
    env = Environment()
    cluster = VirtualCluster(env, config.cluster.with_(initial_pair=CC))
    topology = Topology(env)
    namenode = NameNode(cluster, block_size=config.job.block_size)
    job = MapReduceJob(env, cluster, topology, namenode, config.job)
    proc = job.start()

    def switcher():
        yield job.maps_done_event
        yield cluster.set_pair(AD)

    env.process(switcher())
    env.run(until=proc)
    host = cluster.hosts[0]
    assert host.disk.scheduler.name == "anticipatory"
    assert host.vms[0].scheduler_name == "deadline"
