"""The bench harness: one tiny scenario end-to-end + schema checks."""

import json

import pytest

from repro.api import scaled_testbed
from repro.bench import (
    GATE_SCENARIO,
    SCENARIOS,
    BenchError,
    Baseline,
    BenchScenario,
    bench_payload_digest,
    run_scenario,
    write_bench_file,
)
from repro.core.solution import Solution
from repro.runner.kinds import execute_spec
from repro.runner.spec import RunSpec
from repro.virt.pair import DEFAULT_PAIR
from repro.workloads.profiles import SORT


def _tiny_specs():
    # The golden-digest job: sort at scale 0.05 on 2 hosts x 2 VMs.
    return [
        RunSpec(
            kind="job",
            seed=0,
            config=(
                scaled_testbed(SORT, scale=0.05, hosts=2, vms_per_host=2,
                               seeds=(0,)),
                Solution.uniform(DEFAULT_PAIR, 2),
            ),
        )
    ]


def _tiny_scenario(expected_digest=None):
    if expected_digest is None:
        payload = json.loads(
            json.dumps(execute_spec(_tiny_specs()[0]), sort_keys=True)
        )
        expected_digest = bench_payload_digest([payload])
    return BenchScenario(
        name="tiny",
        make_specs=_tiny_specs,
        repeats=2, quick_repeats=1, warmup=0,
        expected_digest=expected_digest,
        baseline=Baseline(wall_s=1.0, events=10548, events_per_s=10548.0),
    )


def test_run_scenario_end_to_end():
    timing = run_scenario(_tiny_scenario(), repeats=2)
    assert timing.events > 0
    assert timing.wall_s > 0
    assert timing.events_per_s == pytest.approx(timing.events / timing.wall_s)
    assert timing.rss_mb > 0
    assert len(timing.walls) == 2
    assert timing.speedup == pytest.approx(
        timing.events_per_s / 10548.0, rel=1e-6
    )
    # Median of two repeats is their mean.
    assert timing.wall_s == pytest.approx(sum(timing.walls) / 2)


def test_run_scenario_rejects_digest_drift():
    bad = _tiny_scenario(expected_digest="0" * 64)
    with pytest.raises(BenchError):
        run_scenario(bad, repeats=1)


def test_bench_file_schema(tmp_path):
    timing = run_scenario(
        SCENARIOS["sysbench"], repeats=1
    )
    out = tmp_path / "BENCH_test.json"
    path = write_bench_file([timing], mode="quick", out=str(out))
    assert path == str(out)
    doc = json.loads(out.read_text())

    for key in ("rev", "version", "mode", "baseline_rev", "scenarios"):
        assert key in doc
    assert doc["mode"] == "quick"

    entry = doc["scenarios"]["sysbench"]
    assert isinstance(entry["events"], int) and entry["events"] > 0
    assert entry["wall_s"] > 0
    assert entry["events_per_s"] > 0
    assert entry["rss_mb"] > 0
    assert entry["digest"] == SCENARIOS["sysbench"].expected_digest
    assert len(entry["walls"]) == 1
    assert entry["speedup"] > 0
    for key in ("wall_s", "events", "events_per_s"):
        assert entry["baseline"][key] > 0


def test_registry_shape():
    assert set(SCENARIOS) == {
        "sysbench", "fig2_single_pair", "sort", "faulty_job", "scale_sweep",
        "multijob", "ssd_sort",
    }
    assert GATE_SCENARIO in SCENARIOS
    for scenario in SCENARIOS.values():
        assert len(scenario.expected_digest) == 64
        int(scenario.expected_digest, 16)  # hex
        assert scenario.baseline.events > 0
        assert scenario.baseline.wall_s > 0
        assert scenario.repeats >= 1
    # Quick mode keeps the gate scenario but drops the heavy sweep.
    assert SCENARIOS[GATE_SCENARIO].in_quick
    assert not SCENARIOS["scale_sweep"].in_quick


def test_cli_bench_subcommand(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    rc = main(["bench", "sysbench", "--repeats", "1", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert "sysbench" in doc["scenarios"]
    assert capsys.readouterr().out.strip() == str(out)


def test_cli_bench_unknown_scenario():
    from repro.cli import main

    assert main(["bench", "nope"]) == 2
    assert main(["bench", "--profile", "nope"]) == 2


def test_run_trace_overhead_audits_both_sides():
    from repro.bench.harness import run_trace_overhead

    probe = run_trace_overhead(SCENARIOS["sysbench"], repeats=1)
    assert probe["scenario"] == "sysbench"
    assert probe["events"] > 0
    assert probe["untraced_events_per_s"] > 0
    assert probe["traced_events_per_s"] > 0
    # Tracing costs something but must never change the payloads (the
    # digest audit inside run_trace_overhead would have raised).
    assert 0 < probe["traced_ratio"] <= 1.5


def test_run_trace_overhead_refuses_an_already_traced_process(
    monkeypatch, tmp_path
):
    from repro.bench.harness import run_trace_overhead
    from repro.obs import capture

    monkeypatch.setenv(capture.ENV_TRACE_OUT, str(tmp_path))
    with pytest.raises(BenchError):
        run_trace_overhead(SCENARIOS["sysbench"], repeats=1)


def test_cli_bench_trace_overhead(capsys):
    from repro.cli import main

    assert main(["bench", "sysbench", "--trace-overhead", "0.01"]) == 0
    err = capsys.readouterr().err
    assert "trace-overhead sysbench" in err
    assert "trace overhead ok" in err
    # An impossible bound fails the gate.
    assert main(["bench", "sysbench", "--trace-overhead", "100"]) == 1
    assert "FAIL" in capsys.readouterr().err
