"""Behavioural tests: pauses, degradation, crashes, injector determinism."""

import pytest

from repro.core.experiment import JobRunner
from repro.core.solution import Solution
from repro.api import scaled_testbed
from repro.faults import NO_FAULTS, DiskFaults, FaultPlan, VmFaults, get_preset
from repro.sim import Environment
from repro.sim.cpu import ProcessorSharingCPU
from repro.virt.cluster import ClusterConfig, VirtualCluster
from repro.virt.pair import DEFAULT_PAIR
from repro.workloads.profiles import SORT


def small_testbed(seed):
    return scaled_testbed(SORT, scale=0.02, hosts=2, vms_per_host=2,
                          seeds=(seed,))


def run_once(seed, plan):
    runner = JobRunner(small_testbed(seed), fault_plan=plan)
    result, _ = runner.execute_once(Solution.uniform(DEFAULT_PAIR, 2), seed)
    return result


# -- component-level pause/degradation ----------------------------------------------


def test_cpu_pause_freezes_progress():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    job = cpu.execute(1.0)

    def pauser():
        yield env.timeout(0.5)
        cpu.pause()
        assert cpu.paused
        cpu.pause()  # idempotent
        yield env.timeout(2.0)
        cpu.resume()

    env.process(pauser())
    env.run(until=job)
    # 0.5s of work, 2s frozen, 0.5s of work.
    assert env.now == pytest.approx(3.0)


def test_vm_pause_blocks_io_until_resume():
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=1))
    vm = cluster.vms[0]
    # A cold file: reads must hit the (paused) virtual disk.
    f = vm.create_file("blob", 4 * 1024 * 1024)
    done = []

    def driver():
        vm.pause()
        assert vm.paused and vm.vdisk.paused and vm.cpu.paused
        env.process(read())
        yield env.timeout(5.0)
        assert not done  # nothing completed while paused
        vm.resume()
        assert not vm.paused

    def read():
        yield from vm.read_file(f, 0, f.size_bytes, "p")
        done.append(env.now)

    proc = env.process(driver())
    env.run(until=proc)
    env.run()
    assert done and done[0] > 5.0


def test_disk_degradation_scales_service_time():
    def one_cold_read(scale_factor, extra):
        env = Environment()
        cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=1))
        disk = cluster.hosts[0].disk
        disk.service_scale = scale_factor
        disk.extra_latency = extra
        vm = cluster.vms[0]
        # Cold file: every read is a real (sync) disk read.
        f = vm.create_file("blob", 8 * 1024 * 1024)

        def reader():
            yield from vm.read_file(f, 0, f.size_bytes, "p")

        proc = env.process(reader())
        env.run(until=proc)
        return env.now

    healthy = one_cold_read(1.0, 0.0)
    slowed = one_cold_read(3.0, 0.0)
    spiky = one_cold_read(1.0, 0.005)
    assert healthy > 0
    assert slowed > healthy
    assert spiky > healthy
    # The identity knobs are exactly neutral, not merely close.
    assert one_cold_read(1.0, 0.0) == healthy


def test_vm_crash_sets_flag_only():
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=2))
    vm = cluster.vms[0]
    vm.crash()
    assert vm.crashed
    vm.crash()  # idempotent
    # Storage and compute keep serving (the TaskTracker died, not the
    # host): surviving reducers still fetch this VM's map outputs.
    assert not vm.paused


# -- end-to-end fault plans -----------------------------------------------------------


def test_fault_free_plan_is_bit_identical_to_no_plan():
    bare = run_once(0, None)
    inert = run_once(0, NO_FAULTS)
    assert bare.duration == inert.duration
    assert bare.map_progress == inert.map_progress
    assert bare.shuffle_bytes == inert.shuffle_bytes
    assert inert.fault_stats == {}


def test_injection_is_deterministic_per_seed():
    plan = get_preset("heavy")
    first = run_once(3, plan)
    second = run_once(3, plan)
    assert first.duration == second.duration
    assert first.fault_stats == second.fault_stats
    assert first.map_progress == second.map_progress


def test_faulty_runs_complete_under_multiple_seeds():
    plan = get_preset("light")
    for seed in (0, 1, 2):
        result = run_once(seed, plan)
        clean = run_once(seed, None)
        assert result.n_maps == clean.n_maps
        assert len(result.map_progress) == result.n_maps
        assert result.phases.end is not None


def test_environment_only_faults_need_no_recovery():
    # Disk slow-downs + pauses perturb timing but use zero retry
    # machinery; the job must still complete with empty attempt stats.
    plan = FaultPlan(
        disk=DiskFaults(slow_interval_s=5.0, slow_factor=3.0,
                        slow_duration_s=2.0),
        vms=VmFaults(pause_interval_s=6.0, pause_duration_s=1.0),
    )
    result = run_once(0, plan)
    clean = run_once(0, None)
    assert result.duration > clean.duration
    assert result.fault_stats.get("map_retries", 0) == 0
    assert result.fault_stats.get("disk_slow_episodes", 0) > 0


def test_crash_cap_never_kills_every_vm():
    plan = FaultPlan(
        vms=VmFaults(crash_prob=1.0, crash_window_s=5.0, max_crashes=99),
    )
    # Every one of the 4 VMs draws a crash, but the schedule is capped
    # at n_vms - 1 so a survivor always remains.
    env = Environment()
    cluster = VirtualCluster(
        env, ClusterConfig(hosts=2, vms_per_host=2, seed=0)
    )
    from repro.faults.injector import FaultInjector

    injector = FaultInjector(env, cluster, plan)
    schedule = injector._crash_schedule()
    assert len(schedule) == 3
    # End-to-end: crashes that fire before the job ends stay within the
    # cap and the job still finishes all its maps.
    result = run_once(0, plan)
    assert 1 <= result.fault_stats["vm_crashes"] <= 3
    assert len(result.map_progress) == result.n_maps
