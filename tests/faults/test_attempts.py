"""Unit tests for the attempt manager (retry, kill, speculation)."""

from types import SimpleNamespace

from repro.faults.plan import FaultPlan, SpeculationConfig, TaskFaults
from repro.hdfs.blocks import HdfsBlock
from repro.mapreduce.attempts import AttemptManager, TaskAttempt
from repro.mapreduce.jobtracker import TaskPool
from repro.mapreduce.map_task import MapTask
from repro.mapreduce.reduce_task import ReduceTask
from repro.sim import Environment
from repro.sim.events import Event
from repro.sim.rng import RngStreams


def make_task(tid, vm):
    block = HdfsBlock(path="in", index=tid, size_bytes=100, replicas=[vm])
    return MapTask(task_id=tid, block=block, vm_id=vm)


def make_ctx(env, vms=("a", "b"), n_maps=2):
    return SimpleNamespace(
        env=env,
        maps_finished=0,
        n_maps=n_maps,
        cluster=SimpleNamespace(vms=[SimpleNamespace(vm_id=v) for v in vms]),
    )


FAILING = FaultPlan(tasks=TaskFaults(map_fail_prob=1.0, reduce_fail_prob=1.0,
                                     max_attempts=3))


def test_inert_manager_is_plain_pool_take():
    env = Environment()
    pool = TaskPool([make_task(0, "a")])
    mgr = AttemptManager(env, make_ctx(env), pool)
    assert not mgr.enabled
    assert mgr.fault_stats() == {}
    attempt = mgr.claim_map("a")
    assert isinstance(attempt, TaskAttempt)
    assert attempt.number == 0 and attempt.fail_at is None
    assert mgr.claim_success(attempt)
    mgr.map_attempt_done(attempt)  # no-op, no bookkeeping
    assert mgr.claim_map("a") is None  # pool empty -> worker exits


def test_failed_attempt_requeues_away_from_failed_vm():
    env = Environment()
    pool = TaskPool([make_task(0, "a")])
    ctx = make_ctx(env, n_maps=1)
    mgr = AttemptManager(env, ctx, pool, plan=FAILING, rng=RngStreams(0))
    attempt = mgr.claim_map("a")
    assert attempt.fail_at is not None  # prob 1.0 -> always fails
    assert attempt.should_abort(attempt.fail_at)
    assert attempt.failed
    mgr.map_attempt_done(attempt)
    assert mgr.fault_stats()["map_failures"] == 1
    assert mgr.fault_stats()["map_retries"] == 1
    # The failing VM gets an Event (the retry avoids it while another
    # VM lives); the other VM gets the retried attempt, rebound to it.
    assert isinstance(mgr.claim_map("a"), Event)
    retry = mgr.claim_map("b")
    assert isinstance(retry, TaskAttempt)
    assert retry.number == 1
    assert retry.task.vm_id == "b"


def test_final_attempt_never_draws_failure():
    env = Environment()
    ctx = make_ctx(env, n_maps=1)
    mgr = AttemptManager(env, ctx, TaskPool([]), plan=FAILING,
                         rng=RngStreams(0))
    # max_attempts=3: attempt numbers 0 and 1 fail (prob 1), number 2 must
    # be clean so the job can finish.
    assert mgr._draw_fail_at("map", 0, 0, 1.0) is not None
    assert mgr._draw_fail_at("map", 0, 1, 1.0) is not None
    assert mgr._draw_fail_at("map", 0, 2, 1.0) is None


def test_killed_attempt_loses_claim_and_does_not_requeue():
    env = Environment()
    pool = TaskPool([make_task(0, "a")])
    ctx = make_ctx(env, n_maps=1)
    plan = FaultPlan(speculation=SpeculationConfig(enabled=True))
    mgr = AttemptManager(env, ctx, pool, plan=plan, rng=RngStreams(0))
    attempt = mgr.claim_map("a")
    attempt.killed = True
    assert not mgr.claim_success(attempt)
    assert attempt.should_abort(0.0)


def test_success_kills_rival_attempts():
    env = Environment()
    pool = TaskPool([make_task(0, "a")])
    ctx = make_ctx(env, n_maps=1)
    plan = FaultPlan(speculation=SpeculationConfig(enabled=True))
    mgr = AttemptManager(env, ctx, pool, plan=plan, rng=RngStreams(0))
    first = mgr.claim_map("a")
    # Force a speculative rival by hand.
    mgr._retry_queue.append((first.task, 1, True, "a"))
    mgr._map_state[0].queued += 1
    rival = mgr.claim_map("b")
    assert rival.speculative
    assert mgr.claim_success(first)
    mgr.map_attempt_done(first)
    assert rival.killed
    # The loser reports in and is accounted as killed, not failed.
    mgr.map_attempt_done(rival)
    assert mgr.fault_stats()["map_killed"] == 1
    assert mgr.fault_stats()["map_failures"] == 0


def test_straggler_monitor_launches_backup():
    env = Environment()
    tasks = [make_task(0, "a"), make_task(1, "b")]
    pool = TaskPool(tasks)
    ctx = make_ctx(env, n_maps=2)
    plan = FaultPlan(speculation=SpeculationConfig(
        enabled=True, slowdown_threshold=1.5, min_finished_fraction=0.5,
        check_interval_s=2.0,
    ))
    mgr = AttemptManager(env, ctx, pool, plan=plan, rng=RngStreams(0))

    def driver():
        fast = mgr.claim_map("a")
        slow = mgr.claim_map("b")
        yield env.timeout(1.0)
        assert mgr.claim_success(fast)
        mgr.map_attempt_done(fast)
        ctx.maps_finished = 1
        # The slow attempt keeps running well past 1.5x the mean (1s).
        yield env.timeout(9.0)
        return slow

    proc = env.process(driver())
    env.run(until=proc)
    assert mgr.fault_stats()["map_speculative"] == 0  # not started yet
    backup = mgr.claim_map("a")
    assert isinstance(backup, TaskAttempt)
    assert backup.speculative and backup.task.task_id == 1
    assert mgr.fault_stats()["map_speculative"] == 1
    # Only one backup per task, ever.
    assert mgr._map_state[1].speculated


def test_vm_crash_kills_and_rehomes():
    env = Environment()
    tasks = [make_task(0, "a"), make_task(1, "a")]
    pool = TaskPool(tasks)
    ctx = make_ctx(env, n_maps=2)
    mgr = AttemptManager(env, ctx, pool, plan=FAILING, rng=RngStreams(0))
    running = mgr.claim_map("a")  # task 0 runs on a; task 1 still queued
    mgr.on_vm_crashed("a")
    assert running.killed
    assert not mgr.vm_alive("a")
    assert mgr.vm_alive("b")
    # Crashed VM's workers exit; the queued task was rehomed to retry.
    assert mgr.claim_map("a") is None
    rehomed = mgr.claim_map("b")
    assert rehomed.task.task_id == 1
    assert rehomed.task.vm_id == "b"
    assert rehomed.number == 0  # a rehome is not a retry


def test_reduce_retry_rotates_off_failed_vm():
    env = Environment()
    ctx = make_ctx(env, vms=("a", "b", "c"))
    mgr = AttemptManager(env, ctx, TaskPool([]), plan=FAILING,
                         rng=RngStreams(0))
    task = ReduceTask(reducer_idx=0, vm_id="a")
    attempt = mgr.start_reduce(task)
    assert attempt is not None and attempt.number == 0
    attempt.failed = True
    retry = mgr.reduce_attempt_done(attempt)
    assert retry is not None
    assert retry.number == 1
    assert retry.task.vm_id != "a"
    assert mgr.fault_stats()["reduce_retries"] == 1
    retry.succeeded = True
    assert mgr.reduce_attempt_done(retry) is None


def test_reduce_attempts_on_crashed_vm_are_killed():
    env = Environment()
    ctx = make_ctx(env)
    mgr = AttemptManager(env, ctx, TaskPool([]), plan=FAILING,
                         rng=RngStreams(0))
    attempt = mgr.start_reduce(ReduceTask(reducer_idx=0, vm_id="a"))
    mgr.on_vm_crashed("a")
    assert attempt.killed
    replacement = mgr.reduce_attempt_done(attempt)
    assert replacement.task.vm_id == "b"
    assert mgr.fault_stats()["reduce_killed"] == 1
