"""Unit tests for fault plans and presets."""

import pytest

from repro.faults import (
    NO_FAULTS,
    PRESETS,
    DiskFaults,
    FaultPlan,
    SpeculationConfig,
    TaskFaults,
    VmFaults,
    get_preset,
)


def test_default_plan_is_inert():
    plan = FaultPlan()
    assert not plan.is_active
    assert not plan.needs_recovery
    assert plan is not NO_FAULTS  # equal content, distinct instance is fine
    assert plan == NO_FAULTS


def test_activity_flags():
    assert DiskFaults(slow_interval_s=10, slow_factor=2.0,
                      slow_duration_s=1).active
    assert not DiskFaults().active
    assert VmFaults(pause_interval_s=10, pause_duration_s=1).pauses_active
    assert VmFaults(crash_prob=0.5, crash_window_s=10).crashes_active
    assert not VmFaults().active


def test_needs_recovery_only_for_task_level_faults():
    # Disk slow-downs and pauses perturb timing but need no retry logic.
    env_only = FaultPlan(
        disk=DiskFaults(slow_interval_s=10, slow_factor=2.0,
                        slow_duration_s=1),
        vms=VmFaults(pause_interval_s=10, pause_duration_s=1),
    )
    assert env_only.is_active
    assert not env_only.needs_recovery
    # Crashes, task failures, and speculation do.
    assert FaultPlan(tasks=TaskFaults(map_fail_prob=0.1)).needs_recovery
    assert FaultPlan(
        vms=VmFaults(crash_prob=0.1, crash_window_s=5)
    ).needs_recovery
    assert FaultPlan(
        speculation=SpeculationConfig(enabled=True)
    ).needs_recovery


def test_with_returns_modified_copy():
    plan = NO_FAULTS.with_(tasks=TaskFaults(map_fail_prob=0.2))
    assert plan.tasks.map_fail_prob == 0.2
    assert NO_FAULTS.tasks.map_fail_prob == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(slow_interval_s=-1),
        dict(slow_factor=0.5),
        dict(slow_duration_s=-1),
        dict(spike_latency_s=-1),
    ],
)
def test_disk_fault_validation(kwargs):
    with pytest.raises(ValueError):
        DiskFaults(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(crash_prob=1.5),
        dict(crash_prob=-0.1),
        dict(pause_interval_s=-1),
        dict(max_crashes=-1),
    ],
)
def test_vm_fault_validation(kwargs):
    with pytest.raises(ValueError):
        VmFaults(**kwargs)


def test_task_fault_validation():
    with pytest.raises(ValueError):
        TaskFaults(map_fail_prob=2.0)
    with pytest.raises(ValueError):
        TaskFaults(max_attempts=0)


def test_presets_registry():
    assert set(PRESETS) == {"none", "light", "heavy"}
    assert get_preset("none") == NO_FAULTS
    assert get_preset("light").is_active
    assert get_preset("heavy").needs_recovery
    with pytest.raises(KeyError):
        get_preset("apocalyptic")


def test_preset_plans_are_hash_stable():
    # Plans feed content-addressed cache keys: equal plans, equal specs.
    assert get_preset("light") == get_preset("light")
    assert get_preset("light") != get_preset("heavy")
