"""Controller properties: boundary detection, determinism, metamorphics.

The load-bearing assertions are the bit-exact identities: an online
greedy run equals the offline ``_switcher`` run of the same plan, and a
never-switching controller equals the uncontrolled ``job`` kind.  They
anchor everything the regret oracle assumes — a policy's trajectory for
plan *P* IS the static run of *P*.
"""

import json

import pytest

from repro.core.solution import Solution
from repro.ctrl import BOUNDARY_NAMES, CtrlConfig
from repro.ctrl.policies import (
    BanditPolicy,
    GreedyPolicy,
    HysteresisPolicy,
    Observation,
    make_policy,
    policy_names,
    resolve_policy,
)
from repro.runner import RunSpec, SweepRunner, execute_spec
from repro.virt.pair import SchedulerPair

from .conftest import controlled_spec, run_controlled, small_testbed

GREEDY = CtrlConfig(policy="greedy", initial="ad", phase_pairs=("ad", "cc"))


def _strip_ctrl(payload):
    return {k: v for k, v in payload.items() if k != "ctrl"}


def _dumps(payload):
    return json.dumps(payload, sort_keys=True)


# -- pure policy units (no simulation) -----------------------------------------------


def _obs(phase=1, current="ad", est_cost=0.1):
    return Observation(time=5.0, phase=phase, current=current,
                       queue_depth=4.0, est_cost=est_cost)


def test_registry_names_the_three_policies():
    assert policy_names() == ["bandit", "greedy", "hysteresis"]
    assert resolve_policy("greedy") is GreedyPolicy
    with pytest.raises(ValueError) as exc:
        resolve_policy("nope")
    assert "'bandit', 'greedy', 'hysteresis'" in str(exc.value)


def test_greedy_follows_the_plan_and_holds_when_it_matches():
    policy = make_policy(GREEDY)
    assert policy.decide(_obs(current="ad")).target == "cc"
    assert policy.decide(_obs(current="cc")).target is None


def test_hysteresis_holds_when_the_charged_cost_exceeds_budget():
    config = GREEDY.with_(policy="hysteresis", cost_factor=10.0,
                          cost_budget=0.5)
    policy = HysteresisPolicy(config)
    assert policy.decide(_obs(est_cost=0.04)).target == "cc"  # 0.4 <= 0.5
    assert policy.decide(_obs(est_cost=0.06)).target is None  # 0.6 > 0.5


def test_bandit_exploits_the_lowest_sampled_mean_when_greedy():
    config = CtrlConfig(
        policy="bandit", initial="ad", arms=("ad", "cc"), epsilon=0.0,
        state=(("default", "ad", 1, 9.0), ("default", "cc", 1, 7.0)),
    )
    policy = BanditPolicy(config)
    decision = policy.decide(_obs(current="ad"))
    assert decision.target == "cc"
    assert not decision.explore
    # One decision per job: later boundaries hold.
    assert policy.decide(_obs(phase=2, current="cc")).target is None


def test_bandit_state_round_trips_through_config_rows():
    config = CtrlConfig(policy="bandit", initial="ad", arms=("ad", "cc"),
                        epsilon=0.0,
                        state=(("default", "ad", 2, 8.25),))
    policy = BanditPolicy(config)
    policy.decide(_obs(current="cc"))
    policy.learn(8.0)
    rows = policy.export_state()
    # Feeding the exported rows back yields the same values table.
    again = BanditPolicy(config.with_(state=rows))
    assert again._values == policy._values


# -- boundary detection --------------------------------------------------------------


def test_boundaries_fire_exactly_once_in_order_on_three_phases():
    ctrl = CtrlConfig(policy="greedy", initial="ad",
                      phase_pairs=("ad", "cc", "dd"))
    payload = run_controlled(ctrl, n_phases=3)
    detections = payload["ctrl"]["detections"]
    assert [d["boundary"] for d in detections] == list(BOUNDARY_NAMES)
    assert [d["phase"] for d in detections] == [1, 2]
    times = [d["time"] for d in detections]
    assert times == sorted(times) and times[0] > 0
    assert payload["ctrl"]["plan"] == ["ad", "cc", "dd"]
    assert payload["ctrl"]["n_switches"] == 2


def test_two_phase_runs_detect_only_the_map_boundary():
    payload = run_controlled(GREEDY)
    assert [d["boundary"] for d in payload["ctrl"]["detections"]] \
        == ["maps_done"]
    assert payload["ctrl"]["plan"] == ["ad", "cc"]
    assert payload["ctrl"]["n_switches"] == 1
    assert payload["ctrl"]["switch_stall"] >= 0


# -- determinism across execution paths ----------------------------------------------


def test_controlled_payloads_identical_serial_parallel_cached(tmp_path):
    specs = [controlled_spec(GREEDY, seed=seed) for seed in (0, 1, 2)]
    with SweepRunner(jobs=1, cache_dir=tmp_path / "a") as serial:
        res_serial = serial.run_specs(specs)
    with SweepRunner(jobs=2, cache_dir=tmp_path / "b") as par:
        res_parallel = par.run_specs(specs)
    with SweepRunner(jobs=1, cache_dir=tmp_path / "a") as warm:
        res_cached = warm.run_specs(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
    # Byte-identical, detections and decisions included.
    assert _dumps(res_serial) == _dumps(res_parallel) == _dumps(res_cached)


# -- hysteresis metamorphics ---------------------------------------------------------


def test_inflating_the_charged_switch_cost_never_adds_switches():
    counts = []
    for factor in (0.0, 1.0, 1e6, float("inf")):
        ctrl = GREEDY.with_(policy="hysteresis", cost_factor=factor)
        counts.append(run_controlled(ctrl)["ctrl"]["n_switches"])
    assert counts == sorted(counts, reverse=True)
    assert counts[0] == 1  # free switching follows the plan
    assert counts[-1] == 0  # infinite cost forbids switching outright


def test_infinite_cost_hysteresis_is_the_static_baseline_bit_exactly():
    frozen = run_controlled(GREEDY.with_(policy="hysteresis",
                                         cost_factor=float("inf")))
    static = run_controlled(CtrlConfig(policy=None, initial="ad"))
    assert frozen["ctrl"]["n_switches"] == 0
    assert static["ctrl"]["policy"] == "static"
    assert _dumps(_strip_ctrl(frozen)) == _dumps(_strip_ctrl(static))


# -- the anchor identities -----------------------------------------------------------


def test_unconfigured_controller_matches_the_job_kind_bit_exactly():
    testbed = small_testbed()
    static = run_controlled(CtrlConfig(policy=None, initial="ad"))
    solution = Solution.uniform(SchedulerPair.parse("ad"), testbed.n_phases)
    job = execute_spec(RunSpec(kind="job", seed=0,
                               config=(testbed, solution)))
    assert _dumps(_strip_ctrl(static)) == _dumps(job)


def test_online_greedy_switch_matches_the_offline_switcher_bit_exactly():
    testbed = small_testbed()
    greedy = run_controlled(GREEDY)
    solution = Solution.of([SchedulerPair.parse("ad"),
                            SchedulerPair.parse("cc")])
    offline = execute_spec(RunSpec(kind="job", seed=0,
                                   config=(testbed, solution)))
    assert greedy["ctrl"]["n_switches"] == 1
    assert _dumps(_strip_ctrl(greedy)) == _dumps(offline)


# -- bandit state threading ----------------------------------------------------------


def test_bandit_state_threads_between_runs_and_stays_json_able():
    train = CtrlConfig(policy="bandit", initial="ad", arms=("ad", "cc"),
                       epsilon=0.05)
    first = run_controlled(train)
    rows = tuple(tuple(row) for row in first["ctrl"]["state"])
    assert rows, "the training run must learn something"
    json.dumps(first)  # the whole payload survives the cache codec
    evaluate = train.with_(epsilon=0.0, state=rows)
    second = run_controlled(evaluate)
    # Pure exploitation never explores.
    assert all(not d["explore"] for d in second["ctrl"]["decisions"])
