"""Shared harness for the online-controller suite.

Every simulated test runs the same miniature testbed — 2 hosts x 2 VMs
at the fig2 scale factor (0.125) with 64 MB per VM — so specs repeat
across tests and the sweep cache/memo absorbs most of the cost.
"""

from repro.api import scaled_testbed
from repro.runner import RunSpec, execute_spec
from repro.workloads.ddwrite import MB
from repro.workloads.profiles import SORT

#: The fig2 single-pair scale factor (see benchmarks' fig2_single_pair).
SCALE = 0.125


def small_testbed(seed: int = 0, n_phases: int = 2):
    return scaled_testbed(
        SORT,
        scale=SCALE,
        hosts=2,
        vms_per_host=2,
        seeds=(seed,),
        bytes_per_vm=64 * MB,
        n_phases=n_phases,
    )


def controlled_spec(ctrl, seed: int = 0, n_phases: int = 2, faults=None,
                    label: str = "") -> RunSpec:
    return RunSpec(
        kind="controlled_job",
        seed=seed,
        config=(small_testbed(seed, n_phases), ctrl, faults),
        label=label or f"ctrl test seed={seed}",
    )


def run_controlled(ctrl, seed: int = 0, n_phases: int = 2, faults=None):
    """Execute one controlled job in-process and return its payload."""
    return execute_spec(controlled_spec(ctrl, seed, n_phases, faults))
