"""The regret oracle at fig2 scale: exhaustive enumeration vs policies.

Static plans over {ad, cc} run as greedy-controlled jobs through the
exact specs a policy produces (see ``static_ctrl_config``), so the
enumerated optimum lower-bounds every policy by construction — and the
tests below check the construction holds end to end: greedy lands on
Algorithm 1's offline pick, and the bandit's evaluation regret can only
shrink as training sweeps cover more arms.
"""

import pytest

from repro.core.heuristic import HeuristicSearch, profile_single_pairs
from repro.ctrl import (
    CtrlConfig,
    build_oracle,
    enumerate_static_plans,
    payload_duration,
    plan_labels,
    static_ctrl_config,
)
from repro.runner import SweepJobRunner, SweepRunner
from repro.virt.pair import SchedulerPair

from .conftest import controlled_spec, small_testbed

PAIRS = ("ad", "cc")
SEED = 0
TOL = 1e-9


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    with SweepRunner(jobs=2,
                     cache_dir=tmp_path_factory.mktemp("oracle")) as runner:
        yield runner


@pytest.fixture(scope="module")
def landscape(sweep):
    """Every static plan over {ad, cc}, measured, plus its oracle."""
    plans = enumerate_static_plans(
        [SchedulerPair.parse(p) for p in PAIRS], n_phases=2
    )
    payloads = {
        plan: sweep.run_spec(
            controlled_spec(static_ctrl_config(plan), seed=SEED,
                            label=f"static {'>'.join(plan)}")
        )
        for plan in plans
    }
    oracle = build_oracle(
        plans, [payload_duration(payloads[plan]) for plan in plans]
    )
    return plans, payloads, oracle


@pytest.fixture(scope="module")
def offline_plan(sweep):
    """Algorithm 1's fault-free pick over the restricted pair set."""
    pairs = [SchedulerPair.parse(p) for p in PAIRS]
    runner = SweepJobRunner(small_testbed(SEED), sweep, label="oracle offline")
    runner.prefetch_uniform(pairs)
    scores = profile_single_pairs(runner, pairs)
    result = HeuristicSearch(runner, scores, pairs).search()
    return tuple(plan_labels(result.solution))


def test_enumeration_covers_every_distinct_plan(landscape):
    plans, _, oracle = landscape
    assert sorted(plans) == [("ad", "ad"), ("ad", "cc"),
                             ("cc", "ad"), ("cc", "cc")]
    assert oracle.optimum_plan in plans
    assert all(oracle.regret(d) >= -TOL for d in oracle.durations)


def test_optimum_lower_bounds_every_policy(sweep, landscape, offline_plan):
    _, _, oracle = landscape
    runs = {
        "greedy": CtrlConfig(policy="greedy", initial=offline_plan[0],
                             phase_pairs=offline_plan),
        "hysteresis": CtrlConfig(policy="hysteresis",
                                 initial=offline_plan[0],
                                 phase_pairs=offline_plan),
        "bandit": CtrlConfig(policy="bandit", initial=PAIRS[0],
                             arms=PAIRS, epsilon=0.0),
    }
    for name, ctrl in runs.items():
        payload = sweep.run_spec(controlled_spec(ctrl, seed=SEED,
                                                 label=name))
        regret = oracle.regret(payload_duration(payload))
        assert regret >= -TOL, f"{name} beat the exhaustive optimum"


def test_greedy_executes_algorithm1s_offline_plan(sweep, landscape,
                                                  offline_plan):
    plans, payloads, oracle = landscape
    greedy = sweep.run_spec(
        controlled_spec(
            CtrlConfig(policy="greedy", initial=offline_plan[0],
                       phase_pairs=offline_plan),
            seed=SEED, label="greedy",
        )
    )
    assert tuple(greedy["ctrl"]["plan"]) == offline_plan
    # By construction the greedy config IS its static twin's config, so
    # the trajectory (and regret) match the enumerated entry exactly.
    assert CtrlConfig(policy="greedy", initial=offline_plan[0],
                      phase_pairs=offline_plan) \
        == static_ctrl_config(offline_plan)
    assert payload_duration(greedy) == \
        pytest.approx(payloads[offline_plan]["phases"]["end"]
                      - payloads[offline_plan]["phases"]["start"])


def test_bandit_eval_regret_non_increasing_over_training(sweep, landscape):
    _, _, oracle = landscape
    state = ()
    regrets = []
    for round_no in range(len(PAIRS)):
        train = CtrlConfig(policy="bandit", initial=PAIRS[0], arms=PAIRS,
                           epsilon=0.05, state=state)
        out = sweep.run_spec(controlled_spec(train, seed=SEED,
                                             label=f"train {round_no}"))
        state = tuple(tuple(row) for row in out["ctrl"]["state"])
        evaluate = train.with_(epsilon=0.0, state=state)
        ev = sweep.run_spec(controlled_spec(evaluate, seed=SEED,
                                            label=f"eval {round_no}"))
        regrets.append(oracle.regret(payload_duration(ev)))
    assert all(later <= earlier + TOL
               for earlier, later in zip(regrets, regrets[1:]))
    assert regrets[-1] >= -TOL


# -- OracleResult bookkeeping (no simulation) ----------------------------------------


def test_oracle_first_wins_ties_and_reports_regret():
    oracle = build_oracle(
        [("ad", "ad"), ("ad", "cc"), ("cc", "cc")], [5.0, 4.0, 4.0]
    )
    assert oracle.optimum_index == 1  # first of the tied minima
    assert oracle.optimum_plan == ("ad", "cc")
    assert oracle.regret(5.0) == pytest.approx(1.0)
    rows = oracle.rows()
    assert rows[0]["plan"] == "ad→ad"
    assert rows[0]["regret"] == pytest.approx(1.0)
    assert rows[1]["regret"] == pytest.approx(0.0)


def test_oracle_rejects_misaligned_or_empty_inputs():
    with pytest.raises(ValueError):
        build_oracle([("ad", "ad")], [])
    with pytest.raises(ValueError):
        build_oracle([], [])


def test_static_ctrl_config_requires_a_plan():
    with pytest.raises(ValueError):
        static_ctrl_config(())
