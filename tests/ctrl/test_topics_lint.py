"""``ctrl.*`` topic registration and the TRACE001 dead-topic regression.

Adding the controller's topics is a two-step change (publish + register)
enforced by TRACE001 in both directions; these tests pin the registry
entries, the dead-topic direction on a fixture tree, and that the real
tree keeps linting clean with zero suppressions.
"""

from pathlib import Path

from repro.analysis.core import run_lint
from repro.obs.topics import REGISTERED_TOPICS, matching

from tests.analysis.conftest import make_tree

CTRL_TOPICS = ("shuffle.fetch", "ctrl.phase", "ctrl.decision", "ctrl.switch")

REGISTRY = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class TopicSpec:\n"
    "    name: str\n"
    "    doc: str\n"
    "TOPICS = (\n"
    "    TopicSpec('ctrl.phase', 'boundary detected'),\n"
    "    TopicSpec('ctrl.switch', 'controller switched'),\n"
    ")\n"
)

PUBLISHER = (
    "def f(bus, t):\n"
    "    bus.publish(t, 'ctrl.phase', phase=1)\n"
    "    bus.publish(t, 'ctrl.switch', pair='ad')\n"
)


def test_controller_topics_are_registered():
    for name in CTRL_TOPICS:
        assert name in REGISTERED_TOPICS, name
    assert matching("ctrl.*") == ("ctrl.phase", "ctrl.decision",
                                  "ctrl.switch")


def test_trace001_flags_a_registered_ctrl_topic_nobody_publishes(tmp_path):
    root = make_tree(tmp_path, {
        "repro/obs/topics.py": REGISTRY,
        # Publishes ctrl.phase only: ctrl.switch is a dead entry.
        "repro/ctrl/controller.py": (
            "def f(bus, t):\n"
            "    bus.publish(t, 'ctrl.phase', phase=1)\n"
        ),
    })
    findings, _ = run_lint([root / "repro"], select=["TRACE001"])
    assert len(findings) == 1
    assert "'ctrl.switch'" in findings[0].message
    assert "no publish site" in findings[0].message


def test_trace001_clean_once_every_ctrl_topic_is_published(tmp_path):
    root = make_tree(tmp_path, {
        "repro/obs/topics.py": REGISTRY,
        "repro/ctrl/controller.py": PUBLISHER,
    })
    findings, _ = run_lint([root / "repro"], select=["TRACE001"])
    assert findings == []


def test_real_tree_lints_clean_with_zero_suppressions():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    findings, scanned = run_lint([src])
    assert findings == []
    assert scanned > 0
