"""CLI validation for the controller: friendly errors, the run command.

The regression under test: unknown ``--controller``/``--scheduler``/
pair names used to surface as a deep ``KeyError`` traceback; they must
now exit with a message listing the registered choices.
"""

import argparse

import pytest

from repro.cli import (
    _parse_cost,
    _parse_pair,
    _parse_plan,
    _parse_policy,
    main,
    run_controlled,
)
from repro.iosched.registry import UnknownSchedulerError, resolve_name

FAST = ["--scale", "0.05", "--hosts", "2", "--vms-per-host", "2"]


# -- registry error contract ---------------------------------------------------------


def test_resolve_name_rejects_unknown_names_with_the_menu():
    with pytest.raises(UnknownSchedulerError) as exc:
        resolve_name("bfq")
    # Dual inheritance: registry callers keep catching KeyError, input
    # validators (the CLI) catch ValueError — same exception object.
    assert isinstance(exc.value, KeyError)
    assert isinstance(exc.value, ValueError)
    message = str(exc.value)
    assert message.startswith("unknown scheduler 'bfq'")
    assert "choose from" in message
    assert "cfq" in message and "deadline" in message


# -- argument parsers ----------------------------------------------------------------


def test_policy_parser_lists_registered_policies():
    assert _parse_policy("greedy") == "greedy"
    with pytest.raises(argparse.ArgumentTypeError) as exc:
        _parse_policy("nope")
    assert "bandit, greedy, hysteresis" in str(exc.value)


def test_pair_parser_lists_choices_for_bad_labels_and_names():
    assert _parse_pair("ad") == "ad"
    assert _parse_pair("anticipatory,deadline") == "ad"
    with pytest.raises(argparse.ArgumentTypeError) as exc:
        _parse_pair("zz")
    assert "[cdan]" in str(exc.value)
    with pytest.raises(argparse.ArgumentTypeError) as exc:
        _parse_pair("bfq,cfq")
    assert "unknown scheduler 'bfq'" in str(exc.value)
    assert "cfq" in str(exc.value)


def test_plan_parser_splits_labels_and_rejects_empty_plans():
    assert _parse_plan("ad,cc") == ("ad", "cc")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_plan(",")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_plan("ad,zz")


def test_cost_parser_accepts_inf_and_rejects_garbage():
    assert _parse_cost("inf") == float("inf")
    assert _parse_cost("0") == 0.0
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_cost("-1")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_cost("cheap")


# -- the run command -----------------------------------------------------------------


def test_run_with_a_controller_prints_the_control_report(capsys):
    rc = run_controlled(["--controller", "greedy"] + FAST)
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy:     greedy" in out
    assert "plan:       ad -> cc" in out
    assert "detected maps_done" in out
    assert "switch to cc" in out


def test_run_without_a_controller_reports_the_static_plan(capsys):
    rc = run_controlled(["--initial", "ad"] + FAST)
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy:     static" in out
    assert "switches:   0" in out


def test_run_rejects_unknown_controllers_at_parse_time(capsys):
    with pytest.raises(SystemExit) as exc:
        run_controlled(["--controller", "nope"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown controller policy 'nope'" in err
    assert "bandit, greedy, hysteresis" in err


def test_run_rejects_unknown_pairs_with_choices_listed(capsys):
    with pytest.raises(SystemExit) as exc:
        run_controlled(["--plan", "ad,zz"])
    assert exc.value.code == 2
    assert "[cdan]" in capsys.readouterr().err


def test_run_rejects_mismatched_plan_lengths_cleanly(capsys):
    # Scenario validation (not argparse): plan shorter than n_phases.
    rc = run_controlled(["--controller", "greedy", "--plan", "ad",
                         "--n-phases", "2"] + FAST)
    assert rc == 2
    assert "repro run: error:" in capsys.readouterr().err


def test_main_dispatches_the_run_subcommand(capsys):
    rc = main(["run", "--controller", "hysteresis"] + FAST)
    assert rc == 0
    assert "policy:     hysteresis" in capsys.readouterr().out


def test_main_parser_validates_the_controller_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--controller", "nope", "fig-ctrl"])
    assert exc.value.code == 2
    assert "bandit, greedy, hysteresis" in capsys.readouterr().err
