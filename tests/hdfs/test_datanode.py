"""Integration tests for DataNode block reads and the write pipeline."""

import pytest

from repro.hdfs import DataNodeService, NameNode
from repro.net import Topology
from repro.sim import Environment
from repro.virt import ClusterConfig, VirtualCluster

MB = 1024 * 1024


def make_stack(env, hosts=2, vms=2):
    cluster = VirtualCluster(env, ClusterConfig(hosts=hosts, vms_per_host=vms))
    topo = Topology(env)
    for host in cluster.hosts:
        topo.add_host(host.name)
    nn = NameNode(cluster, block_size=16 * MB)
    dn = DataNodeService(env, cluster, topo)
    return cluster, topo, nn, dn


def run_proc(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p


def test_local_read_touches_only_local_disk():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    nn.load_input("in", 16 * MB)
    vm = cluster.vms[0]
    block = nn.local_blocks("in", vm.vm_id)[0]
    run_proc(env, dn.read_block(block, vm.vm_id, "r"))
    host = cluster.host_of(vm)
    assert host.disk.stats.read_bytes == 16 * MB
    assert topo.network.completed_flows == 0  # no network traffic


def test_remote_read_crosses_network():
    env = Environment()
    # 3 hosts so some blocks have no replica on the reader's host
    # (2-host clusters with replication 2 span every host).
    cluster, topo, nn, dn = make_stack(env, hosts=3)
    nn.load_input("in", 16 * MB)
    vm = cluster.vms[0]
    # Find a block with no replica on vm's host.
    target = None
    vm_host = vm.host_name
    for block in nn.lookup("in").blocks:
        hosts = {cluster.vm(r).host_name for r in block.replicas}
        if vm_host not in hosts:
            target = block
            break
    assert target is not None
    run_proc(env, dn.read_block(target, vm.vm_id, "r"))
    assert topo.network.completed_flows > 0
    assert topo.network.bytes_transferred == pytest.approx(16 * MB)


def test_pick_replica_prefers_local_then_same_host():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    nn.load_input("in", 16 * MB)
    block = nn.lookup("in").blocks[0]
    primary = block.replicas[0]
    assert dn.pick_replica(block, primary) == primary
    # A sibling VM on the primary's host prefers the same-host replica.
    host = cluster.host_of(cluster.vm(primary))
    sibling = next(v for v in host.vms if v.vm_id != primary)
    picked = dn.pick_replica(block, sibling.vm_id)
    assert cluster.vm(picked).host_name == host.name


def test_partial_block_read():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    nn.load_input("in", 16 * MB)
    vm = cluster.vms[0]
    block = nn.local_blocks("in", vm.vm_id)[0]
    run_proc(env, dn.read_block(block, vm.vm_id, "r", offset=0, length=4 * MB))
    host = cluster.host_of(vm)
    assert host.disk.stats.read_bytes == 4 * MB


def test_write_block_replicates_to_both_vms():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    out = nn.register_file("out")
    writer = cluster.vms[0].vm_id
    block = nn.add_block(out, 16 * MB, writer)
    run_proc(env, dn.write_block(block, writer, "w"))
    for vm_id in block.replicas:
        vm = cluster.vm(vm_id)
        f = vm.fs.lookup(block.local_name(vm_id))
        assert f is not None and f.size_bytes == 16 * MB
    # Remote replica data crossed the network.
    assert topo.network.bytes_transferred == pytest.approx(16 * MB)


def test_written_block_is_readable():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    out = nn.register_file("out")
    writer = cluster.vms[0].vm_id
    block = nn.add_block(out, 8 * MB, writer)
    run_proc(env, dn.write_block(block, writer, "w"))
    reader = cluster.vms[-1].vm_id
    run_proc(env, dn.read_block(block, reader, "r"))
    assert env.now > 0


def test_missing_replica_raises():
    env = Environment()
    cluster, topo, nn, dn = make_stack(env)
    out = nn.register_file("out")
    block = nn.add_block(out, 8 * MB, cluster.vms[0].vm_id)
    # Block was never written: guest files absent.
    with pytest.raises(FileNotFoundError):
        run_proc(env, dn.read_block(block, cluster.vms[0].vm_id, "r"))


def test_invalid_segment_size():
    env = Environment()
    cluster, topo, nn, _ = make_stack(env)
    with pytest.raises(ValueError):
        DataNodeService(env, cluster, topo, segment_bytes=0)
