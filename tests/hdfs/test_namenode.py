"""Unit tests for the NameNode and block placement."""

import pytest

from repro.hdfs import NameNode
from repro.sim import Environment
from repro.virt import ClusterConfig, VirtualCluster

MB = 1024 * 1024


def make_cluster(env, hosts=2, vms=2):
    return VirtualCluster(env, ClusterConfig(hosts=hosts, vms_per_host=vms))


def test_load_input_balanced_and_local():
    env = Environment()
    cluster = make_cluster(env)
    nn = NameNode(cluster, block_size=16 * MB)
    file = nn.load_input("input", 64 * MB)
    assert file.size_bytes == 64 * MB * 4  # per VM
    # Every VM holds exactly its own share as primary replicas.
    for vm in cluster.vms:
        local = nn.local_blocks("input", vm.vm_id)
        assert len(local) == 4  # 64 MB / 16 MB
        for block in local:
            assert block.replicas[0] == vm.vm_id


def test_replicas_cross_physical_hosts():
    env = Environment()
    cluster = make_cluster(env)
    nn = NameNode(cluster, block_size=16 * MB, replication=2)
    nn.load_input("input", 16 * MB)
    for block in nn.lookup("input").blocks:
        assert len(block.replicas) == 2
        h0 = cluster.vm(block.replicas[0]).host_name
        h1 = cluster.vm(block.replicas[1]).host_name
        assert h0 != h1


def test_single_host_placement_falls_back():
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=3))
    nn = NameNode(cluster, replication=2)
    replicas = nn.place_replicas(cluster.vms[0].vm_id)
    assert len(replicas) == 2
    assert replicas[0] != replicas[1]


def test_replica_guest_files_exist():
    env = Environment()
    cluster = make_cluster(env)
    nn = NameNode(cluster, block_size=16 * MB)
    nn.load_input("input", 16 * MB)
    block = nn.lookup("input").blocks[0]
    for vm_id in block.replicas:
        vm = cluster.vm(vm_id)
        f = vm.fs.lookup(block.local_name(vm_id))
        assert f is not None
        assert f.size_bytes == block.size_bytes


def test_lookup_missing_raises():
    env = Environment()
    nn = NameNode(make_cluster(env))
    with pytest.raises(FileNotFoundError):
        nn.lookup("nope")


def test_register_duplicate_rejected():
    env = Environment()
    nn = NameNode(make_cluster(env))
    nn.register_file("f")
    with pytest.raises(FileExistsError):
        nn.register_file("f")


def test_delete_removes_replica_files():
    env = Environment()
    cluster = make_cluster(env)
    nn = NameNode(cluster, block_size=16 * MB)
    nn.load_input("input", 16 * MB)
    block = nn.lookup("input").blocks[0]
    names = [(vm_id, block.local_name(vm_id)) for vm_id in block.replicas]
    nn.delete("input")
    assert not nn.exists("input")
    for vm_id, name in names:
        assert cluster.vm(vm_id).fs.lookup(name) is None


def test_add_block_appends_with_placement():
    env = Environment()
    cluster = make_cluster(env)
    nn = NameNode(cluster)
    f = nn.register_file("out")
    writer = cluster.vms[0].vm_id
    b = nn.add_block(f, 8 * MB, writer)
    assert b.replicas[0] == writer
    assert b.index == 0
    assert nn.lookup("out").blocks == [b]


def test_invalid_params():
    env = Environment()
    cluster = make_cluster(env)
    with pytest.raises(ValueError):
        NameNode(cluster, block_size=0)
    with pytest.raises(ValueError):
        NameNode(cluster, replication=0)
    nn = NameNode(cluster)
    with pytest.raises(ValueError):
        nn.load_input("x", 0)


def test_replication_capped_at_cluster_size():
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=2))
    nn = NameNode(cluster, replication=5)
    assert nn.replication == 2
