"""Arrival-stream generator: determinism, mixes, traces, validation."""

import pytest

from repro.sim.rng import RngStreams
from repro.workloads import (
    DEFAULT_SIZE_MIX,
    ArrivalConfig,
    SizeClass,
    TraceArrival,
    generate_arrivals,
)


def stream(seed=0, name="workload.arrivals"):
    return RngStreams(seed).stream(name)


def test_poisson_stream_is_deterministic_per_seed():
    cfg = ArrivalConfig(n_jobs=8, rate=0.1)
    a = generate_arrivals(cfg, stream(seed=7))
    b = generate_arrivals(cfg, stream(seed=7))
    assert a == b
    c = generate_arrivals(cfg, stream(seed=8))
    assert a != c


def test_poisson_stream_shape():
    cfg = ArrivalConfig(n_jobs=10, rate=0.5, tenants=("t0", "t1", "t2"))
    arrivals = generate_arrivals(cfg, stream())
    assert len(arrivals) == 10
    assert [a.job_id for a in arrivals] == list(range(10))
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    assert all(t >= 0 for t in times)
    assert {a.tenant for a in arrivals} <= {"t0", "t1", "t2"}
    names = {s.name for s in DEFAULT_SIZE_MIX}
    assert {a.size_class.name for a in arrivals} <= names


def test_tenant_weights_bias_the_draw():
    cfg = ArrivalConfig(
        n_jobs=200, rate=1.0, tenants=("heavy", "light"),
        tenant_weights=(0.95, 0.05),
    )
    arrivals = generate_arrivals(cfg, stream())
    heavy = sum(1 for a in arrivals if a.tenant == "heavy")
    assert heavy > 150


def test_size_mix_respects_weights():
    only_large = (SizeClass("large", 1.0, 2.0),)
    cfg = ArrivalConfig(n_jobs=20, rate=1.0, size_classes=only_large)
    arrivals = generate_arrivals(cfg, stream())
    assert all(a.size_class.name == "large" for a in arrivals)


def test_trace_kind_replays_entries_verbatim():
    trace = (
        TraceArrival(time=0.0, tenant="a", size_class="small"),
        TraceArrival(time=2.5, tenant="b", size_class="large"),
        TraceArrival(time=2.5, tenant="a", size_class="medium"),
    )
    cfg = ArrivalConfig(kind="trace", trace=trace)
    arrivals = generate_arrivals(cfg, stream())
    assert [(a.time, a.tenant, a.size_class.name) for a in arrivals] == [
        (0.0, "a", "small"), (2.5, "b", "large"), (2.5, "a", "medium"),
    ]
    assert [a.job_id for a in arrivals] == [0, 1, 2]


@pytest.mark.parametrize("bad", [
    dict(kind="bursty"),
    dict(n_jobs=0),
    dict(rate=0.0),
    dict(rate=-1.0),
    dict(tenants=()),
    dict(tenant_weights=(1.0,)),  # length mismatch with 2 tenants
    dict(size_classes=()),
    dict(size_classes=(SizeClass("dup", 0.5, 1.0), SizeClass("dup", 0.5, 2.0))),
    dict(kind="trace", trace=()),
    dict(kind="trace", trace=(
        TraceArrival(time=3.0, tenant="a"),
        TraceArrival(time=1.0, tenant="a"),
    )),
    dict(kind="trace", trace=(TraceArrival(time=0.0, tenant="a",
                                           size_class="gigantic"),)),
])
def test_config_validation_rejects(bad):
    with pytest.raises(ValueError):
        ArrivalConfig(**bad)


def test_size_class_validation():
    with pytest.raises(ValueError):
        SizeClass("bad", -0.1, 1.0)
    with pytest.raises(ValueError):
        SizeClass("bad", 0.5, 0.0)
