"""The ``repro.api`` facade: defaults, determinism, and parity.

The facade must be a veneer, not a fork: a ``Scenario`` lowers to the
same :class:`RunSpec` (same cache key), and :func:`simulate` produces
the same payload, as the hand-wired ``JobRunner``/``execute_spec``
paths it replaces.
"""

import json
import warnings

import pytest

from repro.api import (
    DEFAULT_SCALE,
    RunResult,
    Scenario,
    assemble_job,
    scaled_cluster,
    scaled_job,
    scaled_testbed,
    simulate,
    sweep,
)
from repro.core.experiment import JobRunner
from repro.core.solution import Solution
from repro.runner.adapter import SweepJobRunner
from repro.runner.kinds import encode_job_result, execute_spec, _reset_run_ids
from repro.runner.spec import spec_key
from repro.virt.pair import DEFAULT_PAIR, SchedulerPair
from repro.workloads import SORT

#: Small enough to simulate in well under a second.
TINY = dict(workload="sort", scale=0.05, hosts=2, vms_per_host=2)


def canon(payload):
    return json.dumps(payload, sort_keys=True)


# -- scenario defaults ----------------------------------------------------------------


def test_scenario_defaults():
    sc = Scenario()
    assert sc.workload == "sort"
    assert sc.job_spec is SORT
    assert sc.scale == DEFAULT_SCALE
    assert (sc.hosts, sc.vms_per_host, sc.n_phases) == (4, 4, 2)
    assert sc.solution() == Solution.uniform(DEFAULT_PAIR, 2)
    spec = sc.to_spec(seed=3)
    assert spec.kind == "job" and spec.seed == 3
    testbed, solution = spec.config
    assert testbed.seeds == (3,)
    assert solution == sc.solution()


def test_scenario_accepts_strings_and_objects():
    by_str = Scenario(workload="sort", pair="ad")
    by_obj = Scenario(workload=SORT,
                      pair=SchedulerPair("anticipatory", "deadline"))
    assert by_str.job_spec is by_obj.job_spec
    assert by_str.solution() == by_obj.solution()


def test_scenario_plan_overrides_pair():
    plan = Solution((DEFAULT_PAIR, SchedulerPair.parse("ad")))
    sc = Scenario(pair="nn", plan=plan)
    assert sc.solution() is plan


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(scale=0.0)
    with pytest.raises(ValueError):
        Scenario(scale=1.5)
    with pytest.raises(ValueError):
        Scenario(plan=Solution.uniform(DEFAULT_PAIR, 3), n_phases=2)


def test_scenario_with_():
    sc = Scenario(**TINY)
    assert sc.with_(pair="ad").pair == "ad"
    assert sc.with_(pair="ad").scale == sc.scale


# -- determinism and parity with the hand-wired paths ---------------------------------


def test_simulate_is_seed_deterministic():
    sc = Scenario(**TINY)
    a = simulate(sc, seed=0)
    b = simulate(sc, seed=0)
    other = simulate(sc, seed=1)
    assert canon(a.payload) == canon(b.payload)
    assert canon(a.payload) != canon(other.payload)
    assert a.events == b.events > 0
    assert a.duration > 0 and a.wall_s > 0 and a.events_per_s > 0


def test_simulate_matches_direct_jobrunner():
    sc = Scenario(**TINY)
    res = simulate(sc, seed=0)

    _reset_run_ids()
    runner = JobRunner(
        scaled_testbed(SORT, scale=0.05, hosts=2, vms_per_host=2, seeds=(0,))
    )
    result, stall = runner.execute_once(Solution.uniform(DEFAULT_PAIR, 2), 0)
    assert canon(res.payload) == canon(encode_job_result(result, stall))
    assert res.switch_stall == stall
    assert res.duration == result.duration


def test_sweep_parity_with_execute_spec(tmp_path):
    sc = Scenario(**TINY)
    expected = json.loads(canon(execute_spec(sc.to_spec(0))))

    [payloads] = sweep(sc, seeds=(0,), jobs=1, use_cache=True,
                       cache_dir=str(tmp_path / "cache"))
    assert canon(payloads[0]) == canon(expected)
    # Replay from the on-disk cache: still identical.
    [replayed] = sweep(sc, seeds=(0,), jobs=1, use_cache=True,
                       cache_dir=str(tmp_path / "cache"))
    assert canon(replayed[0]) == canon(expected)


def test_scenario_spec_key_matches_experiment_suite():
    # Same configuration => same content-addressed cache key as the
    # specs the experiment suite has always built.
    sc = Scenario(**TINY)
    testbed = scaled_testbed(SORT, scale=0.05, hosts=2, vms_per_host=2,
                             seeds=(0,))
    suite_spec = SweepJobRunner(testbed, sweep=object()).specs_for(
        Solution.uniform(DEFAULT_PAIR, 2)
    )[0]
    assert spec_key(sc.to_spec(0)) == spec_key(suite_spec)


def test_faulty_scenario_lowers_to_faulty_job_kind():
    from repro.faults import NO_FAULTS

    sc = Scenario(**TINY, faults=NO_FAULTS)
    spec = sc.to_spec(0)
    assert spec.kind == "faulty_job"
    assert spec.config[2] is NO_FAULTS
    res = simulate(sc, seed=0)
    assert res.payload["faults"] == {}


def test_sweep_rejects_runner_kwargs_with_runner():
    with pytest.raises(TypeError):
        sweep(Scenario(**TINY), runner=object(), jobs=2)


# -- assembly helpers -----------------------------------------------------------------


def test_assemble_job_wires_the_full_stack():
    parts = assemble_job(
        scaled_cluster(0.05, hosts=1, vms_per_host=2),
        scaled_job(SORT, 0.05),
        seed=7,
    )
    assert parts.cluster.env is parts.env
    assert parts.job.cluster is parts.cluster
    assert parts.namenode.cluster is parts.cluster
    assert parts.job.namenode is parts.namenode
    assert parts.env.trace is None
    # The cluster was re-seeded.
    assert parts.cluster.config.seed == 7


# -- the deprecated module ------------------------------------------------------------


def test_experiments_common_shim_warns():
    import repro.api as api

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.experiments.common import scaled_testbed as shimmed
    assert shimmed is api.scaled_testbed
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_experiments_common_shim_forwards_every_moved_name():
    """Regression: each moved helper resolves via the shim, with a
    DeprecationWarning per access, until the alias is removed."""
    import repro.api as api
    import repro.experiments.common as common

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for name in sorted(common._MOVED):
            assert getattr(common, name) is getattr(api, name)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == len(common._MOVED)
    assert all("moved to repro.api" in str(w.message) for w in deprecations)
    assert set(common._MOVED) <= set(dir(common))


def test_experiments_common_shim_unknown_name():
    import repro.experiments.common as common

    with pytest.raises(AttributeError):
        common.not_a_real_name


def test_package_root_exports_the_facade():
    import repro

    assert repro.Scenario is Scenario
    assert repro.simulate is simulate
    assert repro.sweep is sweep
    assert repro.RunResult is RunResult


def test_multi_job_scenario_lowers_to_multi_job_kind():
    from repro.api import MultiJobScenario
    from repro.mapreduce.multijob import MultiJobConfig, SwitchPlan

    scn = MultiJobScenario(workload="sort", scale=0.05, hosts=2,
                           vms_per_host=2, n_jobs=3, arrival_rate=1.0)
    spec = scn.to_spec(seed=3)
    assert spec.kind == "multi_job"
    assert spec.seed == 3
    assert isinstance(spec.config, MultiJobConfig)
    assert spec.config.cluster.hosts == 2
    assert spec.config.arrivals.n_jobs == 3
    # Pure lowering: equal scenarios share a cache key.
    assert spec_key(spec) == spec_key(scn.to_spec(seed=3))

    switched = scn.with_(switch=("ad", "cc"))
    plan = switched.to_spec(0).config.switch_plan
    assert isinstance(plan, SwitchPlan)
    assert spec_key(switched.to_spec(0)) != spec_key(spec)


def test_multi_job_scenario_pair_sets_initial_elevators():
    from repro.api import MultiJobScenario

    scn = MultiJobScenario(scale=0.05, hosts=2, vms_per_host=2, pair="ad")
    cfg = scn.to_spec(0).config
    assert cfg.cluster.initial_pair == SchedulerPair.parse("ad")


def test_package_root_exports_multi_job_scenario():
    import repro

    assert repro.MultiJobScenario is not None
    assert "MultiJobScenario" in repro.__all__
