"""Storage selection through the facade: bit-identity, determinism.

The registry redesign must be invisible on the default path: an
all-HDD run's payload is pinned byte-for-byte against digests computed
on the pre-registry revision, across every run kind and three seeds.
The SSD path must be deterministic (serial == parallel == cached) and
conserve pages end to end.
"""

import hashlib
import json
import warnings

import pytest

from repro.api import (
    ControlledScenario,
    MultiJobScenario,
    Scenario,
    UnknownStorageError,
    assemble_cluster,
    scaled_cluster,
)
from repro.faults.presets import get_preset
from repro.runner import SweepRunner

#: The 2x2 sort testbed every digest below was measured on.
TINY = dict(workload="sort", scale=0.05, hosts=2, vms_per_host=2)

#: sha256 of the canonical-JSON payload per (kind, seed), computed on
#: the revision *before* the storage-backend registry landed.  These
#: are the bit-identity contract: default-hdd runs must never move.
PRE_REGISTRY_DIGESTS = {
    ("job", 0):
        "10b4b5602f71dd082a4ad5f89a4363a91cc5f22051dbdb43ea17d0c4a01f9743",
    ("job", 1):
        "99b04833650d82ac915e7068e3cc8c2c1d02b52c8b80b69811888ee5d12533b7",
    ("job", 2):
        "abff5695bc04208afa6fc37e78ebc522943868ab7c5b5ecf756e26f42f60c2b4",
    ("faulty_job", 0):
        "cfe12c8ea8238c357d346547f948bdb25838b9edc7136e90eed8d583befbe889",
    ("faulty_job", 1):
        "c283509312ecd527d8d824d2e8440f7044ea71c844a471f6f47293b69eeb75e7",
    ("faulty_job", 2):
        "5f4c1b8815b8e005dc88c7b488332af103472489a1b401535ff10bb4ca235dd7",
    ("controlled_job", 0):
        "1f7f1757f4644e60ab123f3e91cdf59f0e0aea543dc8f745948b63a869823eb8",
    ("controlled_job", 1):
        "1b5a46fc28ce54a3e02995a45c3829e4974fae090f1d0a55dc01e4324d88d76f",
    ("controlled_job", 2):
        "ea60d2ae5a9e10c45f1875ccec32014deb19b17f94655b72850361be8513999c",
}


def digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def scenarios_for(kind):
    if kind == "job":
        return Scenario(**TINY)
    if kind == "faulty_job":
        return Scenario(**TINY, faults=get_preset("light"))
    return ControlledScenario(**TINY, controller="greedy",
                              phase_pairs=("ad", "cc"))


# -- bit-identity of the default hdd path ---------------------------------------------


@pytest.mark.parametrize("kind", ["job", "faulty_job", "controlled_job"])
def test_hdd_payloads_bit_identical_to_pre_registry(kind):
    scenario = scenarios_for(kind)
    assert scenario.storage == "hdd"
    specs = [scenario.to_spec(seed) for seed in (0, 1, 2)]
    with warnings.catch_warnings():
        # The internal path must never cross the deprecation shim.
        warnings.simplefilter("error", DeprecationWarning)
        with SweepRunner(jobs=1, use_cache=False) as runner:
            payloads = runner.run_specs(specs)
    for spec, payload in zip(specs, payloads):
        assert digest(payload) == PRE_REGISTRY_DIGESTS[(kind, spec.seed)], \
            f"{kind} seed={spec.seed} drifted from the pre-registry payload"
        # All-HDD clusters report no storage stats at all — that key's
        # absence is what keeps the digests above reachable.
        assert "storage" not in payload


# -- ssd determinism ------------------------------------------------------------------


def test_ssd_run_deterministic_serial_parallel_cached(tmp_path):
    spec = Scenario(**TINY, storage="ssd").to_spec(0)
    with SweepRunner(jobs=1, use_cache=False) as runner:
        [serial] = runner.run_specs([spec])
    with SweepRunner(jobs=2, use_cache=False) as runner:
        [parallel] = runner.run_specs([spec])
    with SweepRunner(jobs=1, cache_dir=str(tmp_path)) as runner:
        [first] = runner.run_specs([spec])
    with SweepRunner(jobs=1, cache_dir=str(tmp_path)) as runner:
        [cached] = runner.run_specs([spec])
    assert digest(serial) == digest(parallel) == digest(first) == \
        digest(cached)


def test_ssd_payload_reports_ftl_stats():
    spec = Scenario(**TINY, storage="ssd").to_spec(0)
    with SweepRunner(jobs=1, use_cache=False) as runner:
        [payload] = runner.run_specs([spec])
    storage = payload["storage"]
    assert sorted(storage) == ["h0.sda", "h1.sda"]
    for stats in storage.values():
        assert stats["kind"] == "ssd"
        assert stats["write_amp"] >= 1.0
        # Conservation, end to end: programs = flushes + GC moves.
        assert stats["nand_programs"] == \
            stats["host_pages"] + stats["gc_moved_pages"]


def test_hybrid_reports_ssd_stats_for_odd_hosts_only():
    spec = Scenario(**TINY, storage="hybrid").to_spec(0)
    with SweepRunner(jobs=1, use_cache=False) as runner:
        [payload] = runner.run_specs([spec])
    assert sorted(payload["storage"]) == ["h1.sda"]


def test_cache_tier_ledger_balances():
    from repro.disk import CacheTierParams
    from repro.core.solution import Solution
    from repro.runner.kinds import execute_spec
    from repro.runner.spec import RunSpec
    from repro.api import scaled_testbed
    from repro.workloads import SORT

    testbed = scaled_testbed(
        SORT, scale=0.05, hosts=2, vms_per_host=2, seeds=(0,),
    )
    testbed = testbed.with_(cluster=testbed.cluster.with_(
        cache_tier=CacheTierParams(enabled=True),
    ))
    spec = RunSpec(
        kind="job", seed=0,
        config=(testbed,
                Solution.uniform(Scenario(**TINY).solution().assignments[0],
                                 2)),
        label="cache-tier test",
    )
    payload = execute_spec(spec)
    tiers = {name: s for name, s in payload["storage"].items()
             if s["kind"] == "cache"}
    assert sorted(tiers) == ["h0.bc", "h1.bc"]
    for stats in tiers.values():
        assert stats["hits"] + stats["misses"] == stats["references"]
        assert stats["references"] > 0


# -- validation and lowering ----------------------------------------------------------


def test_unknown_storage_rejected_listing_backends():
    for ctor in (
        lambda: Scenario(storage="bogus"),
        lambda: MultiJobScenario(storage="bogus"),
        lambda: ControlledScenario(storage="bogus"),
        lambda: Scenario(storage_overrides=((0, "bogus"),)),
    ):
        with pytest.raises(UnknownStorageError) as exc:
            ctor()
        assert "bogus" in str(exc.value)
        assert "hdd" in str(exc.value)
    # It's a ValueError, so the CLI's existing guard catches it too.
    with pytest.raises(ValueError):
        Scenario(storage="bogus")


def test_storage_lowers_through_to_spec():
    spec = Scenario(**TINY, storage="ssd").to_spec(0)
    testbed, _ = spec.config
    assert testbed.cluster.storage == "ssd"
    spec = Scenario(**TINY, storage_overrides=((1, "ssd"),)).to_spec(0)
    testbed, _ = spec.config
    assert testbed.cluster.storage == "hdd"
    assert testbed.cluster.storage_overrides == ((1, "ssd"),)


def test_storage_changes_the_cache_key():
    hdd = Scenario(**TINY).to_spec(0)
    ssd = Scenario(**TINY, storage="ssd").to_spec(0)
    from repro.runner.spec import spec_key

    assert spec_key(hdd) != spec_key(ssd)


def test_assemble_cluster_storage_override():
    _env, cluster = assemble_cluster(
        scaled_cluster(0.05, hosts=2, vms_per_host=2), storage="ssd",
    )
    assert all(host.disk.kind == "ssd" for host in cluster.hosts)
    with pytest.raises(UnknownStorageError):
        assemble_cluster(scaled_cluster(0.05, hosts=2, vms_per_host=2),
                         storage="bogus")


def test_legacy_geometry_kwargs_warn_but_work():
    from repro.disk import DiskGeometry
    from repro.sim import Environment
    from repro.virt.hypervisor import PhysicalHost
    from repro.iosched import scheduler_factory

    with pytest.warns(DeprecationWarning):
        host = PhysicalHost(
            Environment(), name="h0",
            vmm_scheduler_factory=scheduler_factory("cfq"),
            max_vms=1,
            geometry=DiskGeometry(),
        )
    assert host.disk.kind == "hdd"
