"""Fixture helpers: build throwaway mini-project trees to lint."""

from pathlib import Path
from typing import Dict

import pytest


def make_tree(root: Path, files: Dict[str, str]) -> Path:
    """Write ``files`` (relative path -> source) under ``root``.

    Every ancestor directory gets an ``__init__.py`` so the linter's
    package detection sees real dotted module names.  Returns the tree
    root to pass to ``run_lint``.
    """
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        ancestor = path.parent
        while ancestor != root and not (ancestor / "__init__.py").exists():
            (ancestor / "__init__.py").write_text("")
            ancestor = ancestor.parent
        path.write_text(source, encoding="utf-8")
    return root


@pytest.fixture
def tree(tmp_path):
    """Partial application of :func:`make_tree` on this test's tmp dir."""

    def build(files: Dict[str, str]) -> Path:
        return make_tree(tmp_path, files)

    return build
