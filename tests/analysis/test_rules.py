"""Per-rule fixtures: at least one true positive and one near-miss
negative for each of the six rules."""

from repro.analysis.core import run_lint


def lint(root, rule):
    findings, _ = run_lint([root / "repro"], select=[rule])
    return findings


# -- DET001: wall clock in the simulation path ---------------------------------------


def test_det001_flags_wall_clock_in_sim_path(tree):
    root = tree({"repro/disk/t.py": (
        "import time\n"
        "from datetime import datetime\n"
        "def service(env):\n"
        "    a = time.monotonic()\n"
        "    b = datetime.now()\n"
        "    return a, b\n"
    )})
    rules = [f.message for f in lint(root, "DET001")]
    assert len(rules) == 2
    assert any("time.monotonic" in m for m in rules)
    assert any("datetime.datetime.now" in m for m in rules)


def test_det001_near_miss_env_now_and_driver_layer(tree):
    root = tree({
        # env.now is simulated time, not the wall clock.
        "repro/disk/ok.py": "def service(env):\n    return env.now\n",
        # The CLI layer may read the host clock for progress output.
        "repro/cli2.py": "import time\ndef f():\n    return time.time()\n",
    })
    assert lint(root, "DET001") == []


# -- DET002: randomness routed through sim.rng ---------------------------------------


def test_det002_flags_stray_rng(tree):
    root = tree({
        "repro/virt/a.py": (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(7)\n"
        ),
        "repro/mapreduce/b.py": "import random\n",
    })
    findings = lint(root, "DET002")
    assert len(findings) == 2
    assert any("numpy.random.default_rng" in f.message for f in findings)
    assert any("stdlib random" in f.message for f in findings)


def test_det002_near_miss_annotations_and_rng_module(tree):
    root = tree({
        # Annotating with the Generator type is not a draw.
        "repro/virt/ok.py": (
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.uniform()\n"
        ),
        # repro.sim.rng itself is the one allowed constructor.
        "repro/sim/rng.py": (
            "import numpy as np\n"
            "def fallback_rng():\n"
            "    return np.random.default_rng(0)\n"
        ),
    })
    assert lint(root, "DET002") == []


# -- DET003: unordered iteration in the simulation path ------------------------------


def test_det003_flags_set_iteration(tree):
    root = tree({"repro/net/a.py": (
        "def f(items, d):\n"
        "    out = []\n"
        "    for x in set(items):\n"
        "        out.append(x)\n"
        "    out += [k for k in d.keys()]\n"
        "    return out\n"
    )})
    findings = lint(root, "DET003")
    assert len(findings) == 2
    assert any("set(...)" in f.message for f in findings)
    assert any(".keys()" in f.message for f in findings)


def test_det003_near_miss_sorted_wrapped(tree):
    root = tree({"repro/net/ok.py": (
        "def f(items, d):\n"
        "    for x in sorted(set(items)):\n"
        "        yield x\n"
        "    for k in sorted(d.keys()):\n"
        "        yield k\n"
        "    for v in d.values():\n"  # dicts iterate in insertion order
        "        yield v\n"
    )})
    assert lint(root, "DET003") == []


# -- TRACE001: topic registry discipline ---------------------------------------------

REGISTRY = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class TopicSpec:\n"
    "    name: str\n"
    "    doc: str\n"
    "TOPICS = (\n"
    "    TopicSpec('disk.submit', 'submitted'),\n"
    "    TopicSpec('disk.complete', 'completed'),\n"
    ")\n"
)


def test_trace001_flags_unregistered_and_dead_topics(tree):
    root = tree({
        "repro/obs/topics.py": REGISTRY.replace(
            "    TopicSpec('disk.complete', 'completed'),\n",
            "    TopicSpec('disk.complete', 'completed'),\n"
            "    TopicSpec('ghost.topic', 'dead'),\n"),
        "repro/sim/a.py": (
            "def f(bus, env):\n"
            "    bus.publish(env.now, 'disk.submit', rid=1)\n"
            "    bus.publish(env.now, 'disk.oops', rid=2)\n"
            "    bus.record_topic('nope.*')\n"
        ),
    })
    findings = lint(root, "TRACE001")
    messages = [f.message for f in findings]
    assert len(findings) == 4  # unknown publish, bad glob, 2 dead topics
    assert any("'disk.oops'" in m for m in messages)
    assert any("'nope.*'" in m and "matches no" in m for m in messages)
    assert any("'ghost.topic'" in m and "no publish site" in m for m in messages)
    assert any("'disk.complete'" in m and "no publish site" in m for m in messages)


def test_trace001_near_miss_registered_and_globs(tree):
    root = tree({
        "repro/obs/topics.py": REGISTRY,
        "repro/sim/ok.py": (
            "def f(bus, env, topic):\n"
            "    bus.publish(env.now, 'disk.submit', rid=1)\n"
            "    bus.publish(env.now, 'disk.complete', rid=1)\n"
            "    bus.record_topic('disk.*')\n"
            "    bus.record_topic('*')\n"
            "    bus.publish(env.now, topic, rid=2)\n"  # dynamic: not checkable
        ),
    })
    assert lint(root, "TRACE001") == []


def test_trace001_inert_without_registry_module(tree):
    root = tree({"repro/sim/a.py": (
        "def f(bus, env):\n"
        "    bus.publish(env.now, 'anything.goes')\n"
    )})
    assert lint(root, "TRACE001") == []


# -- CACHE001: cache-key purity ------------------------------------------------------


def test_cache001_flags_ambient_reads_via_call_graph(tree):
    root = tree({"repro/runner/spec.py": (
        "import os\n"
        "import time\n"
        "_SEEN = {}\n"
        "def note(k):\n"
        "    _SEEN[k] = True\n"
        "def helper(spec):\n"
        "    if spec in _SEEN:\n"
        "        return os.environ.get('SALT')\n"
        "    return str(time.time())\n"
        "def spec_key(spec):\n"
        "    return helper(spec)\n"
    )})
    findings = lint(root, "CACHE001")
    messages = [f.message for f in findings]
    assert len(findings) == 3  # environ + wall clock + mutable state, via helper
    assert any("os.environ" in m for m in messages)
    assert any("time.time" in m for m in messages)
    assert any("_SEEN" in m for m in messages)


def test_cache001_near_miss_unreachable_and_immutable(tree):
    root = tree({"repro/runner/spec.py": (
        "import os\n"
        "_NAMES = {'a': 1}\n"  # module dict, never mutated: effectively constant
        "def unrelated():\n"
        "    return os.environ.get('HOME')\n"  # not reachable from spec_key
        "def spec_key(spec):\n"
        "    return _NAMES.get(spec, 0)\n"
    )})
    assert lint(root, "CACHE001") == []


# -- API001: frozen/slotted dataclass writes -----------------------------------------

FROZEN = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class Pair:\n"
    "    a: int\n"
    "    b: int\n"
    "def normalise(p: Pair):\n"
    "    object.__setattr__(p, 'a', abs(p.a))\n"  # own module: allowed
)


def test_api001_flags_cross_module_writes(tree):
    root = tree({
        "repro/virt/frozen.py": FROZEN,
        "repro/core/mutate.py": (
            "from ..virt.frozen import Pair\n"
            "def bad(q: Pair):\n"
            "    p = Pair(1, 2)\n"
            "    p.a = 3\n"
            "    object.__setattr__(q, 'b', 4)\n"
        ),
    })
    findings = lint(root, "API001")
    assert len(findings) == 2
    assert any("attribute assignment .a" in f.message for f in findings)
    assert any("object.__setattr__" in f.message for f in findings)


def test_api001_near_miss_replace_and_unfrozen(tree):
    root = tree({
        "repro/virt/frozen.py": FROZEN,
        "repro/virt/plain.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Bag:\n"
            "    a: int\n"
        ),
        "repro/core/ok.py": (
            "from dataclasses import replace\n"
            "from ..virt.frozen import Pair\n"
            "from ..virt.plain import Bag\n"
            "def good():\n"
            "    p = Pair(1, 2)\n"
            "    p = replace(p, a=3)\n"  # the sanctioned way
            "    b = Bag(1)\n"
            "    b.a = 2\n"  # Bag is neither frozen nor slotted
            "    return p, b\n"
        ),
    })
    assert lint(root, "API001") == []


def test_api001_slotted_dataclass_counts(tree):
    root = tree({
        "repro/virt/slotted.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Stats:\n"
            "    __slots__ = ('n',)\n"
            "    n: int\n"
        ),
        "repro/core/touch.py": (
            "from ..virt.slotted import Stats\n"
            "def poke():\n"
            "    s = Stats(1)\n"
            "    s.n = 2\n"
        ),
    })
    findings = lint(root, "API001")
    assert len(findings) == 1 and "Stats" in findings[0].message
