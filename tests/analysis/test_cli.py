"""``repro lint`` CLI: exit codes, formats, dispatch, self-check."""

import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

REPO_SRC = Path(repro.__file__).resolve().parent

CLEAN = "def f(env):\n    return env.now\n"
DIRTY = "import time\n\ndef f():\n    return time.time()\n"


def test_exit_0_on_clean_tree(tree, capsys):
    root = tree({"repro/sim/ok.py": CLEAN})
    assert lint_main([str(root / "repro")]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_exit_1_on_findings(tree, capsys):
    root = tree({"repro/sim/bad.py": DIRTY})
    assert lint_main([str(root / "repro")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "finding(s)" in out


def test_exit_2_on_unknown_rule(tree, capsys):
    root = tree({"repro/sim/ok.py": CLEAN})
    assert lint_main([str(root / "repro"), "--select", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_exit_2_on_missing_path(capsys):
    assert lint_main(["/nonexistent/lint/target"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_exit_2_on_bad_flag(capsys):
    assert lint_main(["--not-a-flag"]) == 2


def test_json_format_and_out_file(tree, tmp_path, capsys):
    root = tree({"repro/sim/bad.py": DIRTY})
    out_file = tmp_path / "report.json"
    code = lint_main([str(root / "repro"), "--format", "json",
                      "--out", str(out_file)])
    assert code == 1
    printed = json.loads(capsys.readouterr().out)
    on_disk = json.loads(out_file.read_text())
    assert printed == on_disk
    assert printed["clean"] is False
    assert printed["counts"] == {"DET001": 1}
    (finding,) = printed["findings"]
    assert finding["rule"] == "DET001"
    assert finding["line"] == 4
    assert "DET001" in printed["rules"]


def test_ignore_drops_rule(tree):
    root = tree({"repro/sim/bad.py": DIRTY})
    assert lint_main([str(root / "repro"), "--ignore", "DET001"]) == 0


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "TRACE001", "CACHE001",
                    "API001"):
        assert rule_id in out


def test_repro_cli_dispatches_lint(tree, capsys):
    root = tree({"repro/sim/bad.py": DIRTY})
    assert repro_main(["lint", str(root / "repro")]) == 1
    assert "DET001" in capsys.readouterr().out


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(REPO_SRC),
         "--select", "DET001"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_selfcheck_repo_source_is_clean():
    """The acceptance gate: all six rules pass on repro's own source."""
    code = lint_main([str(REPO_SRC)])
    assert code == 0
