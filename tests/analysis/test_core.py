"""Linter infrastructure: scanning, suppressions, registry, imports."""

import ast
from pathlib import Path

from repro.analysis.core import (
    RULES,
    ImportMap,
    _module_parts,
    _parse_suppressions,
    run_lint,
    scan_paths,
)


def test_module_parts_from_init_chain(tree):
    root = tree({"repro/sim/clock.py": "x = 1\n"})
    project, errors = scan_paths([root / "repro"])
    assert not errors
    (module,) = [m for m in project.modules if m.path.stem == "clock"]
    assert module.parts == ("repro", "sim", "clock")
    assert module.package == ("repro", "sim")


def test_init_module_package_is_itself(tree):
    root = tree({"repro/obs/topics.py": "x = 1\n"})
    project, _ = scan_paths([root / "repro"])
    (init,) = [m for m in project.modules
               if m.path.stem == "__init__" and m.parts[-1] == "obs"]
    assert init.parts == ("repro", "obs")
    assert init.package == ("repro", "obs")


def test_scan_reports_syntax_errors_as_findings(tree):
    root = tree({"repro/bad.py": "def broken(:\n"})
    project, errors = scan_paths([root / "repro"])
    assert any(f.rule == "SYNTAX" for f in errors)
    assert all(m.path.stem != "bad" for m in project.modules)


def test_suppression_parsing_rules_and_all():
    source = (
        "x = 1  # repro-lint: disable=DET001 justification here\n"
        "y = 2  # repro-lint: disable=DET001,DET002\n"
        "z = 3  # repro-lint: disable=all why not\n"
        "w = '# repro-lint: disable=DET001'\n"
    )
    sup = _parse_suppressions(source)
    assert sup[1] == frozenset({"DET001"})
    assert sup[2] == frozenset({"DET001", "DET002"})
    assert sup[3] == frozenset({"all"})
    assert 4 not in sup  # inside a string literal, not a comment


def test_suppressed_finding_is_dropped(tree):
    dirty = "import time\n\ndef f():\n    return time.time()  # repro-lint: disable=DET001 test fixture\n"
    root = tree({"repro/sim/a.py": dirty})
    findings, _ = run_lint([root / "repro"], select=["DET001"])
    assert findings == []


def test_unsuppressed_finding_survives(tree):
    dirty = "import time\n\ndef f():\n    return time.time()\n"
    root = tree({"repro/sim/a.py": dirty})
    findings, _ = run_lint([root / "repro"], select=["DET001"])
    assert [f.rule for f in findings] == ["DET001"]


def test_rule_registry_has_all_six_rules():
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    assert {"DET001", "DET002", "DET003", "TRACE001", "CACHE001",
            "API001"} <= set(RULES)


def test_import_map_resolves_aliases_and_relative(tree):
    source = (
        "import numpy as np\n"
        "import os\n"
        "from time import monotonic\n"
        "from ..sim.tracing import TraceBus\n"
    )
    root = tree({"repro/obs/x.py": source})
    project, _ = scan_paths([root / "repro"])
    (module,) = [m for m in project.modules if m.path.stem == "x"]
    imports = ImportMap(module)
    assert imports.names["np"] == "numpy"
    assert imports.names["monotonic"] == "time.monotonic"
    assert imports.names["TraceBus"] == "repro.sim.tracing.TraceBus"
    call = ast.parse("np.random.default_rng(0)").body[0].value
    assert imports.resolve(call.func) == "numpy.random.default_rng"


def test_findings_sorted_and_counted(tree):
    dirty = "import time\n\ndef f():\n    return time.time(), time.monotonic()\n"
    root = tree({"repro/sim/b.py": dirty, "repro/sim/a.py": dirty})
    findings, files = run_lint([root / "repro"], select=["DET001"])
    assert len(findings) == 4
    assert findings == sorted(findings, key=lambda f: f.sort_key)
    assert files >= 4  # two modules + __init__ chain
