"""Golden-digest regression test for simulation determinism.

One small sort job has a checked-in SHA-256 of its canonical JSON
payload.  The digest must be reproduced bit-for-bit by every execution
path the sweep runner offers — serial, parallel worker processes, and
the on-disk cache — and by a ``faulty_job`` run under the inert fault
plan (the fault subsystem's zero-overhead guarantee).

If a change alters simulation behaviour *intentionally*, regenerate the
digest with the snippet in ``expected_digest``'s docstring and say so in
the commit message; an unintentional digest change here means a
determinism or bit-identity regression.
"""

import hashlib
import json

from repro.core.solution import Solution
from repro.api import scaled_testbed
from repro.faults import NO_FAULTS
from repro.runner import RunSpec, SweepRunner
from repro.virt.pair import DEFAULT_PAIR
from repro.workloads.profiles import SORT

#: sha256 of the canonical JSON payload of GOLDEN_SPEC, regenerate via:
#:   PYTHONPATH=src python -c "from tests.integration.test_golden_digest \
#:       import run_and_digest; print(run_and_digest())"
#: Regenerated for the exact-partition-extent shuffle fix (v1.3.0): at
#: scale 0.05 the block size (3355443 B) is not a multiple of the 8
#: reducers, so per-reducer fetch extents legitimately shifted from
#: int-truncated uniform reads to exact offset-difference extents.
GOLDEN_DIGEST = (
    "10b4b5602f71dd082a4ad5f89a4363a91cc5f22051dbdb43ea17d0c4a01f9743"
)


def golden_config():
    # Everything explicit: the digest must not depend on environment
    # defaults like $REPRO_SCALE.
    testbed = scaled_testbed(SORT, scale=0.05, hosts=2, vms_per_host=2,
                             seeds=(0,))
    return testbed, Solution.uniform(DEFAULT_PAIR, 2)


def digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_and_digest(**sweep_kwargs):
    testbed, solution = golden_config()
    spec = RunSpec(kind="job", seed=0, config=(testbed, solution))
    sweep_kwargs.setdefault("use_cache", False)
    with SweepRunner(**sweep_kwargs) as sweep:
        [payload] = sweep.run_specs([spec])
    return digest(payload)


def test_serial_run_matches_golden_digest():
    assert run_and_digest(jobs=1) == GOLDEN_DIGEST


def test_parallel_run_matches_golden_digest():
    # Worker processes re-import everything; divergence here means the
    # simulation depends on interpreter state that does not survive
    # pickling/re-import.
    assert run_and_digest(jobs=2) == GOLDEN_DIGEST


def test_cached_replay_matches_golden_digest(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_and_digest(jobs=1, cache_dir=cache_dir, use_cache=True)
    replay = run_and_digest(jobs=1, cache_dir=cache_dir, use_cache=True)
    assert first == GOLDEN_DIGEST
    assert replay == GOLDEN_DIGEST


def test_inert_fault_plan_matches_golden_digest():
    # faulty_job with NO_FAULTS must produce the job payload exactly,
    # plus an empty "faults" ledger: recovery machinery costs nothing
    # when disabled.
    testbed, solution = golden_config()
    spec = RunSpec(kind="faulty_job", seed=0,
                   config=(testbed, solution, NO_FAULTS))
    with SweepRunner(jobs=1, use_cache=False) as sweep:
        [payload] = sweep.run_specs([spec])
    assert payload.pop("faults") == {}
    assert digest(payload) == GOLDEN_DIGEST


def test_digest_is_sensitive_to_the_payload():
    # Guard the guard: a digest that ignores payload changes would make
    # every test above vacuous.
    assert digest({"a": 1}) != digest({"a": 2})


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    print(run_and_digest())
