"""Reduced-scale integration checks of the paper's headline shapes.

The full calibrated checks run in benchmarks/ at REPRO_SCALE; these
compact versions (scale 0.15, a 4-pair subset) guard the mechanisms
that produce them against regressions without slowing the unit suite
much.  Scale 0.15 is the smallest at which the anticipatory-VMM
advantage is comfortably clear of simulation noise: at 0.1 the ac/cc
gap is a knife edge that flips under byte-level changes to fetch
extents (it did when partition extents became exact in v1.3.0), while
0.15/0.2/0.25 all show the paper's ordering with a solid margin.
"""

import pytest

from repro.core import JobRunner
from repro.api import scaled_testbed
from repro.virt import SchedulerPair
from repro.workloads import SORT

PAIRS = {name: SchedulerPair.parse(name) for name in ("cc", "ac", "dc", "nc")}


@pytest.fixture(scope="module")
def sort_durations():
    runner = JobRunner(scaled_testbed(SORT, scale=0.15, seeds=(0,)))
    return {
        name: runner.run_uniform(pair).mean_duration
        for name, pair in PAIRS.items()
    }


def test_noop_vmm_clearly_worst(sort_durations):
    others = [v for k, v in sort_durations.items() if k != "nc"]
    assert sort_durations["nc"] > max(others)
    assert sort_durations["nc"] > min(others) * 1.1


def test_anticipatory_vmm_beats_default(sort_durations):
    assert sort_durations["ac"] < sort_durations["cc"]


def test_deadline_vmm_suffers_deceptive_idleness(sort_durations):
    """DL has no idling: it must trail the AS column on sort."""
    assert sort_durations["dc"] > sort_durations["ac"]


def test_spread_is_meaningful(sort_durations):
    values = list(sort_durations.values())
    assert (max(values) - min(values)) / min(values) > 0.1


def test_multi_pair_plan_at_least_matches_best_single(sort_durations):
    from repro.core import Solution

    runner = JobRunner(scaled_testbed(SORT, scale=0.15, seeds=(0,)))
    best_name = min(sort_durations, key=sort_durations.get)
    mixed = Solution.of([PAIRS["cc"], PAIRS[best_name]])
    if mixed.n_switches == 0:
        pytest.skip("default is best at this scale; nothing to mix")
    mixed_score = runner.score(mixed)
    assert mixed_score <= sort_durations[best_name] * 1.05
