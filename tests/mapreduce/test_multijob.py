"""Multi-tenant control plane: concurrent jobs over shared slots.

Covers the job-level schedulers, the per-tenant SLO payload, the
phase-majority switch plan, and — critically — byte-identical
determinism of concurrent same-seed runs across every sweep-runner
execution path (serial, parallel workers, cached replay), mirroring
the single-job golden-digest contract.
"""

import hashlib
import json

import pytest

from repro.api import MultiJobScenario
from repro.mapreduce import JOB_SCHEDULERS, SwitchPlan, job_scheduler
from repro.runner import SweepRunner
from repro.runner.spec import spec_key

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Dense Poisson stream on a tiny cluster: jobs must overlap.
def scenario(**over):
    kwargs = dict(
        workload="sort",
        scale=0.05,
        hosts=2,
        vms_per_host=2,
        scheduler="fifo",
        n_jobs=3,
        arrival_rate=1.0,
        tenants=("tenant-a", "tenant-b"),
    )
    kwargs.update(over)
    return MultiJobScenario(**kwargs)


def run_payload(scn, seed=0, **sweep_kwargs):
    sweep_kwargs.setdefault("use_cache", False)
    with SweepRunner(**sweep_kwargs) as sweep:
        [payload] = sweep.run_specs([scn.to_spec(seed)])
    return payload


def digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.fixture(scope="module")
def fifo_payload():
    return run_payload(scenario(), jobs=1)


# ---------------------------------------------------------------- payload


def test_all_jobs_complete(fifo_payload):
    assert fifo_payload["n_jobs"] == 3
    jobs = fifo_payload["jobs"]
    assert len(jobs) == 3
    assert [j["job_id"] for j in jobs] == [0, 1, 2]
    for j in jobs:
        assert j["end"] > j["submit"] >= 0
        assert j["latency"] == pytest.approx(j["end"] - j["submit"])
        assert j["n_maps"] > 0 and j["n_reducers"] > 0
        assert j["input_bytes"] > 0
        assert j["reduce_output_bytes"] > 0


def test_stream_overlaps(fifo_payload):
    assert fifo_payload["max_concurrency"] >= 2


def test_goodput_positive(fifo_payload):
    assert fifo_payload["goodput_bytes_per_s"] > 0


def test_tenant_slo_percentiles(fifo_payload):
    tenants = fifo_payload["tenants"]
    assert tenants  # at least one tenant saw a job
    total_jobs = 0
    for stats in tenants.values():
        total_jobs += stats["jobs"]
        assert stats["jobs"] >= 1
        assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"]
        assert stats["mean_latency"] > 0
    assert total_jobs == 3


# ------------------------------------------------------------- schedulers


@pytest.mark.parametrize("sched", sorted(JOB_SCHEDULERS))
def test_every_scheduler_completes_the_stream(sched):
    payload = run_payload(scenario(scheduler=sched), jobs=1)
    assert len(payload["jobs"]) == 3
    assert payload["scheduler"] == sched
    assert payload["max_concurrency"] >= 2


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        job_scheduler("lottery")
    with pytest.raises(ValueError):
        scenario(scheduler="lottery")


def test_schedulers_change_ordering_not_outcomes():
    fifo = run_payload(scenario(scheduler="fifo"), jobs=1)
    sjf = run_payload(scenario(scheduler="sjf"), jobs=1)
    # Same stream, same jobs, same byte totals; only timing may move.
    for key in ("input_bytes", "n_maps", "n_reducers"):
        assert sorted(j[key] for j in fifo["jobs"]) == \
            sorted(j[key] for j in sjf["jobs"])


# ------------------------------------------------------------ switch plan


def test_switch_plan_run_completes():
    payload = run_payload(scenario(switch=("ad", "cc")), jobs=1)
    assert len(payload["jobs"]) == 3
    assert payload["goodput_bytes_per_s"] > 0


def test_switch_plan_parses_pairs():
    plan = scenario(switch=("ad", "cc")).switch_plan()
    assert isinstance(plan, SwitchPlan)
    assert plan.map_pair.label == "ad"
    assert plan.tail_pair.label == "cc"
    assert plan.min_dwell > 0


# ----------------------------------------------------------- determinism


@pytest.fixture(scope="module")
def serial_digest():
    return digest(run_payload(scenario(), jobs=1))


def test_serial_rerun_is_byte_identical(serial_digest):
    assert digest(run_payload(scenario(), jobs=1)) == serial_digest


def test_parallel_workers_match_serial(serial_digest):
    assert digest(run_payload(scenario(), jobs=2)) == serial_digest


def test_cached_replay_matches_serial(tmp_path, serial_digest):
    cache_dir = str(tmp_path / "cache")
    first = digest(run_payload(scenario(), jobs=1, cache_dir=cache_dir,
                               use_cache=True))
    replay = digest(run_payload(scenario(), jobs=1, cache_dir=cache_dir,
                                use_cache=True))
    assert first == serial_digest
    assert replay == serial_digest


def test_seed_changes_the_stream(serial_digest):
    assert digest(run_payload(scenario(), seed=1, jobs=1)) != serial_digest


# ------------------------------------------------------------- validation


def test_scenario_validation():
    with pytest.raises(ValueError):
        scenario(n_jobs=0)
    with pytest.raises(ValueError):
        scenario(arrival_rate=0.0)
    with pytest.raises(ValueError):
        scenario(tenants=())


def test_cache_key_is_pure():
    a = spec_key(scenario().to_spec(0))
    b = spec_key(scenario().to_spec(0))
    assert a == b
    assert spec_key(scenario(scheduler="sjf").to_spec(0)) != a
    assert spec_key(scenario().to_spec(1)) != a
