"""End-to-end MapReduce job tests on a small virtual cluster."""

import pytest

from repro.hdfs import NameNode
from repro.mapreduce import MB, JobConfig, MapReduceJob
from repro.net import Topology
from repro.sim import Environment
from repro.virt import ClusterConfig, VirtualCluster
from repro.workloads import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER


def run_job(spec, hosts=2, vms=2, data=32 * MB, seed=0, trace=None, **cfg_over):
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=hosts, vms_per_host=vms,
                                                seed=seed))
    topo = Topology(env)
    nn = NameNode(cluster, block_size=cfg_over.get("block_size", 8 * MB))
    cfg = JobConfig(spec=spec, bytes_per_vm=data,
                    **{"block_size": 8 * MB,
                       "sort_buffer_bytes": 12 * MB,
                       "shuffle_buffer_bytes": 16 * MB,
                       **cfg_over})
    job = MapReduceJob(env, cluster, topo, nn, cfg, trace=trace)
    proc = job.start()
    env.run(until=proc)
    return proc.value, cluster, env, job


def test_sort_job_completes_with_sane_result():
    result, cluster, env, _ = run_job(SORT)
    assert result.duration > 0
    assert result.n_maps == 16  # 4 VMs x 32MB / 8MB
    assert result.n_reducers == 8
    assert result.input_bytes == 4 * 32 * MB
    # sort: map output == input.
    assert result.map_output_bytes == pytest.approx(result.input_bytes, rel=0.01)
    assert result.shuffle_bytes == pytest.approx(result.input_bytes, rel=0.01)
    assert result.reduce_output_bytes == pytest.approx(result.input_bytes, rel=0.05)


def test_phases_ordered():
    result, *_ = run_job(SORT)
    p = result.phases
    assert p.start <= p.maps_done <= p.end
    assert p.ph1 > 0 and p.ph3 > 0
    assert p.ph1 + p.ph2 + p.ph3 == pytest.approx(p.duration)


def test_map_progress_monotone_and_complete():
    result, *_ = run_job(SORT)
    fracs = [f for _, f in result.map_progress]
    assert fracs == sorted(fracs)
    assert fracs[-1] == pytest.approx(1.0)
    assert len(result.map_progress) == result.n_maps


def test_wordcount_lighter_io_than_sort():
    wc, *_ = run_job(WORDCOUNT)
    sort, *_ = run_job(SORT)
    assert wc.map_output_bytes < 0.3 * sort.map_output_bytes
    assert wc.shuffle_bytes < sort.shuffle_bytes


def test_wordcount_nocombiner_map_output_1_7x():
    result, *_ = run_job(WORDCOUNT_NO_COMBINER)
    assert result.map_output_bytes == pytest.approx(1.7 * result.input_bytes,
                                                    rel=0.02)


def test_output_written_to_hdfs_with_replicas():
    result, cluster, env, job = run_job(SORT)
    out = job.namenode.lookup(job.config.output_path)
    assert out.size_bytes == pytest.approx(result.reduce_output_bytes, rel=0.01)
    for block in out.blocks:
        assert len(block.replicas) == 2


def test_deterministic_given_seed():
    r1, *_ = run_job(SORT, seed=3)
    r2, *_ = run_job(SORT, seed=3)
    assert r1.duration == pytest.approx(r2.duration)
    r3, *_ = run_job(SORT, seed=4)
    assert r1.duration != pytest.approx(r3.duration)


def test_job_cannot_start_twice():
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=1, vms_per_host=2))
    topo = Topology(env)
    nn = NameNode(cluster, block_size=8 * MB)
    cfg = JobConfig(spec=SORT, bytes_per_vm=16 * MB, block_size=8 * MB)
    job = MapReduceJob(env, cluster, topo, nn, cfg)
    job.start()
    with pytest.raises(RuntimeError):
        job.start()


def test_trace_events_published():
    from repro.sim import TraceBus

    bus = TraceBus()
    for topic in ("job.start", "job.maps_done", "job.done", "job.map_finished"):
        bus.record_topic(topic)
    run_job(SORT, trace=bus)
    assert len(bus.recorded("job.start")) == 1
    assert len(bus.recorded("job.maps_done")) == 1
    assert len(bus.recorded("job.done")) == 1
    assert len(bus.recorded("job.map_finished")) == 16


def test_more_data_takes_longer():
    small, *_ = run_job(SORT, data=16 * MB)
    big, *_ = run_job(SORT, data=48 * MB)
    assert big.duration > small.duration


def test_fewer_waves_means_more_nonconcurrent_shuffle():
    # The paper's Table II relationship: with fewer map waves the
    # shuffle has less map-phase time to hide behind.  Compare the
    # extremes (8 waves vs 1 wave) where the effect is unambiguous.
    many_waves, *_ = run_job(SORT, data=64 * MB, map_slots=1)  # 8 waves
    one_wave, *_ = run_job(SORT, data=64 * MB, map_slots=8)    # 1 wave
    assert (
        one_wave.phases.non_concurrent_shuffle_pct
        > many_waves.phases.non_concurrent_shuffle_pct
    )


def _stepped_job(slowstart):
    """Build a job, run only its t=0 setup, and return (env, job)."""
    env = Environment()
    cluster = VirtualCluster(env, ClusterConfig(hosts=2, vms_per_host=2,
                                                seed=0))
    topo = Topology(env)
    nn = NameNode(cluster, block_size=8 * MB)
    cfg = JobConfig(spec=SORT, bytes_per_vm=32 * MB, block_size=8 * MB,
                    sort_buffer_bytes=12 * MB, shuffle_buffer_bytes=16 * MB,
                    slowstart=slowstart)
    job = MapReduceJob(env, cluster, topo, nn, cfg)
    proc = job.start()
    return env, job, proc


def test_slowstart_zero_opens_reducer_gate_at_job_start():
    # Regression: slowstart=0 used to behave like "after the first map"
    # because of the max(1, ...) floor; zero must mean zero.
    env, job, _ = _stepped_job(slowstart=0.0)
    env.run(until=env.timeout(1e-9))
    assert job.ctx.slowstart_count() == 0
    assert job.ctx.maps_finished == 0
    assert job.ctx.reducers_may_start.triggered


def test_slowstart_one_gates_reducers_on_the_last_map():
    env, job, proc = _stepped_job(slowstart=1.0)
    assert job.ctx.slowstart_count() == job.ctx.n_maps
    env.run(until=env.timeout(1e-9))
    assert not job.ctx.reducers_may_start.triggered
    env.run(until=proc)
    assert job.ctx.reducers_may_start.triggered
    assert proc.value.duration > 0


def test_slowstart_boundary_runs_complete():
    fast, *_ = run_job(SORT, slowstart=0.0)
    slow, *_ = run_job(SORT, slowstart=1.0)
    assert fast.n_reducers == slow.n_reducers == 8
    # With the gate open from t=0 the shuffle fully overlaps the maps;
    # gating on the last map serialises it, so it cannot be faster.
    assert slow.duration >= fast.duration
    assert (
        slow.phases.non_concurrent_shuffle_pct
        >= fast.phases.non_concurrent_shuffle_pct
    )
