"""Unit tests for the shuffle service and TaskPool."""

import pytest

from repro.mapreduce import MapOutput, ShuffleService, TaskPool
from repro.mapreduce.map_task import MapTask
from repro.hdfs.blocks import HdfsBlock
from repro.sim import Environment


def output(map_id=0, vm="v0", total=320.0):
    return MapOutput(map_id=map_id, vm_id=vm, file=None, total_bytes=total)


def test_partitioning_uniform():
    o = output(total=320.0)
    assert o.partition_bytes(0, 32) == pytest.approx(10.0)
    assert o.partition_offset(0, 32) == 0
    assert o.partition_offset(16, 32) == 160


def test_partition_extents_tile_exactly():
    # 100 bytes over 3 reducers: int-truncated offsets are 0/33/66, so
    # the exact extents are 33/33/34 — they sum to the full output and
    # agree with consecutive offsets (the historical uniform float 33.3
    # did neither).
    o = output(total=100.0)
    extents = [o.partition_bytes(r, 3) for r in range(3)]
    assert extents == [33, 33, 34.0]
    assert sum(extents) == o.total_bytes
    for r in range(2):
        assert o.partition_offset(r, 3) + extents[r] == o.partition_offset(r + 1, 3)


def test_partition_extents_match_offsets_for_every_reducer():
    o = output(total=3355443.0)  # the scale-0.05 block size: non-divisible
    n = 8
    offsets = [o.partition_offset(r, n) for r in range(n)]
    for r in range(n - 1):
        assert o.partition_bytes(r, n) == offsets[r + 1] - offsets[r]
    assert o.partition_bytes(n - 1, n) == o.total_bytes - offsets[-1]
    assert sum(o.partition_bytes(r, n) for r in range(n)) == o.total_bytes


def test_partition_validation():
    o = output()
    with pytest.raises(ValueError):
        o.partition_bytes(0, 0)
    with pytest.raises(ValueError):
        o.partition_bytes(4, 4)
    with pytest.raises(ValueError):
        o.partition_offset(5, 4)


def test_register_fans_out_to_all_reducers():
    env = Environment()
    svc = ShuffleService(env, n_reducers=3, n_maps=2)
    svc.register(output(map_id=0))
    env.run()
    assert all(len(q.items) == 1 for q in svc.queues)
    assert svc.registered == 1


def test_register_over_maps_raises():
    env = Environment()
    svc = ShuffleService(env, n_reducers=1, n_maps=1)
    svc.register(output(0))
    with pytest.raises(RuntimeError):
        svc.register(output(1))


def test_shuffle_done_after_all_fetches():
    env = Environment()
    svc = ShuffleService(env, n_reducers=2, n_maps=2)
    assert svc.fetches_remaining == 4
    for reducer, map_id in [(0, 0), (0, 1), (1, 0)]:
        svc.note_fetch_complete(reducer, map_id, 10.0)
        assert not svc.shuffle_done.triggered
    svc.note_fetch_complete(1, 1, 10.0)
    assert svc.shuffle_done.triggered
    assert svc.shuffled_bytes == pytest.approx(40.0)


def test_duplicate_fetches_do_not_double_count():
    env = Environment()
    svc = ShuffleService(env, n_reducers=1, n_maps=2)
    svc.note_fetch_complete(0, 0, 10.0)
    # A retried reduce attempt re-pulls the same partition.
    svc.note_fetch_complete(0, 0, 10.0)
    assert svc.shuffled_bytes == pytest.approx(10.0)
    assert svc.fetches_remaining == 1
    assert not svc.shuffle_done.triggered
    svc.note_fetch_complete(0, 1, 10.0)
    assert svc.shuffle_done.triggered


def test_invalid_shuffle_params():
    env = Environment()
    with pytest.raises(ValueError):
        ShuffleService(env, n_reducers=0, n_maps=1)


# -- TaskPool ---------------------------------------------------------------------


def tasks_for(counts):
    tasks = []
    tid = 0
    for vm, n in counts.items():
        for _ in range(n):
            block = HdfsBlock(path="in", index=tid, size_bytes=1, replicas=[vm])
            tasks.append(MapTask(task_id=tid, block=block, vm_id=vm))
            tid += 1
    return tasks


def test_taskpool_local_first():
    pool = TaskPool(tasks_for({"a": 2, "b": 2}))
    t = pool.take("a")
    assert t.vm_id == "a"
    assert pool.remaining() == 3


def test_taskpool_no_steal_below_threshold():
    pool = TaskPool(tasks_for({"a": 0, "b": 1}), steal_threshold=2)
    assert pool.take("a") is None  # b's single task is left alone
    assert pool.remaining() == 1


def test_taskpool_steals_from_backlogged_vm():
    pool = TaskPool(tasks_for({"b": 5}), steal_threshold=2)
    stolen = pool.take("a")
    assert stolen is not None
    assert stolen.vm_id == "a"  # rebound to the thief
    assert not stolen.is_data_local
    assert pool.stolen == 1


def test_taskpool_exhaustion():
    pool = TaskPool(tasks_for({"a": 1}))
    assert pool.take("a") is not None
    assert pool.take("a") is None
    assert pool.remaining() == 0
