"""Unit tests for job specs, configs, and phase accounting."""

import pytest

from repro.mapreduce import MB, JobConfig, JobSpec, PhaseTimes
from repro.workloads import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER, benchmark


def test_jobspec_ratio_validation():
    with pytest.raises(ValueError):
        JobSpec("x", emit_ratio=1.0, map_output_ratio=2.0, reduce_output_ratio=0.0)
    with pytest.raises(ValueError):
        JobSpec("x", emit_ratio=-1, map_output_ratio=0, reduce_output_ratio=0)
    with pytest.raises(ValueError):
        JobSpec("x", 1.0, 1.0, 1.0, map_cpu_s_per_mb=-0.1)


def test_benchmark_profiles_match_paper_classification():
    # wordcount: light — combiner shrinks map output drastically.
    assert WORDCOUNT.combiner
    assert WORDCOUNT.map_output_ratio < 0.2
    # w/o combiner: moderate — map output ~1.7x input (paper's figure).
    assert WORDCOUNT_NO_COMBINER.map_output_ratio == pytest.approx(1.7)
    assert WORDCOUNT_NO_COMBINER.reduce_output_ratio < 0.1
    # sort: heavy — both ends equal the input.
    assert SORT.map_output_ratio == pytest.approx(1.0)
    assert SORT.reduce_output_ratio == pytest.approx(1.0)


def test_benchmark_lookup():
    assert benchmark("sort") is SORT
    with pytest.raises(KeyError):
        benchmark("terasort")


def test_jobconfig_waves_formula():
    cfg = JobConfig(spec=SORT, bytes_per_vm=512 * MB, block_size=64 * MB,
                    map_slots=2)
    assert cfg.blocks_per_vm() == 8
    assert cfg.waves() == pytest.approx(4.0)  # paper's 8-maps example


def test_jobconfig_validation():
    with pytest.raises(ValueError):
        JobConfig(spec=SORT, bytes_per_vm=0)
    with pytest.raises(ValueError):
        JobConfig(spec=SORT, spill_threshold=0.0)
    with pytest.raises(ValueError):
        JobConfig(spec=SORT, slowstart=2.0)
    with pytest.raises(ValueError):
        JobConfig(spec=SORT, map_slots=0)


def test_jobconfig_with_helper():
    cfg = JobConfig(spec=SORT)
    cfg2 = cfg.with_(bytes_per_vm=128 * MB)
    assert cfg2.bytes_per_vm == 128 * MB
    assert cfg2.spec is SORT


def test_phase_times_accounting():
    p = PhaseTimes(start=10.0, maps_done=40.0, shuffle_done=45.0, end=70.0)
    assert p.duration == pytest.approx(60.0)
    assert p.ph1 == pytest.approx(30.0)
    assert p.ph2 == pytest.approx(5.0)
    assert p.ph3 == pytest.approx(25.0)
    assert p.non_concurrent_shuffle_pct == pytest.approx(100 * 5 / 60)
    assert sum(p.breakdown().values()) == pytest.approx(p.duration)


def test_phase_times_incomplete_raises():
    p = PhaseTimes(start=0.0)
    with pytest.raises(ValueError):
        _ = p.duration
    with pytest.raises(ValueError):
        _ = p.ph1


def test_phase_shuffle_done_before_maps_clamped():
    # Shuffle can't finish before maps; ph2 clamps at 0 for boundary ties.
    p = PhaseTimes(start=0.0, maps_done=10.0, shuffle_done=10.0, end=20.0)
    assert p.ph2 == 0.0
    assert p.ph3 == pytest.approx(10.0)
