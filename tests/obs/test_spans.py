"""Span reconstruction conservation laws, pinned on real traced runs.

One module-scoped fixture simulates the small sort job (and its
fault-injected variant) for three seeds each, with full-topic capture,
and every test works off those six record lists.  The two conservation
properties from DESIGN §10:

* the critical path tiles each phase window *exactly* — segments share
  endpoints and their durations sum (fsum) to the job makespan with
  zero error;
* record ownership is total and single-valued — every record maps to
  exactly one span name.
"""

import json
import math

import pytest

from repro.api import scaled_testbed
from repro.core.solution import Solution
from repro.faults.presets import LIGHT
from repro.obs import capture
from repro.obs.export import load_jsonl
from repro.obs.spans import (
    assign_records,
    blame_rows,
    blame_summary,
    build_span_tree,
    critical_path,
    critical_path_rows,
    write_span_trace,
)
from repro.runner import RunSpec
from repro.runner.kinds import execute_spec
from repro.sim.tracing import TraceRecord
from repro.virt.pair import DEFAULT_PAIR
from repro.workloads.profiles import SORT

SEEDS = (0, 1, 2)
CASES = [(kind, seed) for kind in ("job", "faulty_job") for seed in SEEDS]


def _spec(kind, seed):
    testbed = scaled_testbed(SORT, scale=0.05, hosts=2, vms_per_host=2,
                             seeds=(seed,))
    solution = Solution.uniform(DEFAULT_PAIR, 2)
    if kind == "job":
        return RunSpec(kind="job", seed=seed, config=(testbed, solution))
    return RunSpec(kind="faulty_job", seed=seed,
                   config=(testbed, solution, LIGHT))


@pytest.fixture(scope="module")
def traced_runs(tmp_path_factory):
    """``{(kind, seed): [TraceRecord, ...]}`` for all six runs."""
    runs = {}
    for kind, seed in CASES:
        out = tmp_path_factory.mktemp(f"{kind}-{seed}")
        capture.enable(out)
        try:
            execute_spec(_spec(kind, seed))
        finally:
            capture.disable()
        trace = next(out.glob("*.trace.jsonl"))
        runs[(kind, seed)] = load_jsonl(trace)
    return runs


def _makespan(records):
    start = next(r.time for r in records if r.topic == "job.start")
    end = max(r.time for r in records if r.topic == "job.done")
    return end - start


@pytest.mark.parametrize("kind,seed", CASES)
def test_critical_path_durations_sum_exactly_to_makespan(traced_runs, kind, seed):
    records = traced_runs[(kind, seed)]
    segments = critical_path(records)
    assert segments
    total = math.fsum(seg.duration for seg in segments)
    assert total == _makespan(records)  # exact, not approximate


@pytest.mark.parametrize("kind,seed", CASES)
def test_segments_tile_each_phase_exactly(traced_runs, kind, seed):
    records = traced_runs[(kind, seed)]
    segments = critical_path(records)
    by_phase = {}
    for seg in segments:
        assert seg.end > seg.start
        by_phase.setdefault(seg.phase, []).append(seg)
    assert set(by_phase) == {"map", "shuffle", "reduce"}
    for tiles in by_phase.values():
        for a, b in zip(tiles, tiles[1:]):
            assert a.end == b.start  # shared endpoints, no gaps/overlap
    # Phases chain: map ends where shuffle starts, etc.
    assert by_phase["map"][-1].end == by_phase["shuffle"][0].start
    assert by_phase["shuffle"][-1].end == by_phase["reduce"][0].start


@pytest.mark.parametrize("kind,seed", CASES)
def test_every_record_owned_by_exactly_one_span(traced_runs, kind, seed):
    records = traced_runs[(kind, seed)]
    owners = assign_records(records)
    assert len(owners) == len(records)  # total...
    assert all(isinstance(o, str) and o for o in owners)  # ...and named
    # Task-hinted records with a process id resolve to that task's span.
    for record, owner in zip(records, owners):
        if record.topic in ("fs.read", "fs.write"):
            assert owner == f"task:{record.payload['process']}"


def test_faults_reach_the_critical_path(traced_runs):
    """Across the faulty seeds, injected faults show up as blame."""
    fault_seconds = 0.0
    for seed in SEEDS:
        records = traced_runs[("faulty_job", seed)]
        summary = blame_summary(critical_path(records))
        fault_seconds += sum(
            ph["fault"] for ph in summary["phases"].values()
        )
    assert fault_seconds > 0.0


def test_fault_free_runs_have_no_fault_segments(traced_runs):
    for seed in SEEDS:
        segments = critical_path(traced_runs[("job", seed)])
        assert all(seg.kind != "fault" for seg in segments)


def test_blame_summary_partitions_the_makespan(traced_runs):
    records = traced_runs[("faulty_job", 1)]
    summary = blame_summary(critical_path(records))
    for ph in summary["phases"].values():
        split = ph["task"] + ph["fault"] + ph["switch"] + ph["idle"]
        assert split == pytest.approx(ph["duration"], abs=1e-9)
        assert ph["io_wait"] + ph["service"] <= ph["duration"] + 1e-9
    phase_total = math.fsum(
        ph["duration"] for ph in summary["phases"].values()
    )
    assert phase_total == pytest.approx(summary["makespan"], abs=1e-9)
    assert summary["top_owners"]
    assert blame_rows(summary)  # renderable
    json.dumps(summary)  # JSON-able for payload folding


def test_span_tree_shape(traced_runs):
    records = traced_runs[("job", 0)]
    root = build_span_tree(records)
    assert root.kind == "run"
    jobs = [s for s in root.children if s.kind == "job"]
    assert len(jobs) == 1
    phases = [s for s in jobs[0].children if s.kind == "phase"]
    assert {s.name for s in phases} == {
        "phase:map", "phase:shuffle", "phase:reduce"
    }
    tasks = [t for ph in phases for t in ph.children if t.kind == "task"]
    assert tasks
    requests = [r for t in tasks for r in t.children if r.kind == "request"]
    assert requests
    for task in tasks:
        assert task.end >= task.start
        for req in task.children:
            assert req.attrs["device"]


def test_critical_path_rows_match_segments(traced_runs):
    segments = critical_path(traced_runs[("job", 0)])
    rows = critical_path_rows(segments)
    assert len(rows) == len(segments)
    assert rows[0][0] == "map"


def test_write_span_trace_is_valid_chrome_json(traced_runs, tmp_path):
    records = traced_runs[("faulty_job", 1)]
    out = tmp_path / "spans.json"
    n = write_span_trace(records, out)
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert n == len(events) > 0
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert "task" in cats and "request" in cats
    assert any(c.startswith("critical-") for c in cats if c)
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 0.0


def test_empty_and_markerless_records_degrade_gracefully():
    assert critical_path([]) == []
    assert build_span_tree([]).children == []
    assert assign_records([]) == []
    # Records without job marks still get a single "run" window.
    records = [
        TraceRecord(time=1.0, topic="fs.read",
                    payload={"vm": "v", "file": "f", "offset": 0,
                             "length": 1, "process": "map0@v"}),
        TraceRecord(time=3.0, topic="fs.read",
                    payload={"vm": "v", "file": "f", "offset": 1,
                             "length": 1, "process": "map0@v"}),
    ]
    segments = critical_path(records)
    assert segments
    assert {seg.phase for seg in segments} == {"run"}
    assert math.fsum(seg.duration for seg in segments) == 2.0
