"""`repro report` end to end: trace artifacts in, tables and Chrome out.

One module-scoped fig8-style capture (a small fig8 benchmark run via the
real CLI with ``--trace-out``) feeds every test, so the expensive
simulation happens once.
"""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    device_rows,
    phase_durations,
    render_report,
    render_timeline,
    trace_files,
)
from repro.obs.export import load_jsonl
from repro.sim.tracing import TraceRecord


def rec(time, topic, **payload):
    return TraceRecord(time=time, topic=topic, payload=payload)


@pytest.fixture(scope="module")
def fig8_trace_dir(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fig8-traces")
    trace_dir = tmp / "traces"
    code = main([
        "fig8", "--scale", "0.02", "--seeds", "0", "--jobs", "1",
        "--quiet", "--cache-dir", str(tmp / "cache"),
        "--trace-out", str(trace_dir),
    ])
    assert code == 0
    return trace_dir


def test_trace_out_writes_one_artifact_pair_per_run(fig8_trace_dir):
    traces = sorted(fig8_trace_dir.glob("*.trace.jsonl"))
    metrics = sorted(fig8_trace_dir.glob("*.metrics.json"))
    # fig8 runs three benchmarks (wordcount, wordcount-nocombiner, sort).
    assert len(traces) == 3
    assert len(metrics) == 3


def test_report_cli_prints_phases_and_device_io(fig8_trace_dir, capsys, tmp_path):
    chrome_out = tmp_path / "fig8.chrome.json"
    code = main(["report", str(fig8_trace_dir),
                 "--chrome-out", str(chrome_out)])
    assert code == 0
    out = capsys.readouterr().out
    # Per-phase durations for every captured run...
    assert out.count("per-phase durations") == 3
    for phase in ("map", "shuffle", "reduce"):
        assert phase in out
    # ...and per-device I/O metrics (Dom0 disks and guest vdisks).
    assert "per-device I/O" in out
    assert "h0.sda" in out
    assert "xvda@h0v0" in out
    assert "mean lat ms" in out
    # The merged Chrome trace is valid trace-event JSON.
    data = json.loads(chrome_out.read_text())
    assert data["traceEvents"]
    assert {"phase:map", "phase:reduce"} <= {
        e["name"] for e in data["traceEvents"] if e["ph"] == "X"
    }


def test_report_cli_errors_cleanly_on_missing_path(capsys, tmp_path):
    code = main(["report", str(tmp_path / "nope")])
    assert code == 2
    err = capsys.readouterr().err
    # The failure is *named* so scripts can tell missing from empty.
    assert "MissingTraceError" in err


def test_report_cli_names_empty_traces(capsys, tmp_path):
    (tmp_path / "hollow.trace.jsonl").write_text("")
    code = main(["report", str(tmp_path)])
    assert code == 2
    assert "EmptyTraceError" in capsys.readouterr().err
    code = main(["report", str(tmp_path), "--json"])
    assert code == 2
    assert "EmptyTraceError" in capsys.readouterr().err


def test_trace_files_resolution(fig8_trace_dir, tmp_path):
    files = trace_files(fig8_trace_dir)
    assert len(files) == 3
    assert files == sorted(files)
    single = trace_files(files[0])
    assert single == [files[0]]
    with pytest.raises(FileNotFoundError):
        trace_files(tmp_path / "empty-nope")


def test_phase_durations_from_real_trace(fig8_trace_dir):
    records = load_jsonl(trace_files(fig8_trace_dir)[0])
    phases = phase_durations(records)
    assert set(phases) == {"map", "shuffle", "reduce"}
    start, end = phases["map"]
    assert end > start >= 0.0
    # Contiguity: shuffle starts where map ends, reduce where shuffle ends.
    assert phases["shuffle"][0] == phases["map"][1]
    assert phases["reduce"][0] == phases["shuffle"][1]


def test_device_rows_from_real_trace(fig8_trace_dir):
    from repro.obs.metrics import TraceMetrics

    records = load_jsonl(trace_files(fig8_trace_dir)[0])
    snapshot = TraceMetrics().replay(records).registry.snapshot()
    rows = device_rows(snapshot)
    devices = [row[0] for row in rows]
    assert any(d.endswith(".sda") for d in devices)
    assert any(d.startswith("xvda@") for d in devices)
    for row in rows:
        submitted, completed = row[1], row[2]
        assert submitted >= completed >= 0
        assert row[4] >= 0  # MB


def test_render_timeline_handles_empty_and_aligned_phases():
    assert "no job phase" in render_timeline({})
    text = render_timeline({"map": (0.0, 8.0), "reduce": (8.0, 10.0)},
                           width=20)
    assert "timeline [0.0s .. 10.0s]" in text
    assert "map" in text and "reduce" in text


def test_render_report_on_synthetic_records():
    text = render_report([
        rec(0.0, "job.start", name="j"),
        rec(1.0, "job.maps_done"),
        rec(2.0, "job.done", name="j"),
    ], title="t")
    assert "== t ==" in text
    assert "3 trace records" in text
    assert "per-phase durations" in text
    # No disk records: the device table is omitted, not empty.
    assert "per-device I/O" not in text


def test_report_cli_critical_path_tables(fig8_trace_dir, capsys):
    code = main(["report", str(fig8_trace_dir), "--critical-path"])
    assert code == 0
    out = capsys.readouterr().out
    # One critical-path + blame section per captured run.
    assert out.count("critical path") >= 3
    assert out.count("per-phase blame (critical-path seconds)") == 3
    assert "top owners:" in out


def test_report_json_document_schema(fig8_trace_dir, capsys):
    code = main(["report", str(fig8_trace_dir), "--json", "--critical-path"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.report/1"
    assert len(doc["files"]) == 3
    for entry in doc["files"]:
        assert entry["records"] > 0
        assert set(entry["phases"]) == {"map", "shuffle", "reduce"}
        for ph in entry["phases"].values():
            assert ph["duration"] == ph["end"] - ph["start"]
        assert entry["devices"]
        assert all("device" in d and "submitted" in d
                   for d in entry["devices"])
        cp = entry["critical_path"]
        # Conservation, straight off the emitted document.
        seg_total = sum(s["duration"] for s in cp["segments"])
        assert seg_total == pytest.approx(cp["blame"]["makespan"], abs=1e-9)


def test_report_json_omits_critical_path_unless_asked(fig8_trace_dir, capsys):
    code = main(["report", str(fig8_trace_dir), "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert all("critical_path" not in entry for entry in doc["files"])


def test_report_out_and_spans_out_write_files(fig8_trace_dir, capsys, tmp_path):
    out = tmp_path / "report.json"
    spans = tmp_path / "spans.json"
    code = main(["report", str(fig8_trace_dir), "--json", "--critical-path",
                 "--out", str(out), "--spans-out", str(spans)])
    assert code == 0
    assert f"wrote report to {out}" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.report/1"
    span_doc = json.loads(spans.read_text())
    assert span_doc["traceEvents"]
