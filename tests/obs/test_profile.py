"""Sweep profiler: aggregation, utilization, and runner integration."""

import pytest

from repro.obs.profile import BatchProfile, SweepProfiler
from repro.runner import RunSpec, SweepRunner


def batch(**kw):
    defaults = dict(specs=1, executed=1, memo_hits=0, cache_hits=0,
                    lookup_seconds=0.0, execute_seconds=1.0, busy_seconds=1.0)
    defaults.update(kw)
    return BatchProfile(**defaults)


def test_profiler_aggregates_batches():
    prof = SweepProfiler(jobs=2)
    prof.record_batch(batch(specs=3, executed=2, memo_hits=1,
                            lookup_seconds=0.1, execute_seconds=2.0,
                            busy_seconds=3.0))
    prof.record_batch(batch(specs=1, executed=0, cache_hits=1,
                            lookup_seconds=0.2, execute_seconds=0.0,
                            busy_seconds=0.0))
    assert prof.specs == 4
    assert prof.executed == 2
    assert prof.lookup_seconds == pytest.approx(0.3)
    assert prof.execute_seconds == pytest.approx(2.0)
    # 3.0 busy seconds over a 2-worker, 2.0s execute window: 75%.
    assert prof.worker_utilization() == pytest.approx(0.75)


def test_profiler_utilization_clamps_and_handles_idle():
    prof = SweepProfiler(jobs=1)
    assert prof.worker_utilization() == 0.0
    prof.record_batch(batch(execute_seconds=1.0, busy_seconds=5.0))
    assert prof.worker_utilization() == 1.0


def test_profiler_snapshot_and_summary_include_cache():
    prof = SweepProfiler(jobs=1)
    prof.record_batch(batch())
    cache = {"hits": 2, "misses": 1, "bytes_read": 10, "bytes_written": 20}
    snap = prof.snapshot(cache)
    assert snap["batches"] == 1
    assert snap["cache"]["hits"] == 2
    text = prof.summary(cache)
    assert "profile:" in text
    assert "cache hits 2" in text
    # Without cache stats the cache line disappears.
    assert "cache hits" not in prof.summary(None)


def test_sweep_runner_records_profile_and_cache_traffic(tmp_path):
    from tests.integration.test_golden_digest import golden_config

    testbed, solution = golden_config()
    spec = RunSpec(kind="job", seed=0, config=(testbed, solution))
    with SweepRunner(jobs=1, cache_dir=tmp_path / "cache") as sweep:
        sweep.run_specs([spec, spec])
        prof = sweep.profiler
        assert len(prof.batches) == 1
        assert prof.specs == 2
        assert prof.executed == 1  # duplicate key simulates once
        assert prof.busy_seconds > 0
        summary = sweep.profile_summary()
    assert "profile:" in summary
    assert "workers 1" in summary
    # The executed run was persisted: cache write traffic is non-zero.
    assert "wrote" in summary
    stats = sweep.cache.stats()
    assert stats["bytes_written"] > 0
    assert stats["misses"] >= 1

    # A fresh runner over the same cache dir serves from disk: hits.
    with SweepRunner(jobs=1, cache_dir=tmp_path / "cache") as sweep2:
        sweep2.run_specs([spec])
        assert sweep2.cache.stats()["hits"] == 1
        assert sweep2.profiler.executed == 0
