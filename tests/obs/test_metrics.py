"""Unit tests for the metrics registry and the trace-topic bridge."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceMetrics,
    merge_snapshots,
)
from repro.sim.tracing import TraceBus, TraceRecord


def rec(time, topic, **payload):
    return TraceRecord(time=time, topic=topic, payload=payload)


# -- primitives ---------------------------------------------------------------------


def test_counter_increments_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.snapshot() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_high_water_mark():
    g = Gauge()
    g.add(3)
    g.add(4)
    g.add(-5)
    assert g.snapshot() == {"value": 2.0, "max": 7.0}


def test_histogram_buckets_and_mean():
    h = Histogram(buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.counts == [1, 1, 1, 1]  # one per bucket incl. +inf overflow
    assert h.mean == pytest.approx((0.005 + 0.05 + 0.5 + 5.0) / 4)
    # Exact bucket edge lands in that bucket (upper bounds are inclusive).
    h.observe(0.1)
    assert h.counts[1] == 2


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 0.1))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_registry_keys_are_deterministic_and_labelled():
    reg = MetricsRegistry()
    reg.counter("disk.submitted", device="h0.sda").inc()
    reg.counter("fs.ops", op="read", vm="h0v1").inc()
    # Same metric through a second get-or-create call.
    reg.counter("disk.submitted", device="h0.sda").inc()
    snap = reg.snapshot()
    assert snap["counters"] == {
        "disk.submitted{device=h0.sda}": 2.0,
        "fs.ops{op=read,vm=h0v1}": 1.0,
    }
    # Label order in the call never changes the key.
    reg.counter("fs.ops", vm="h0v1", op="read").inc()
    assert reg.snapshot()["counters"]["fs.ops{op=read,vm=h0v1}"] == 2.0


def test_merge_snapshots_sums_counters_and_maxes_gauges():
    a = MetricsRegistry()
    a.counter("disk.submitted", device="d").inc(3)
    a.gauge("disk.queue_depth", device="d").add(5)
    a.histogram("disk.latency", device="d").observe(0.01)
    b = MetricsRegistry()
    b.counter("disk.submitted", device="d").inc(4)
    b.gauge("disk.queue_depth", device="d").add(2)
    b.histogram("disk.latency", device="d").observe(0.03)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["disk.submitted{device=d}"] == 7.0
    assert merged["gauges"]["disk.queue_depth{device=d}"]["max"] == 5.0
    hist = merged["histograms"]["disk.latency{device=d}"]
    assert hist["count"] == 2
    assert hist["mean"] == pytest.approx(0.02)


# -- the trace-topic bridge ----------------------------------------------------------


def test_trace_metrics_disk_lifecycle():
    tm = TraceMetrics()
    tm.replay([
        rec(0.0, "disk.submit", device="d", rid=1, op="read"),
        rec(0.0, "disk.submit", device="d", rid=2, op="read"),
        rec(0.5, "disk.complete", device="d", rid=1, merged_rids=[2],
            nbytes=4096),
    ])
    c = tm.registry.snapshot()
    assert c["counters"]["disk.submitted{device=d}"] == 2.0
    assert c["counters"]["disk.completed{device=d}"] == 2.0
    assert c["counters"]["disk.merged{device=d}"] == 1.0
    assert c["counters"]["disk.bytes{device=d}"] == 4096.0
    depth = c["gauges"]["disk.queue_depth{device=d}"]
    assert depth == {"value": 0.0, "max": 2.0}
    hist = c["histograms"]["disk.latency{device=d}"]
    assert hist["count"] == 2  # primary + merged rid both observed
    assert hist["mean"] == pytest.approx(0.5)


def test_trace_metrics_job_phases_and_faults():
    tm = TraceMetrics()
    tm.replay([
        rec(0.0, "job.start", name="sort"),
        rec(1.0, "job.map_finished", task_id=0, done=1, total=2),
        rec(2.0, "job.map_finished", task_id=1, done=2, total=2),
        rec(2.0, "job.maps_done"),
        rec(3.0, "job.shuffle_done"),
        rec(4.0, "job.reduce_finished", reducer=0),
        rec(5.0, "job.done", name="sort"),
        rec(1.5, "fault.vm_pause", vm="h0v0", duration=0.5),
        rec(1.6, "task.retry", kind="map"),
    ])
    snap = tm.registry.snapshot()
    assert snap["counters"]["job.maps_finished"] == 2.0
    assert snap["gauges"]["job.map_progress"]["value"] == 1.0
    assert snap["gauges"]["job.maps_done_time"]["value"] == 2.0
    assert snap["gauges"]["job.shuffle_done_time"]["value"] == 3.0
    assert snap["gauges"]["job.end_time"]["value"] == 5.0
    assert snap["counters"]["faults{type=vm_pause}"] == 1.0
    assert snap["counters"]["task.retries{kind=map}"] == 1.0


def test_trace_metrics_switch_and_service_accounting():
    tm = TraceMetrics()
    tm.replay([
        rec(1.0, "disk.switched", device="d", scheduler="NOOP", stall=0.25),
        rec(2.0, "disk.service", device="d", rid=1, op="read",
            service=0.02, seek=0.008, rotation=0.004, transfer=0.008),
    ])
    c = tm.registry.snapshot()["counters"]
    assert c["sched.switches{device=d}"] == 1.0
    assert c["sched.switch_stall_seconds{device=d}"] == 0.25
    assert c["sched.switch_stall_seconds_total"] == 0.25
    assert c["disk.busy_seconds{device=d}"] == pytest.approx(0.02)
    assert c["disk.seek_seconds{device=d}"] == pytest.approx(0.008)


def test_trace_metrics_attach_detach_live_bus():
    bus = TraceBus()
    tm = TraceMetrics()
    tm.attach(bus)
    bus.publish(0.0, "disk.submit", device="d", rid=1)
    tm.detach(bus)
    bus.publish(1.0, "disk.submit", device="d", rid=2)
    snap = tm.registry.snapshot()
    assert snap["counters"]["disk.submitted{device=d}"] == 1.0
