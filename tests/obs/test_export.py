"""Trace export: JSONL round-trip determinism and Chrome trace shape."""

import json

import pytest

from repro.obs.export import (
    JsonlTraceWriter,
    TopicFilter,
    decode_record,
    encode_record,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.tracing import TraceRecord


def rec(time, topic, **payload):
    return TraceRecord(time=time, topic=topic, payload=payload)


SAMPLE = [
    rec(0.0, "job.start", name="sort"),
    rec(0.0, "disk.submit", device="h0.sda", rid=1, op="read", lba=100,
        nsectors=8, process="h0v0"),
    rec(0.001, "disk.submit", device="h0.sda", rid=2, op="read", lba=108,
        nsectors=8, process="h0v0"),
    rec(0.02, "disk.complete", device="h0.sda", rid=1, merged_rids=[2],
        nbytes=8192),
    rec(0.5, "disk.switched", device="h0.sda", scheduler="NOOP", stall=0.1),
    rec(1.0, "job.maps_done"),
    rec(1.5, "job.shuffle_done"),
    rec(1.7, "fault.vm_pause", vm="h0v0", duration=0.2),
    rec(1.8, "fault.vm_crash", vm="h0v1"),
    rec(1.9, "task.retry", kind="map", task_id=3),
    rec(2.0, "job.done", name="sort"),
]


# -- topic filtering ----------------------------------------------------------------


def test_topic_filter_globs():
    f = TopicFilter(["disk.*", "job.done"])
    assert f.matches("disk.submit")
    assert f.matches("job.done")
    assert not f.matches("job.start")
    assert TopicFilter(["*"]).matches("anything")
    assert TopicFilter(None).matches("anything")


def test_writer_filters_and_caps(tmp_path):
    writer = JsonlTraceWriter(topics=["disk.*"], cap=2)
    writer.extend(SAMPLE)
    kept = writer.records
    # Only disk topics pass the filter; only the last 2 survive the cap.
    assert [r.topic for r in kept] == ["disk.complete", "disk.switched"]
    assert writer.dropped == 2
    assert writer.flush(tmp_path / "t.jsonl") == 2


def test_writer_rejects_nonpositive_cap():
    with pytest.raises(ValueError):
        JsonlTraceWriter(cap=0)


# -- JSONL round-trip (the determinism guard) ---------------------------------------


def test_encode_decode_roundtrip():
    for record in SAMPLE:
        assert decode_record(encode_record(record)) == record


def test_jsonl_reexport_is_byte_identical(tmp_path):
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    write_jsonl(SAMPLE, first)
    # Reload and re-export: the canonical encoder must reproduce the
    # file byte for byte.
    write_jsonl(load_jsonl(first), second)
    assert first.read_bytes() == second.read_bytes()
    assert len(load_jsonl(second)) == len(SAMPLE)


# -- Chrome trace-event export -------------------------------------------------------


def test_chrome_trace_schema():
    trace = to_chrome_trace(SAMPLE)
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert events, "expected events from the sample records"
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        assert event["ph"] in ("M", "X", "i")
        if event["ph"] != "M":
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_chrome_trace_maps_tracks_and_phases():
    trace = to_chrome_trace(SAMPLE)
    events = trace["traceEvents"]
    tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert tracks == {"job", "h0.sda"}
    x_names = {e["name"] for e in events if e["ph"] == "X"}
    # Phases, both rids of the merged completion, the elevator switch,
    # and the timed fault all become duration events.
    assert {"phase:map", "phase:shuffle", "phase:reduce",
            "read rid=1", "read rid=2", "elv→NOOP",
            "pause h0v0"} <= x_names
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert {"fault.vm_crash", "task.retry"} <= instants
    phase = next(e for e in events if e["name"] == "phase:map")
    assert phase["ts"] == 0.0
    assert phase["dur"] == pytest.approx(1.0 * 1e6)


def test_chrome_trace_file_is_valid_json(tmp_path):
    path = tmp_path / "trace.chrome.json"
    n = write_chrome_trace(SAMPLE, path)
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == n
