"""The trace-topic registry is the single source of truth."""

from repro.obs import topics
from repro.obs.metrics import TraceMetrics
from repro.sim.tracing import known_topics


def test_registry_is_deduplicated_and_nonempty():
    assert len(topics.TOPIC_NAMES) == len(topics.REGISTERED_TOPICS) >= 20
    assert all(spec.name and spec.doc for spec in topics.TOPICS)


def test_trace_metrics_subscribes_to_the_registry():
    assert TraceMetrics.TOPICS is topics.TOPIC_NAMES


def test_sim_layer_sees_the_same_registry_lazily():
    assert known_topics() == topics.REGISTERED_TOPICS


def test_is_registered():
    assert topics.is_registered("disk.complete")
    assert not topics.is_registered("disk.nope")


def test_matching_mirrors_trace_bus_glob_semantics():
    assert topics.matching("*") == topics.TOPIC_NAMES
    disk = topics.matching("disk.*")
    assert set(disk) == {"disk.submit", "disk.complete", "disk.service",
                         "disk.switched"}
    assert topics.matching("job.done") == ("job.done",)
    assert topics.matching("job.nope") == ()
    assert topics.matching("nope.*") == ()


def test_every_family_prefix_is_consistent():
    # Registry names are all "family.event" shaped — what record_topic
    # globs and the metrics bridge assume.
    for name in topics.TOPIC_NAMES:
        family, _, event = name.partition(".")
        assert family and event, name
