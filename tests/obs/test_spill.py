"""TraceSpiller: streamed output must equal the buffered path, byte for byte.

The cheap tests drive synthetic record streams (seeded, so three
distinct shapes) through every window size that matters — 1 (flush per
record), a window that divides the stream length, one that doesn't, and
one larger than the stream — and compare the file bytes against
:func:`repro.obs.export.write_jsonl` over the same records.  One
integration test pins the same equivalence on a real captured run (see
``tests/obs/test_capture.py`` for the execute_spec-level guards).
"""

import random

import pytest

from repro.obs.export import load_jsonl, write_jsonl
from repro.obs.spill import DEFAULT_WINDOW, TraceSpiller
from repro.sim.tracing import TraceRecord

TOPICS = ("disk.submit", "disk.complete", "fs.read", "job.start", "job.done")


def synthetic_records(seed, n=1000):
    rng = random.Random(seed)
    records = []
    t = 0.0
    for i in range(n):
        t += rng.random()
        topic = rng.choice(TOPICS)
        records.append(TraceRecord(time=t, topic=topic, payload={
            "rid": i, "device": f"h{rng.randrange(2)}.sda",
            "process": f"map{i}@h0v0", "nbytes": rng.randrange(1 << 20),
        }))
    return records


def spill(records, path, **kwargs):
    spiller = TraceSpiller(path, **kwargs)
    for record in records:
        spiller(record)
    return spiller


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("window", [1, 100, 333, 5000])
def test_spilled_bytes_equal_buffered_bytes(tmp_path, seed, window):
    records = synthetic_records(seed)
    buffered = tmp_path / "buffered.jsonl"
    streamed = tmp_path / "streamed.jsonl"
    write_jsonl(records, buffered)

    spiller = spill(records, streamed, window=window)
    assert spiller.buffered <= window
    n = spiller.close()
    assert n == len(records)
    assert streamed.read_bytes() == buffered.read_bytes()


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("cap", [1, 17, 999, 1000, 4096])
def test_cap_keeps_the_ring_tail_like_the_buffered_writer(tmp_path, seed, cap):
    records = synthetic_records(seed)
    buffered = tmp_path / "buffered.jsonl"
    streamed = tmp_path / "streamed.jsonl"
    write_jsonl(records, buffered, cap=cap)

    spiller = spill(records, streamed, cap=cap)
    assert spiller.buffered == min(cap, len(records))
    n = spiller.close()
    assert n == min(cap, len(records))
    assert spiller.dropped == max(0, len(records) - cap)
    assert streamed.read_bytes() == buffered.read_bytes()


def test_window_flushes_bound_memory(tmp_path):
    records = synthetic_records(0, n=250)
    spiller = TraceSpiller(tmp_path / "t.jsonl", window=100)
    for record in records:
        spiller(record)
        assert spiller.buffered < 100  # the window flushes *at* 100
    # 250 records at window 100: two mid-run flushes, 50 still open.
    assert spiller.flushes == 2
    assert spiller.spilled == 200
    assert spiller.buffered == 50
    spiller.close()
    assert spiller.spilled == 250


def test_topic_filter_applies_before_the_window(tmp_path):
    records = synthetic_records(0, n=200)
    kept = [r for r in records if r.topic.startswith("disk.")]
    buffered = tmp_path / "buffered.jsonl"
    streamed = tmp_path / "streamed.jsonl"
    write_jsonl(records, buffered, topics=("disk.*",))

    spiller = spill(records, streamed, window=7, topics=("disk.*",))
    assert spiller.close() == len(kept)
    assert streamed.read_bytes() == buffered.read_bytes()


def test_partial_file_until_close(tmp_path):
    path = tmp_path / "t.jsonl"
    spiller = spill(synthetic_records(0, n=50), path, window=10)
    assert not path.exists()
    assert path.with_name("t.jsonl.partial").exists()
    spiller.close()
    assert path.exists()
    assert not path.with_name("t.jsonl.partial").exists()
    assert len(load_jsonl(path)) == 50


def test_close_is_idempotent_and_add_after_close_raises(tmp_path):
    spiller = spill(synthetic_records(0, n=5), tmp_path / "t.jsonl")
    assert spiller.close() == 5
    assert spiller.close() == 5
    with pytest.raises(RuntimeError):
        spiller.add(TraceRecord(time=0.0, topic="job.start", payload={}))


def test_zero_records_still_writes_an_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    spiller = TraceSpiller(path)
    assert spiller.close() == 0
    assert path.exists()
    assert path.read_bytes() == b""


def test_abort_leaves_nothing_behind(tmp_path):
    path = tmp_path / "t.jsonl"
    spiller = spill(synthetic_records(0, n=50), path, window=10)
    spiller.abort()
    assert not path.exists()
    assert not path.with_name("t.jsonl.partial").exists()
    with pytest.raises(RuntimeError):
        spiller.add(TraceRecord(time=0.0, topic="job.start", payload={}))


def test_constructor_validates_window_and_cap(tmp_path):
    with pytest.raises(ValueError):
        TraceSpiller(tmp_path / "t.jsonl", window=0)
    with pytest.raises(ValueError):
        TraceSpiller(tmp_path / "t.jsonl", cap=0)


def test_default_window_is_sane():
    assert DEFAULT_WINDOW >= 1
