"""Per-run capture: env plumbing, artifacts, and the bit-identity guards.

The expensive tests here run the golden-digest spec (a small sort job)
once per concern; everything is ``jobs=1`` so capture state stays in
this process.
"""

import json

import pytest

from repro.obs import capture
from repro.obs.export import load_jsonl
from repro.runner import RunSpec
from repro.runner.kinds import execute_spec
from tests.integration.test_golden_digest import GOLDEN_DIGEST, digest, golden_config


@pytest.fixture
def clean_capture_env(monkeypatch):
    monkeypatch.delenv(capture.ENV_TRACE_OUT, raising=False)
    monkeypatch.delenv(capture.ENV_TRACE_TOPICS, raising=False)


def golden_spec():
    testbed, solution = golden_config()
    return RunSpec(kind="job", seed=0, config=(testbed, solution))


def test_config_from_env_roundtrip(clean_capture_env, tmp_path):
    assert capture.config_from_env() is None
    capture.enable(tmp_path, ("disk.*", "job.*"))
    try:
        cfg = capture.config_from_env()
        assert cfg.out_dir == str(tmp_path)
        assert cfg.topics == ("disk.*", "job.*")
    finally:
        capture.disable()
    assert capture.config_from_env() is None


def test_run_capture_scopes_current_bus(tmp_path):
    cfg = capture.CaptureConfig(out_dir=str(tmp_path))
    assert capture.current_bus() is None
    with capture.RunCapture(cfg) as cap:
        assert capture.current_bus() is cap.bus
    assert capture.current_bus() is None


def test_capture_writes_artifacts_and_keeps_payload_identical(
    clean_capture_env, tmp_path
):
    spec = golden_spec()
    plain = execute_spec(spec)

    capture.enable(tmp_path / "run1")
    try:
        traced = execute_spec(spec)
    finally:
        capture.disable()

    # Bit-identity: capture is a pure side channel, so the payload (and
    # therefore the golden digest and every cache key) is unchanged.
    assert digest(json.loads(json.dumps(traced, sort_keys=True))) == \
        digest(json.loads(json.dumps(plain, sort_keys=True)))
    assert digest(traced) == GOLDEN_DIGEST

    traces = sorted((tmp_path / "run1").glob("*.trace.jsonl"))
    metrics = sorted((tmp_path / "run1").glob("*.metrics.json"))
    assert len(traces) == 1 and len(metrics) == 1
    # Deterministic artifact naming: kind, seed, spec-key prefix.
    assert traces[0].name.startswith("job-seed0-")

    records = load_jsonl(traces[0])
    assert records, "captured trace must not be empty"
    topics = {r.topic for r in records}
    assert {"job.start", "job.done", "disk.submit", "disk.complete"} <= topics

    snapshot = json.loads(metrics[0].read_text())
    assert any(k.startswith("disk.submitted{") for k in snapshot["counters"])


def test_same_seed_runs_capture_byte_identical_traces(
    clean_capture_env, tmp_path
):
    paths = []
    for name in ("a", "b"):
        capture.enable(tmp_path / name)
        try:
            execute_spec(golden_spec())
        finally:
            capture.disable()
        [trace] = sorted((tmp_path / name).glob("*.trace.jsonl"))
        paths.append(trace)
    # The determinism guard: two same-seed runs export byte-identical
    # JSONL (same records, same canonical encoding, same file name).
    assert paths[0].name == paths[1].name
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_topic_filter_limits_captured_records(clean_capture_env, tmp_path):
    capture.enable(tmp_path, ("job.*",))
    try:
        execute_spec(golden_spec())
    finally:
        capture.disable()
    [trace] = sorted(tmp_path.glob("*.trace.jsonl"))
    topics = {r.topic for r in load_jsonl(trace)}
    assert topics
    assert all(t.startswith("job.") for t in topics)
