"""Unit tests for RNG streams and the trace bus."""

import pytest

from repro.sim import IntervalSampler, RngStreams, TraceBus


def test_same_name_same_stream_object():
    rngs = RngStreams(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_factories():
    a = RngStreams(42).stream("disk").random(5)
    b = RngStreams(42).stream("disk").random(5)
    assert list(a) == list(b)


def test_different_names_differ():
    rngs = RngStreams(42)
    a = rngs.stream("disk").random(5)
    b = rngs.stream("net").random(5)
    assert list(a) != list(b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("disk").random(5)
    b = RngStreams(2).stream("disk").random(5)
    assert list(a) != list(b)


def test_spawn_is_deterministic_and_independent():
    r1 = RngStreams(7).spawn("host0").stream("s").random(3)
    r2 = RngStreams(7).spawn("host0").stream("s").random(3)
    r3 = RngStreams(7).spawn("host1").stream("s").random(3)
    assert list(r1) == list(r2)
    assert list(r1) != list(r3)


def test_trace_subscribe_and_publish():
    bus = TraceBus()
    got = []
    bus.subscribe("x", lambda rec: got.append(rec))
    bus.publish(1.0, "x", a=1)
    bus.publish(2.0, "y", b=2)  # nobody listens → dropped
    assert len(got) == 1
    assert got[0].time == 1.0
    assert got[0].payload == {"a": 1}


def test_trace_record_topic_keeps_records():
    bus = TraceBus()
    bus.record_topic("x")
    bus.publish(1.0, "x", v=1)
    bus.publish(2.0, "x", v=2)
    recs = bus.recorded("x")
    assert [r.payload["v"] for r in recs] == [1, 2]


def test_trace_unrecorded_topic_not_kept():
    bus = TraceBus()
    bus.record_topic("x")
    bus.subscribe("y", lambda rec: None)
    bus.publish(1.0, "y", v=1)
    assert bus.recorded("y") == []


def test_trace_record_topic_starts_at_call_time():
    bus = TraceBus()
    bus.publish(1.0, "x", v=1)  # before record_topic → dropped
    bus.record_topic("x")
    bus.record_topic("x")  # idempotent
    bus.publish(2.0, "x", v=2)
    assert [r.payload["v"] for r in bus.recorded("x")] == [2]


def test_trace_unsubscribe_stops_delivery():
    bus = TraceBus()
    got = []
    cb = got.append
    bus.subscribe("x", cb)
    bus.publish(1.0, "x", v=1)
    bus.unsubscribe("x", cb)
    bus.publish(2.0, "x", v=2)
    assert [r.payload["v"] for r in got] == [1]
    with pytest.raises(KeyError):
        bus.unsubscribe("x", cb)  # already removed
    with pytest.raises(KeyError):
        bus.unsubscribe("never-subscribed", cb)


def test_trace_duplicate_subscribe_means_two_deliveries():
    bus = TraceBus()
    got = []
    cb = got.append
    bus.subscribe("x", cb)
    bus.subscribe("x", cb)
    bus.publish(1.0, "x", v=1)
    assert len(got) == 2
    # Each registration needs its own unsubscribe.
    bus.unsubscribe("x", cb)
    bus.publish(2.0, "x", v=2)
    assert len(got) == 3
    bus.unsubscribe("x", cb)
    bus.publish(3.0, "x", v=3)
    assert len(got) == 3


def test_trace_unsubscribe_during_publish_is_safe():
    # A callback that unsubscribes itself mid-publication must not
    # break delivery to the other subscribers of the same record
    # (previously: "list modified during iteration").
    bus = TraceBus()
    got = []

    def once(rec):
        got.append(("once", rec.payload["v"]))
        bus.unsubscribe("x", once)

    bus.subscribe("x", once)
    bus.subscribe("x", lambda rec: got.append(("steady", rec.payload["v"])))
    bus.publish(1.0, "x", v=1)
    bus.publish(2.0, "x", v=2)
    assert got == [("once", 1), ("steady", 1), ("steady", 2)]


def test_trace_subscribe_during_publish_does_not_see_inflight_record():
    bus = TraceBus()
    got = []

    def recruiter(rec):
        bus.subscribe("x", lambda r: got.append(r.payload["v"]))

    bus.subscribe("x", recruiter)
    bus.publish(1.0, "x", v=1)  # snapshot: the recruit misses this one
    bus.publish(2.0, "x", v=2)
    assert got == [2]


def test_trace_record_topic_wildcards():
    bus = TraceBus()
    bus.record_topic("disk.*")
    bus.publish(1.0, "disk.submit", rid=1)
    bus.publish(2.0, "disk.complete", rid=1)
    bus.publish(3.0, "job.start")  # not under the recorded family
    assert [r.topic for r in bus.records] == ["disk.submit", "disk.complete"]

    bus2 = TraceBus()
    bus2.record_topic("*")
    bus2.publish(1.0, "anything", v=1)
    bus2.publish(2.0, "else.entirely")
    assert len(bus2.records) == 2


def test_trace_recorded_uses_per_topic_index():
    bus = TraceBus()
    bus.record_topic("x")
    bus.record_topic("y")
    for i in range(5):
        bus.publish(float(i), "x", v=i)
    bus.publish(9.0, "y", v=99)
    assert [r.payload["v"] for r in bus.recorded("x")] == [0, 1, 2, 3, 4]
    assert [r.payload["v"] for r in bus.recorded("y")] == [99]
    # recorded() hands back a copy: mutating it must not corrupt the bus.
    view = bus.recorded("y")
    view.clear()
    assert len(bus.recorded("y")) == 1


def test_trace_clear_resets_records_keeps_subscriptions():
    bus = TraceBus()
    got = []
    bus.subscribe("x", got.append)
    bus.record_topic("x")
    bus.publish(1.0, "x", v=1)
    bus.clear()
    assert bus.records == []
    assert bus.recorded("x") == []
    # Subscriptions and recording configuration survive the clear.
    bus.publish(2.0, "x", v=2)
    assert [r.payload["v"] for r in bus.recorded("x")] == [2]
    assert [r.payload["v"] for r in got] == [1, 2]


def test_interval_sampler_bins():
    s = IntervalSampler(interval=1.0)
    s.add(0.1, 10)
    s.add(0.9, 5)
    s.add(1.5, 20)
    s.add(3.2, 1)
    assert s.series() == [15, 20, 0, 1]


def test_interval_sampler_rates():
    s = IntervalSampler(interval=2.0)
    s.add(0.5, 10)
    s.add(1.5, 10)
    # end=2.0 is an exact multiple of the interval: exactly one bin, no
    # spurious trailing bin (the old artifact diluted mean rates).
    assert s.rates(end=2.0) == [pytest.approx(10.0)]


def test_interval_sampler_empty():
    assert IntervalSampler().series() == []
    assert IntervalSampler().rates() == []


def test_interval_sampler_window():
    s = IntervalSampler(interval=1.0)
    for t in [0.5, 1.5, 2.5, 3.5]:
        s.add(t, 1)
    # 0.5 precedes the window and 3.5 follows it; the exact-multiple span
    # yields exactly (end - start) / interval bins.
    assert s.series(start=1.0, end=3.0) == [1, 1]


def test_interval_sampler_boundary_event_clamps_into_last_bin():
    # Regression: with end - start an exact multiple of interval, an
    # event at t == end used to land alone in a spurious final bin.
    s = IntervalSampler(interval=1.0)
    s.add(0.5, 2)
    s.add(1.5, 4)
    s.add(2.0, 6)  # exactly at the window edge
    assert s.series(end=2.0) == [2, 10]
    assert s.rates(end=2.0) == [pytest.approx(2.0), pytest.approx(10.0)]


def test_interval_sampler_fractional_span_keeps_partial_bin():
    s = IntervalSampler(interval=1.0)
    s.add(0.1, 1)
    s.add(2.2, 3)
    # span 2.5 -> 3 bins, the last covering the partial [2.0, 2.5] tail.
    assert s.series(end=2.5) == [1, 0, 3]
