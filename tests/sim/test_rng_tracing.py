"""Unit tests for RNG streams and the trace bus."""

import pytest

from repro.sim import IntervalSampler, RngStreams, TraceBus


def test_same_name_same_stream_object():
    rngs = RngStreams(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_factories():
    a = RngStreams(42).stream("disk").random(5)
    b = RngStreams(42).stream("disk").random(5)
    assert list(a) == list(b)


def test_different_names_differ():
    rngs = RngStreams(42)
    a = rngs.stream("disk").random(5)
    b = rngs.stream("net").random(5)
    assert list(a) != list(b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("disk").random(5)
    b = RngStreams(2).stream("disk").random(5)
    assert list(a) != list(b)


def test_spawn_is_deterministic_and_independent():
    r1 = RngStreams(7).spawn("host0").stream("s").random(3)
    r2 = RngStreams(7).spawn("host0").stream("s").random(3)
    r3 = RngStreams(7).spawn("host1").stream("s").random(3)
    assert list(r1) == list(r2)
    assert list(r1) != list(r3)


def test_trace_subscribe_and_publish():
    bus = TraceBus()
    got = []
    bus.subscribe("x", lambda rec: got.append(rec))
    bus.publish(1.0, "x", a=1)
    bus.publish(2.0, "y", b=2)  # nobody listens → dropped
    assert len(got) == 1
    assert got[0].time == 1.0
    assert got[0].payload == {"a": 1}


def test_trace_record_topic_keeps_records():
    bus = TraceBus()
    bus.record_topic("x")
    bus.publish(1.0, "x", v=1)
    bus.publish(2.0, "x", v=2)
    recs = bus.recorded("x")
    assert [r.payload["v"] for r in recs] == [1, 2]


def test_trace_unrecorded_topic_not_kept():
    bus = TraceBus()
    bus.record_topic("x")
    bus.subscribe("y", lambda rec: None)
    bus.publish(1.0, "y", v=1)
    assert bus.recorded("y") == []


def test_trace_record_topic_starts_at_call_time():
    bus = TraceBus()
    bus.publish(1.0, "x", v=1)  # before record_topic → dropped
    bus.record_topic("x")
    bus.record_topic("x")  # idempotent
    bus.publish(2.0, "x", v=2)
    assert [r.payload["v"] for r in bus.recorded("x")] == [2]


def test_trace_unsubscribe_stops_delivery():
    bus = TraceBus()
    got = []
    cb = got.append
    bus.subscribe("x", cb)
    bus.publish(1.0, "x", v=1)
    bus.unsubscribe("x", cb)
    bus.publish(2.0, "x", v=2)
    assert [r.payload["v"] for r in got] == [1]
    with pytest.raises(KeyError):
        bus.unsubscribe("x", cb)  # already removed
    with pytest.raises(KeyError):
        bus.unsubscribe("never-subscribed", cb)


def test_trace_duplicate_subscribe_means_two_deliveries():
    bus = TraceBus()
    got = []
    cb = got.append
    bus.subscribe("x", cb)
    bus.subscribe("x", cb)
    bus.publish(1.0, "x", v=1)
    assert len(got) == 2
    # Each registration needs its own unsubscribe.
    bus.unsubscribe("x", cb)
    bus.publish(2.0, "x", v=2)
    assert len(got) == 3
    bus.unsubscribe("x", cb)
    bus.publish(3.0, "x", v=3)
    assert len(got) == 3


def test_trace_unsubscribe_during_publish_is_safe():
    # A callback that unsubscribes itself mid-publication must not
    # break delivery to the other subscribers of the same record
    # (previously: "list modified during iteration").
    bus = TraceBus()
    got = []

    def once(rec):
        got.append(("once", rec.payload["v"]))
        bus.unsubscribe("x", once)

    bus.subscribe("x", once)
    bus.subscribe("x", lambda rec: got.append(("steady", rec.payload["v"])))
    bus.publish(1.0, "x", v=1)
    bus.publish(2.0, "x", v=2)
    assert got == [("once", 1), ("steady", 1), ("steady", 2)]


def test_trace_subscribe_during_publish_does_not_see_inflight_record():
    bus = TraceBus()
    got = []

    def recruiter(rec):
        bus.subscribe("x", lambda r: got.append(r.payload["v"]))

    bus.subscribe("x", recruiter)
    bus.publish(1.0, "x", v=1)  # snapshot: the recruit misses this one
    bus.publish(2.0, "x", v=2)
    assert got == [2]


def test_interval_sampler_bins():
    s = IntervalSampler(interval=1.0)
    s.add(0.1, 10)
    s.add(0.9, 5)
    s.add(1.5, 20)
    s.add(3.2, 1)
    assert s.series() == [15, 20, 0, 1]


def test_interval_sampler_rates():
    s = IntervalSampler(interval=2.0)
    s.add(0.5, 10)
    s.add(1.5, 10)
    # end=2.0 closes the [0,2) bin and opens a final empty one.
    assert s.rates(end=2.0) == [pytest.approx(10.0), 0.0]


def test_interval_sampler_empty():
    assert IntervalSampler().series() == []
    assert IntervalSampler().rates() == []


def test_interval_sampler_window():
    s = IntervalSampler(interval=1.0)
    for t in [0.5, 1.5, 2.5, 3.5]:
        s.add(t, 1)
    # 0.5 precedes the window and 3.5 follows it; 3.0 lands in a final
    # boundary bin that stays empty here.
    assert s.series(start=1.0, end=3.0) == [1, 1, 0]
