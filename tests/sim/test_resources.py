"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(env, res, name, hold):
        with res.request() as req:
            yield req
            grants.append((env.now, name, "in"))
            yield env.timeout(hold)
        grants.append((env.now, name, "out"))

    for i in range(3):
        env.process(user(env, res, i, 2))
    env.run()
    # first two enter at t=0, third must wait for a release at t=2
    assert (0.0, 0, "in") in grants and (0.0, 1, "in") in grants
    assert (2.0, 2, "in") in grants


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_without_hold_rejected():
    env = Environment()
    res = Resource(env)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1
    assert res.queue_len == 1
    res.release(r1)
    assert res.count == 1  # r2 promoted
    assert res.queue_len == 0
    res.release(r2)
    assert res.count == 0


def test_request_cancel_removes_from_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r2.cancel()
    res.release(r1)
    assert not r2.triggered
    assert res.count == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    g1, g2 = store.get(), store.get()
    env.run()
    assert g1.value == "a"
    assert g2.value == "b"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    result = []

    def getter(env, store):
        item = yield store.get()
        result.append((env.now, item))

    def putter(env, store):
        yield env.timeout(3)
        yield store.put("late")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert result == [(3.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env, store):
        for i in range(2):
            yield store.put(i)
            times.append(env.now)

    def consumer(env, store):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert times == [0.0, 5.0]


def test_store_filter_get():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    g = store.get(filter=lambda x: x % 2 == 1)
    env.run()
    assert g.value == 1
    assert 1 not in store.items


def test_store_filter_get_waits_for_match():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = []

    def getter(env, store):
        item = yield store.get(filter=lambda v: v == "y")
        got.append((env.now, item))

    def putter(env, store):
        yield env.timeout(2)
        yield store.put("y")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert got == [(2.0, "y")]
    assert store.items == ["x"]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2

def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
