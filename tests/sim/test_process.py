"""Unit tests for generator processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt, Process


def test_process_runs_and_returns():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
    assert env.now == pytest.approx(3)


def test_process_is_alive_until_finished():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        Process(env, lambda: None)


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise ValueError("inner failure")

    def waiter(env):
        try:
            yield env.process(failer(env))
        except ValueError as exc:
            return f"caught {exc}"

    w = env.process(waiter(env))
    env.run()
    assert w.value == "caught inner failure"


def test_unwaited_process_failure_raises_in_run():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(failer(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append(intr.cause)
            return "interrupted"

    def interrupter(env, target):
        yield env.timeout(1)
        target.interrupt("wake up")

    p = env.process(sleeper(env))
    env.process(interrupter(env, p))
    env.run(until=p)
    assert log == ["wake up"]
    assert p.value == "interrupted"
    assert env.now == pytest.approx(1)


def test_interrupt_then_continue_waiting():
    env = Environment()

    def sleeper(env):
        start = env.now
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        return env.now - start

    def interrupter(env, target):
        yield env.timeout(1)
        target.interrupt()

    p = env.process(sleeper(env))
    env.process(interrupter(env, p))
    env.run()
    assert p.value == pytest.approx(6)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yielding_non_event_raises_in_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()
    assert not p.ok


def test_process_exit_returns_early():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        Process.exit("early")
        yield env.timeout(100)  # pragma: no cover

    p = env.process(proc(env))
    env.run()
    assert p.value == "early"
    assert env.now == pytest.approx(1)


def test_waiting_on_already_processed_event_continues_immediately():
    env = Environment()
    t = env.timeout(1, "v")

    def proc(env):
        yield env.timeout(2)
        got = yield t  # already processed
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "v"
    assert env.now == pytest.approx(2)


def test_nested_processes():
    env = Environment()

    def child(env, n):
        yield env.timeout(n)
        return n * 2

    def parent(env):
        a = yield env.process(child(env, 1))
        b = yield env.process(child(env, 2))
        return a + b

    p = env.process(parent(env))
    env.run()
    assert p.value == 6
    assert env.now == pytest.approx(3)


def test_two_processes_interleave():
    env = Environment()
    log = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((env.now, name))

    env.process(ticker(env, "a", 1))
    env.process(ticker(env, "b", 1.5))
    env.run()
    # At t=3.0 both tick; b's timeout was scheduled first (at t=1.5,
    # vs a's at t=2.0) so it is processed first — insertion order breaks
    # timestamp ties deterministically.
    assert log == [
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        (3.0, "b"),
        (3.0, "a"),
        (4.5, "b"),
    ]
