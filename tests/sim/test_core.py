"""Unit tests for the Environment run loop."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_now_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(10.0).now == 10.0


def test_run_until_time():
    env = Environment()
    fired = []
    env.timeout(1).callbacks.append(lambda ev: fired.append(1))
    env.timeout(5).callbacks.append(lambda ev: fired.append(5))
    env.run(until=3)
    assert env.now == pytest.approx(3)
    assert fired == [1]
    env.run(until=10)
    assert fired == [1, 5]


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == pytest.approx(2)


def test_run_until_past_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_drains_queue_when_no_until():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.now == pytest.approx(2)


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == pytest.approx(2)


def test_run_until_never_triggering_event_raises():
    env = Environment()
    ev = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=ev)


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 7

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 7


def test_schedule_negative_delay_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(ValueError):
        env.schedule(ev, delay=-0.5)
