"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


def test_event_starts_pending():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_succeed_sets_value_and_processes():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 42
    assert not ev.processed
    env.run()
    assert ev.processed


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_raises_at_step():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_is_silent():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    env.run()  # must not raise
    assert not ev.ok


def test_timeout_fires_at_right_time():
    env = Environment()
    t = env.timeout(2.5, value="hi")
    env.run()
    assert env.now == pytest.approx(2.5)
    assert t.value == "hi"


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeouts_order_deterministically_at_same_time():
    env = Environment()
    order = []
    for i in range(5):
        t = env.timeout(1.0)
        t.callbacks.append(lambda ev, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_allof_waits_for_all():
    env = Environment()
    a, b = env.timeout(1, "a"), env.timeout(3, "b")
    cond = AllOf(env, [a, b])
    env.run(cond)
    assert env.now == pytest.approx(3)
    assert list(cond.value.values()) == ["a", "b"]


def test_anyof_fires_on_first():
    env = Environment()
    a, b = env.timeout(1, "a"), env.timeout(3, "b")
    cond = AnyOf(env, [a, b])
    env.run(cond)
    assert env.now == pytest.approx(1)
    assert cond.value == {a: "a"}


def test_condition_operators():
    env = Environment()
    a, b = env.timeout(1), env.timeout(2)
    both = a & b
    either = a | b
    env.run()
    assert both.triggered and either.triggered


def test_allof_with_already_processed_events():
    env = Environment()
    a = env.timeout(1, "a")
    env.run()
    b = env.timeout(1, "b")
    cond = AllOf(env, [a, b])
    env.run(cond)
    assert set(cond.value.values()) == {"a", "b"}


def test_allof_empty_triggers_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_condition_propagates_failure():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise RuntimeError("inner")

    p = env.process(failer(env))
    t = env.timeout(5)
    cond = AllOf(env, [p, t])
    with pytest.raises(RuntimeError, match="inner"):
        env.run(cond)


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    a = env1.timeout(1)
    b = Timeout(env2, 1)
    with pytest.raises(ValueError):
        AllOf(env1, [a, b])


def test_event_trigger_copies_outcome():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    dst.trigger(src)
    assert dst.value == "payload"
    env.run()
