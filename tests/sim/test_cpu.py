"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim import Environment, ProcessorSharingCPU


def test_single_job_runs_at_full_rate():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=2.0)
    job = cpu.execute(10.0)
    env.run(until=job)
    assert env.now == pytest.approx(5.0)


def test_two_equal_jobs_share_equally():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    j1 = cpu.execute(5.0)
    j2 = cpu.execute(5.0)
    env.run()
    # Each proceeds at rate 1/2 → both done at t=10.
    assert j1.processed and j2.processed
    assert env.now == pytest.approx(10.0)


def test_short_job_departure_speeds_up_long_job():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    short = cpu.execute(1.0)
    long = cpu.execute(3.0)
    env.run(until=short)
    assert env.now == pytest.approx(2.0)  # both at rate 1/2
    env.run(until=long)
    # long had 2 units left at t=2, then runs alone → done at t=4.
    assert env.now == pytest.approx(4.0)


def test_late_arrival_slows_running_job():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)

    def submit_later(env, cpu):
        yield env.timeout(1.0)
        job = cpu.execute(1.0)
        yield job
        return env.now

    first = cpu.execute(2.0)
    later = env.process(submit_later(env, cpu))
    env.run()
    # first runs alone [0,1): 1 unit done.  Then shared: each 0.5/s.
    # later finishes at t=3 (1 unit at 0.5/s), first also at t=3.
    assert later.value == pytest.approx(3.0)
    assert first.processed


def test_zero_work_completes_immediately():
    env = Environment()
    cpu = ProcessorSharingCPU(env)
    job = cpu.execute(0.0)
    assert job.triggered
    env.run()
    assert env.now == 0.0


def test_negative_work_rejected():
    env = Environment()
    cpu = ProcessorSharingCPU(env)
    with pytest.raises(ValueError):
        cpu.execute(-1.0)


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        ProcessorSharingCPU(env, capacity=0)


def test_load_tracking():
    env = Environment()
    cpu = ProcessorSharingCPU(env)
    cpu.execute(10.0)
    cpu.execute(10.0)
    assert cpu.load == 2
    env.run()
    assert cpu.load == 0


def test_completed_work_accounting():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=4.0)
    cpu.execute(3.0)
    cpu.execute(5.0)
    env.run()
    assert cpu.completed_work == pytest.approx(8.0)


def test_many_staggered_jobs_all_complete():
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    jobs = []

    def submitter(env, cpu, delay, work):
        yield env.timeout(delay)
        jobs.append(cpu.execute(work))

    for i in range(10):
        env.process(submitter(env, cpu, i * 0.3, 1.0 + i * 0.1))
    env.run()
    assert len(jobs) == 10
    assert all(j.processed for j in jobs)
    total = sum(1.0 + i * 0.1 for i in range(10))
    assert cpu.completed_work == pytest.approx(total)
    # Work conservation: the CPU is never idle between first arrival and
    # last completion, so the makespan equals the total work (mod float
    # accumulation error).
    assert env.now == pytest.approx(total)
