"""Edge cases of the simulation kernel the main suites don't hit."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    ProcessorSharingCPU,
    Resource,
    Store,
)


def test_interrupt_while_holding_resource_releases_cleanly():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            try:
                yield env.timeout(100)
            except Interrupt:
                return "released"

    def interrupter(env, p):
        yield env.timeout(1)
        p.interrupt()

    def second(env, res):
        with res.request() as req:
            yield req
            return env.now

    h = env.process(holder(env, res))
    env.process(interrupter(env, h))
    s = env.process(second(env, res))
    env.run(until=s)
    assert h.value == "released"
    assert s.value == pytest.approx(1.0)
    assert res.count == 0


def test_anyof_then_reuse_loser_event():
    """The losing branch of an AnyOf stays waitable afterwards."""
    env = Environment()

    def proc(env):
        fast = env.timeout(1, "fast")
        slow = env.timeout(5, "slow")
        first = yield AnyOf(env, [fast, slow])
        assert fast in first.keys() if hasattr(first, "keys") else True
        got = yield slow  # still a valid target
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "slow"
    assert env.now == pytest.approx(5.0)


def test_allof_value_preserves_event_identity():
    env = Environment()
    a, b = env.timeout(1, "a"), env.timeout(2, "b")
    cond = AllOf(env, [a, b])
    env.run(until=cond)
    assert cond.value[a] == "a"
    assert cond.value[b] == "b"


def test_nested_conditions():
    env = Environment()
    a, b, c = env.timeout(1), env.timeout(2), env.timeout(3)
    combo = AllOf(env, [AnyOf(env, [a, b]), c])
    env.run(until=combo)
    assert env.now == pytest.approx(3.0)


def test_cpu_interleaved_with_events():
    """PS-CPU jobs and plain timeouts interleave consistently."""
    env = Environment()
    cpu = ProcessorSharingCPU(env, capacity=1.0)
    log = []

    def worker(env, cpu, name, work):
        yield cpu.execute(work)
        log.append((round(env.now, 6), name))

    def ticker(env):
        for _ in range(4):
            yield env.timeout(1.0)
            log.append((round(env.now, 6), "tick"))

    env.process(worker(env, cpu, "w1", 1.0))
    env.process(worker(env, cpu, "w2", 2.0))
    env.process(ticker(env))
    env.run()
    # w1: shares until t=2 (1 unit done), w2 finishes its 2 units at t=3.
    assert (2.0, "w1") in log
    assert (3.0, "w2") in log
    assert log.count((1.0, "tick")) == 1


def test_store_many_waiters_fifo_fairness():
    env = Environment()
    store = Store(env)
    got = []

    def getter(env, store, name):
        item = yield store.get()
        got.append((name, item))

    for i in range(3):
        env.process(getter(env, store, i))

    def putter(env, store):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    env.process(putter(env, store))
    env.run()
    assert got == [(0, 0), (1, 1), (2, 2)]


def test_environment_run_until_float_and_event_mix():
    env = Environment()
    ev = env.timeout(4, "x")
    env.run(until=2.0)
    assert env.now == pytest.approx(2.0)
    value = env.run(until=ev)
    assert value == "x"
    assert env.now == pytest.approx(4.0)


def test_process_return_value_propagates_through_chain():
    env = Environment()

    def level3(env):
        yield env.timeout(1)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        return v * 2

    def level1(env):
        v = yield env.process(level2(env))
        return v + 1

    p = env.process(level1(env))
    env.run()
    assert p.value == 7
