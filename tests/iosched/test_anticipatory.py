"""Unit tests for the anticipatory elevator."""

import pytest

from repro.disk import BlockRequest, IoOp
from repro.iosched import AnticipatoryParams, AnticipatoryScheduler


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def make_sched(**overrides):
    return AnticipatoryScheduler(params=AnticipatoryParams(**overrides))


def complete(sched, request, now):
    """Simulate the device finishing a request."""
    sched.on_complete(request, now)


def test_anticipates_after_sync_read_completion():
    sched = make_sched(antic_expire=0.006)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    d = sched.next_request(0.0)
    assert d.request is r
    complete(sched, r, 0.01)
    # Another process's request is queued, but AS holds for process a.
    sched.add_request(req(900_000, pid="b"), 0.01)
    d = sched.next_request(0.01)
    assert d.request is None
    assert d.wait_until == pytest.approx(0.016)


def test_anticipation_pays_off_for_near_request():
    sched = make_sched(antic_expire=0.006)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)
    complete(sched, r, 0.01)
    sched.add_request(req(900_000, pid="b"), 0.01)
    assert sched.next_request(0.01).wait_until is not None
    # Process a returns within the window.
    mine = req(108, pid="a")
    sched.add_request(mine, 0.012)
    d = sched.next_request(0.012)
    assert d.request is mine
    assert sched.antic_hits == 1


def test_anticipation_times_out():
    sched = make_sched(antic_expire=0.006)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)
    complete(sched, r, 0.01)
    other = req(900_000, pid="b")
    sched.add_request(other, 0.01)
    assert sched.next_request(0.01).wait_until is not None
    # Past the window: dispatch the other process's request.
    d = sched.next_request(0.017)
    assert d.request is other
    assert sched.antic_timeouts == 1


def test_no_anticipation_after_async_write():
    sched = make_sched()
    w = req(100, op=IoOp.WRITE, pid="a", sync=False)
    sched.add_request(w, 0.0)
    sched.next_request(0.0)
    complete(sched, w, 0.01)
    other = req(900_000, pid="b")
    sched.add_request(other, 0.01)
    assert sched.next_request(0.01).request is other


def test_think_time_gating_disables_anticipation():
    sched = make_sched(antic_expire=0.006, max_think_time=0.006)
    # Train process "slow" with large think times: completion at t, next
    # arrival much later.
    for i in range(5):
        t = i * 1.0
        r = req(1000 + i * 8, pid="slow")
        sched.add_request(r, t + 0.5)  # 0.5 s after previous completion
        sched.next_request(t + 0.5)
        complete(sched, r, t + 0.51)
    other = req(900_000, pid="b")
    sched.add_request(other, 5.0)
    # "slow" just completed, but its think time history disqualifies it.
    d = sched.next_request(5.0)
    assert d.request is other


def test_expired_fifo_served_after_anticipation_window():
    """Kernel semantics: an expired FIFO does not abort the (bounded)
    anticipation hold, but once the window closes the starving request
    is served from the FIFO head."""
    sched = make_sched(antic_expire=0.006, read_expire=0.125)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)
    complete(sched, r, 0.01)
    other = req(900_000, pid="b")
    sched.add_request(other, 0.01)
    # During the hold, the disk stays idle even though b is queued.
    d = sched.next_request(0.012)
    assert d.request is None and d.wait_until == pytest.approx(0.016)
    # After the window (and b's FIFO deadline 0.135 has long expired),
    # b is dispatched.
    d = sched.next_request(0.2)
    assert d.request is other


def test_drain_clears_anticipation_state():
    sched = make_sched()
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)
    complete(sched, r, 0.01)
    sched.add_request(req(900_000, pid="b"), 0.01)
    drained = sched.drain()
    assert len(drained) == 1
    assert sched.next_request(0.011).idle


def test_prefers_nearest_request_of_anticipated_process():
    sched = make_sched()
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)  # head now at 108
    complete(sched, r, 0.01)
    near, far = req(200, pid="a"), req(5_000_000, pid="a")
    sched.add_request(far, 0.012)
    sched.add_request(near, 0.012)
    d = sched.next_request(0.012)
    assert d.request is near
