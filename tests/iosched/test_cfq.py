"""Unit tests for the CFQ elevator."""

import pytest

from repro.disk import BlockRequest, IoOp
from repro.iosched import CfqParams, CfqScheduler


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def make_sched(**overrides):
    return CfqScheduler(params=CfqParams(**overrides))


def test_single_process_served_in_lba_order():
    sched = make_sched()
    for lba in [300, 100, 200]:
        sched.add_request(req(lba, pid="a"), 0.0)
    out = [sched.next_request(0.0).request.lba for _ in range(3)]
    assert out == [100, 200, 300]


def test_slice_stays_with_one_process():
    sched = make_sched(slice_sync=1.0)
    for i in range(3):
        sched.add_request(req(100 + i * 100, pid="a"), 0.0)
        sched.add_request(req(90_000_000 + i * 100, pid="b"), 0.0)
    pids = [sched.next_request(0.0).request.process_id for _ in range(3)]
    # Within one slice, all dispatches belong to the slice owner.
    assert len(set(pids)) == 1


def test_slice_expiry_rotates_to_next_process():
    sched = make_sched(slice_sync=0.1, slice_idle=0.0)
    sched.add_request(req(100, pid="a"), 0.0)
    sched.add_request(req(90_000_000, pid="b"), 0.0)
    first = sched.next_request(0.0).request
    # Past the slice end, the other process takes over.
    second = sched.next_request(0.2).request
    assert first.process_id != second.process_id


def test_slice_idling_waits_for_owner():
    sched = make_sched(slice_sync=0.1, slice_idle=0.008)
    a1 = req(100, pid="a")
    sched.add_request(a1, 0.0)
    sched.add_request(req(90_000_000, pid="b"), 0.0)
    assert sched.next_request(0.0).request is a1
    # Owner's queue now empty but slice not over: CFQ idles instead of
    # seeking to b.
    d = sched.next_request(0.001)
    assert d.request is None
    assert d.wait_until == pytest.approx(0.009)
    # Owner returns within the idle window: served immediately.
    a2 = req(108, pid="a")
    sched.add_request(a2, 0.004)
    assert sched.next_request(0.004).request is a2


def test_idle_expiry_moves_on():
    sched = make_sched(slice_sync=0.1, slice_idle=0.008)
    sched.add_request(req(100, pid="a"), 0.0)
    b1 = req(90_000_000, pid="b")
    sched.add_request(b1, 0.0)
    sched.next_request(0.0)
    assert sched.next_request(0.001).wait_until is not None
    # Idle window passed without new work from a: b gets the disk.
    assert sched.next_request(0.010).request is b1


def test_async_served_when_no_sync_pending():
    sched = make_sched()
    w = req(100, op=IoOp.WRITE, pid="wb", sync=False)
    sched.add_request(w, 0.0)
    assert sched.next_request(0.0).request is w


def test_sync_preferred_over_async():
    sched = make_sched()
    sched.add_request(req(500, op=IoOp.WRITE, pid="wb", sync=False), 0.0)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    assert sched.next_request(0.0).request is r


def test_async_antistarvation_kicks_in():
    sched = make_sched(async_max_wait=0.3, slice_sync=10.0, slice_idle=0.0)
    w = req(900_000, op=IoOp.WRITE, pid="wb", sync=False)
    sched.add_request(w, 0.0)
    # A long stream of sync requests from one process.
    for i in range(8):
        sched.add_request(req(100 + i * 100, pid="a"), 0.0)
    got = sched.next_request(0.0).request
    assert got.sync
    # 0.4 s later the async request has starved long enough.
    got = sched.next_request(0.4).request
    assert got is w


def test_round_robin_is_fair_across_processes():
    sched = make_sched(slice_sync=0.1, slice_idle=0.0)
    # Three processes with plenty of queued work.
    for pid in ["a", "b", "c"]:
        base = {"a": 0, "b": 400_000_000, "c": 800_000_000}[pid]
        for i in range(10):
            sched.add_request(req(base + i * 100, pid=pid), 0.0)
    owners = []
    t = 0.0
    for _ in range(30):
        d = sched.next_request(t)
        owners.append(d.request.process_id)
        t += 0.05  # two dispatches per slice
    # Every process gets slices; no one starves.
    assert set(owners) == {"a", "b", "c"}
    counts = {pid: owners.count(pid) for pid in "abc"}
    assert max(counts.values()) - min(counts.values()) <= 4


def test_drain_returns_all_and_resets():
    sched = make_sched()
    sched.add_request(req(100, pid="a"), 0.0)
    sched.add_request(req(200, pid="b"), 0.0)
    sched.add_request(req(300, op=IoOp.WRITE, pid="wb", sync=False), 0.0)
    drained = sched.drain()
    assert len(drained) == 3
    assert sched.pending == 0
    assert sched.next_request(0.0).idle


def test_empty_idle():
    assert make_sched().next_request(0.0).idle


def test_sync_write_goes_to_process_queue():
    sched = make_sched()
    w = req(100, op=IoOp.WRITE, pid="a", sync=True)
    sched.add_request(w, 0.0)
    sched.add_request(req(90_000_000, op=IoOp.WRITE, pid="wb", sync=False), 0.0)
    # The sync write is served under a's slice, before async.
    assert sched.next_request(0.0).request is w
