"""Unit tests for the scheduler base: merging and the sorted list."""

import pytest

from repro.disk import BlockRequest, IoOp
from repro.iosched import NoopScheduler, SortedRequestList
from repro.iosched.base import DispatchDecision


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


# -- SortedRequestList ---------------------------------------------------------


def test_sorted_list_orders_by_lba():
    s = SortedRequestList()
    for lba in [50, 10, 30]:
        s.add(req(lba))
    assert [r.lba for r in s] == [10, 30, 50]


def test_sorted_list_duplicate_add_rejected():
    s = SortedRequestList()
    r = req(10)
    s.add(r)
    with pytest.raises(ValueError):
        s.add(r)


def test_sorted_list_remove():
    s = SortedRequestList()
    r1, r2 = req(10), req(20)
    s.add(r1)
    s.add(r2)
    s.remove(r1)
    assert list(s) == [r2]
    with pytest.raises(KeyError):
        s.remove(r1)


def test_first_at_or_after_with_wrap():
    s = SortedRequestList()
    for lba in [10, 30, 50]:
        s.add(req(lba))
    assert s.first_at_or_after(25).lba == 30
    assert s.first_at_or_after(30).lba == 30
    assert s.first_at_or_after(60).lba == 10  # wraps
    assert s.first_at_or_after(60, wrap=False) is None


def test_closest_to():
    s = SortedRequestList()
    for lba in [10, 30, 100]:
        s.add(req(lba))
    assert s.closest_to(35).lba == 30
    assert s.closest_to(70).lba == 100
    assert s.closest_to(0).lba == 10
    assert SortedRequestList().closest_to(5) is None


def test_reposition_after_front_merge():
    s = SortedRequestList()
    r = req(40)
    s.add(r)
    s.add(req(10))
    r.lba = 20  # simulate front merge
    s.reposition(r, 40)
    assert [x.lba for x in s] == [10, 20]


def test_same_lba_requests_both_kept():
    s = SortedRequestList()
    a, b = req(10), req(10)
    s.add(a)
    s.add(b)
    assert len(s) == 2
    s.remove(a)
    assert list(s) == [b]


# -- base merging (via noop) ------------------------------------------------------


def test_back_merge_into_queued_request():
    sched = NoopScheduler()
    a = req(0, 8)
    sched.add_request(a, 0.0)
    merged = sched.add_request(req(8, 8), 0.0)
    assert merged
    assert sched.pending == 1
    assert a.nsectors == 16
    assert sched.total_merged == 1


def test_front_merge_into_queued_request():
    sched = NoopScheduler()
    a = req(8, 8)
    sched.add_request(a, 0.0)
    merged = sched.add_request(req(0, 8), 0.0)
    assert merged
    assert a.lba == 0 and a.nsectors == 16


def test_chained_back_merges_update_hash():
    sched = NoopScheduler()
    a = req(0, 8)
    sched.add_request(a, 0.0)
    assert sched.add_request(req(8, 8), 0.0)
    assert sched.add_request(req(16, 8), 0.0)
    assert a.nsectors == 24
    assert sched.pending == 1


def test_merge_respects_max_sectors():
    sched = NoopScheduler(max_sectors=12)
    sched.add_request(req(0, 8), 0.0)
    assert not sched.add_request(req(8, 8), 0.0)
    assert sched.pending == 2


def test_no_merge_across_direction():
    sched = NoopScheduler()
    sched.add_request(req(0, 8, op=IoOp.READ), 0.0)
    assert not sched.add_request(req(8, 8, op=IoOp.WRITE), 0.0)


def test_dispatch_clears_merge_maps():
    sched = NoopScheduler()
    sched.add_request(req(0, 8), 0.0)
    d = sched.next_request(0.0)
    assert d.request is not None
    # A new adjacent request must not merge into the dispatched one.
    assert not sched.add_request(req(8, 8), 0.0)


def test_decision_idle_flag():
    assert DispatchDecision().idle
    assert not DispatchDecision(wait_until=1.0).idle
    assert not DispatchDecision(request=req(0)).idle


def test_drain_returns_everything_and_resets():
    sched = NoopScheduler()
    for lba in [0, 100, 200]:
        sched.add_request(req(lba), 0.0)
    drained = sched.drain()
    assert len(drained) == 3
    assert sched.pending == 0
    assert sched.next_request(0.0).idle


def test_invalid_max_sectors():
    with pytest.raises(ValueError):
        NoopScheduler(max_sectors=0)
