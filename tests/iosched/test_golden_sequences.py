"""Golden-sequence regression tests: exact dispatch orders.

Each test scripts a fixed arrival sequence and asserts the exact order
every scheduler dispatches it in.  These pin down the arbitration
semantics the experiments depend on; any change to a policy's ordering
shows up here first.
"""

from repro.disk import BlockRequest, IoOp
from repro.iosched import (
    AnticipatoryParams,
    AnticipatoryScheduler,
    CfqParams,
    CfqScheduler,
    DeadlineParams,
    DeadlineScheduler,
    NoopScheduler,
)


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def dispatch_all(sched, start=0.0, step=0.0):
    """Dispatch everything, advancing time past holds; returns lbas."""
    out = []
    t = start
    for _ in range(200):
        d = sched.next_request(t)
        if d.request is not None:
            out.append(d.request.lba)
            t += step
        elif d.wait_until is not None and d.wait_until > t:
            t = d.wait_until
        else:
            break
    return out


ARRIVALS = [  # (lba, op, pid)
    (500, IoOp.READ, "a"),
    (100, IoOp.READ, "b"),
    (900, IoOp.WRITE, "wb"),
    (300, IoOp.READ, "a"),
    (700, IoOp.WRITE, "wb"),
    (200, IoOp.READ, "b"),
]


def load(sched, t0=0.0):
    for i, (lba, op, pid) in enumerate(ARRIVALS):
        sched.add_request(req(lba, op=op, pid=pid), t0 + i * 0.001)


def test_noop_golden_fifo():
    sched = NoopScheduler()
    load(sched)
    assert dispatch_all(sched) == [500, 100, 900, 300, 700, 200]


def test_deadline_golden_reads_sorted_then_writes():
    sched = DeadlineScheduler(params=DeadlineParams(fifo_batch=16))
    load(sched)
    # Reads batch in ascending LBA from position 0; writes afterwards.
    assert dispatch_all(sched) == [100, 200, 300, 500, 700, 900]


def test_deadline_golden_write_batch_after_starvation():
    sched = DeadlineScheduler(
        params=DeadlineParams(fifo_batch=1, writes_starved=1)
    )
    load(sched)
    order = dispatch_all(sched)
    # batch1: read (elevator from 0 -> 100); batch2 would be read but
    # starved counter forces a write batch, etc.
    assert order[0] == 100
    assert order[1] in (700, 900)
    assert sorted(order) == [100, 200, 300, 500, 700, 900]


def test_cfq_golden_per_process_slices():
    sched = CfqScheduler(params=CfqParams(slice_sync=10.0, slice_idle=0.0))
    load(sched)
    order = dispatch_all(sched)
    # First sync process in round-robin order is "a" (first arrival);
    # its queue is served in elevator order from LBA 0 (300 then 500),
    # then b's (wrapping to 100, 200), then the shared async queue.
    assert order == [300, 500, 100, 200, 700, 900]


def test_cfq_golden_async_before_sync_when_starving():
    sched = CfqScheduler(params=CfqParams(async_max_wait=0.1))
    load(sched, t0=0.0)
    # At t=10 the async writes have starved far past async_max_wait.
    d = sched.next_request(10.0)
    assert d.request.op is IoOp.WRITE


def test_anticipatory_golden_sticks_with_process():
    sched = AnticipatoryScheduler(
        params=AnticipatoryParams(antic_expire=0.01, close_sectors=8)
    )
    load(sched)
    # Elevator starts at a's... first selection: read batch from LBA 0.
    first = sched.next_request(0.01)
    assert first.request.lba == 100  # ascending from 0
    sched.on_complete(first.request, 0.02)
    # b (pid of 100) has another read queued at 200: anticipation for b
    # finds it immediately, bypassing a's 300/500.
    second = sched.next_request(0.02)
    assert second.request.lba == 200
    assert second.request.process_id == "b"


def test_all_schedulers_complete_the_same_multiset():
    for factory in (NoopScheduler, DeadlineScheduler, AnticipatoryScheduler,
                    CfqScheduler):
        sched = factory()
        load(sched)
        assert sorted(dispatch_all(sched)) == [100, 200, 300, 500, 700, 900]
