"""Unit tests for the scheduler registry."""

import pytest

from repro.iosched import (
    ABBREVIATIONS,
    SCHEDULER_NAMES,
    SCHEDULERS,
    abbrev,
    make_scheduler,
    resolve_name,
    scheduler_factory,
)


def test_all_four_registered():
    assert set(SCHEDULERS) == {"noop", "deadline", "anticipatory", "cfq"}
    assert set(SCHEDULER_NAMES) == set(SCHEDULERS)


def test_resolve_aliases():
    assert resolve_name("AS") == "anticipatory"
    assert resolve_name("dl") == "deadline"
    assert resolve_name("NP") == "noop"
    assert resolve_name(" CFQ ") == "cfq"


def test_resolve_unknown_raises():
    with pytest.raises(KeyError):
        resolve_name("bfq")


def test_abbreviations_match_paper():
    assert abbrev("cfq") == "CFQ"
    assert abbrev("deadline") == "DL"
    assert abbrev("anticipatory") == "AS"
    assert abbrev("noop") == "NP"
    assert set(ABBREVIATIONS.values()) == {"CFQ", "DL", "AS", "NP"}


def test_make_scheduler_returns_right_class():
    for name, cls in SCHEDULERS.items():
        assert isinstance(make_scheduler(name), cls)


def test_factory_builds_fresh_instances():
    f = scheduler_factory("as")
    a, b = f(), f()
    assert a is not b
    assert a.name == "anticipatory"
