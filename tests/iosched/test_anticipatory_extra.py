"""Additional anticipatory-scheduler behaviours: close requests,
time-based batching, write pressure valve."""

import pytest

from repro.disk import BlockRequest, IoOp
from repro.iosched import AnticipatoryParams, AnticipatoryScheduler


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def make_sched(**overrides):
    return AnticipatoryScheduler(params=AnticipatoryParams(**overrides))


def test_close_request_cancels_anticipation():
    """A queued read right next to the head is served instead of waiting."""
    sched = make_sched(antic_expire=0.006, close_sectors=2048)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)  # head -> 108
    sched.on_complete(r, 0.01)
    near_other = req(300, pid="b")  # within close_sectors of the head
    sched.add_request(near_other, 0.01)
    d = sched.next_request(0.01)
    assert d.request is near_other  # no hold: serving it is ~free


def test_far_request_does_not_cancel_anticipation():
    sched = make_sched(antic_expire=0.006, close_sectors=2048)
    r = req(100, pid="a")
    sched.add_request(r, 0.0)
    sched.next_request(0.0)
    sched.on_complete(r, 0.01)
    sched.add_request(req(10_000_000, pid="b"), 0.01)
    assert sched.next_request(0.01).wait_until is not None


def test_read_batch_expiry_rotates_to_starving_reader():
    """After read_batch_expire of one process, the expired FIFO head of
    another process takes over (bounded unfairness)."""
    sched = make_sched(
        antic_expire=0.004, read_batch_expire=0.1, read_expire=0.05
    )
    t = 0.0
    # b queues a far read at t=0 and starves while a streams.
    b_req = req(50_000_000, pid="b")
    sched.add_request(b_req, t)
    served = []
    lba = 0
    # a issues sequential reads with tiny think time.
    for i in range(60):
        a_req = req(lba, 64, pid="a")
        sched.add_request(a_req, t)
        d = sched.next_request(t)
        assert d.request is not None
        served.append(d.request)
        t += 0.005  # ~5 ms service+think per read
        sched.on_complete(d.request, t)
        lba += 64
        if b_req in served:
            break
    assert b_req in served
    # But a got a meaningful run first (batching, not strict alternation).
    assert served.index(b_req) >= 5


def test_write_pressure_valve_bounds_async_wait():
    """An expired write FIFO forces a write batch despite active reads."""
    sched = make_sched(write_expire=0.25, read_batch_expire=10.0)
    w = req(9_000_000, op=IoOp.WRITE, pid="wb", sync=False)
    sched.add_request(w, 0.0)
    t = 0.0
    lba = 0
    served_write_at = None
    for i in range(100):
        r = req(lba, 64, pid="a")
        sched.add_request(r, t)
        d = sched.next_request(t)
        assert d.request is not None
        if d.request.op is IoOp.WRITE:
            served_write_at = t
            break
        t += 0.01
        sched.on_complete(d.request, t)
        lba += 64
    assert served_write_at is not None
    assert served_write_at <= 0.40  # ~write_expire plus one batch


def test_merged_arrival_counts_as_anticipation_hit():
    sched = make_sched(antic_expire=0.006)
    a1 = req(100, 8, pid="a")
    sched.add_request(a1, 0.0)
    sched.next_request(0.0)
    sched.on_complete(a1, 0.01)
    # Queue a's next read far from others, then a *merge* into it.
    nxt = req(200, 8, pid="a")
    sched.add_request(nxt, 0.011)
    assert sched.antic_hits == 1


def test_params_exposed_and_defaults_kernel_like():
    p = AnticipatoryParams()
    assert p.antic_expire == pytest.approx(0.006)
    assert p.read_batch_expire > p.write_batch_expire
    assert p.read_expire < p.write_expire
