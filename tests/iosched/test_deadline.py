"""Unit tests for the deadline elevator."""

import pytest

from repro.disk import BlockRequest, IoOp
from repro.iosched import DeadlineParams, DeadlineScheduler


def req(lba, n=8, op=IoOp.READ, pid="p", sync=None):
    return BlockRequest(lba, n, op, pid, sync=sync)


def drain_order(sched, now=0.0):
    order = []
    while True:
        d = sched.next_request(now)
        if d.request is None:
            break
        order.append(d.request)
    return order


def test_dispatches_in_lba_order_within_batch():
    sched = DeadlineScheduler()
    for lba in [300, 100, 200]:
        sched.add_request(req(lba), 0.0)
    assert [r.lba for r in drain_order(sched)] == [100, 200, 300]


def test_reads_preferred_over_writes():
    sched = DeadlineScheduler()
    sched.add_request(req(100, op=IoOp.WRITE), 0.0)
    sched.add_request(req(200, op=IoOp.READ), 0.0)
    first = sched.next_request(0.0).request
    assert first.op is IoOp.READ


def test_write_starvation_bounded():
    params = DeadlineParams(fifo_batch=1, writes_starved=2)
    sched = DeadlineScheduler(params=params)
    # Steady stream of reads with writes waiting.
    sched.add_request(req(1000, op=IoOp.WRITE), 0.0)
    ops = []
    for i in range(6):
        sched.add_request(req(i * 10, op=IoOp.READ), 0.0)
    for _ in range(4):
        r = sched.next_request(0.0).request
        ops.append(r.op)
    # After `writes_starved` read batches, the write must be served.
    assert IoOp.WRITE in ops


def test_expired_read_jumps_elevator():
    params = DeadlineParams(read_expire=0.5)
    sched = DeadlineScheduler(params=params)
    sched.add_request(req(1000), 0.0)  # old request far away
    sched.add_request(req(10), 0.9)  # newer, near start
    # Deadline of the first read (0.5) has expired at t=1.0; a new batch
    # starts at the FIFO head (the oldest request), not at LBA order.
    first = sched.next_request(1.0).request
    assert first.lba == 1000


def test_batch_continues_from_last_position():
    params = DeadlineParams(fifo_batch=16)
    sched = DeadlineScheduler(params=params)
    sched.add_request(req(100), 0.0)
    assert sched.next_request(0.0).request.lba == 100
    # New requests behind the head position: elevator continues upward.
    sched.add_request(req(50), 0.0)
    sched.add_request(req(150), 0.0)
    assert sched.next_request(0.0).request.lba == 150
    assert sched.next_request(0.0).request.lba == 50


def test_never_idles():
    """Deadline has no anticipation: it always dispatches if non-empty."""
    sched = DeadlineScheduler()
    sched.add_request(req(100), 0.0)
    d = sched.next_request(0.0)
    assert d.request is not None
    d2 = sched.next_request(0.0)
    assert d2.idle  # empty now, plain idle (no wait_until)


def test_empty_queue_idle():
    assert DeadlineScheduler().next_request(0.0).idle


def test_deadlines_assigned_by_direction():
    params = DeadlineParams(read_expire=0.5, write_expire=5.0)
    sched = DeadlineScheduler(params=params)
    r, w = req(0, op=IoOp.READ), req(100, op=IoOp.WRITE)
    sched.add_request(r, 10.0)
    sched.add_request(w, 10.0)
    assert r.deadline == pytest.approx(10.5)
    assert w.deadline == pytest.approx(15.0)


def test_front_merge_repositions_in_sorted_queue():
    sched = DeadlineScheduler()
    sched.add_request(req(100, 8), 0.0)
    sched.add_request(req(92, 8), 0.0)  # front merge (92..100 + 100..108)
    assert sched.pending == 1
    assert sched.next_request(0.0).request.lba == 92


def test_drain_returns_fifo_order():
    sched = DeadlineScheduler()
    a, b = req(500), req(100)
    sched.add_request(a, 0.0)
    sched.add_request(b, 1.0)
    drained = sched.drain()
    assert drained == [a, b]
    assert sched.pending == 0


def test_wrap_around_at_top_of_lba_space():
    sched = DeadlineScheduler(params=DeadlineParams(fifo_batch=2))
    sched.add_request(req(900), 0.0)
    assert sched.next_request(0.0).request.lba == 900
    # Batch exhausted; next batch wraps from position 908 to the lowest.
    sched.add_request(req(100), 0.0)
    sched.add_request(req(50), 0.0)
    nxt = sched.next_request(0.0).request
    assert nxt.lba == 50
