"""SweepRunner: determinism across execution paths, caching, stats."""

import json

import pytest

from repro.core.experiment import JobRunner
from repro.api import scaled_cluster, scaled_testbed
from repro.runner import (
    ResultCache,
    RunSpec,
    SweepJobRunner,
    SweepRunner,
    default_jobs,
    spec_key,
)
from repro.virt.pair import DEFAULT_PAIR, SchedulerPair
from repro.workloads.ddwrite import MB
from repro.workloads.profiles import SORT


def _dd_specs(n_pairs=3, seeds=(0, 1), nbytes=int(8 * MB)):
    cluster = scaled_cluster(0.02, hosts=1)
    pairs = [SchedulerPair.parse(s) for s in ("cc", "ad", "dd", "nc")][:n_pairs]
    return [
        RunSpec(kind="dd", seed=seed, config=(cluster, nbytes, pair, None, None))
        for pair in pairs
        for seed in seeds
    ]


def test_serial_parallel_and_cached_results_identical(tmp_path):
    specs = _dd_specs()
    with SweepRunner(jobs=1, cache_dir=tmp_path / "a") as serial:
        res_serial = serial.run_specs(specs)
    with SweepRunner(jobs=2, cache_dir=tmp_path / "b") as par:
        res_parallel = par.run_specs(specs)
    with SweepRunner(jobs=1, cache_dir=tmp_path / "a") as warm:
        res_cached = warm.run_specs(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
    assert res_serial == res_parallel == res_cached
    # Bit-identical, not merely approximately equal.
    assert json.dumps(res_serial, sort_keys=True) == json.dumps(
        res_parallel, sort_keys=True
    )


def test_duplicate_specs_in_one_batch_execute_once(tmp_path):
    spec = _dd_specs(n_pairs=1, seeds=(0,))[0]
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        results = sweep.run_specs([spec, spec, spec])
        assert sweep.stats.executed == 1
    assert results[0] == results[1] == results[2]


def test_memo_serves_repeats_within_a_runner(tmp_path):
    specs = _dd_specs(n_pairs=1)
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        first = sweep.run_specs(specs)
        second = sweep.run_specs(specs)
        assert first == second
        assert sweep.stats.executed == len(specs)
        assert sweep.stats.memo_hits == len(specs)


def test_spec_change_invalidates_cache(tmp_path):
    base = _dd_specs(n_pairs=1, seeds=(0,))[0]
    bigger = _dd_specs(n_pairs=1, seeds=(0,), nbytes=int(9 * MB))[0]
    assert spec_key(base) != spec_key(bigger)
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        sweep.run_spec(base)
        assert sweep.stats.executed == 1
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        sweep.run_spec(bigger)
        assert sweep.stats.executed == 1
        assert sweep.stats.cache_hits == 0


def test_corrupted_cache_entry_falls_back_to_execution(tmp_path):
    spec = _dd_specs(n_pairs=1, seeds=(0,))[0]
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        original = sweep.run_spec(spec)
    ResultCache(tmp_path).path_for(spec_key(spec)).write_text(
        "{truncated", encoding="utf-8"
    )
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        again = sweep.run_spec(spec)
        assert sweep.stats.executed == 1
        assert sweep.stats.cache_hits == 0
    assert again == original


def test_no_cache_skips_disk_but_keeps_memo(tmp_path):
    specs = _dd_specs(n_pairs=1, seeds=(0,))
    with SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=False) as sweep:
        sweep.run_specs(specs)
        sweep.run_specs(specs)
        assert sweep.stats.executed == 1
        assert sweep.stats.memo_hits == 1
        # Every uncached execution is counted as a bypass...
        assert sweep.stats.bypassed == 1
        assert "cache bypassed 1" in sweep.stats.summary()
        assert sweep.cache_stats() == {
            "hits": 0, "misses": 0, "bytes_read": 0, "bytes_written": 0,
            "bypassed": 1,
        }
        assert "bypassed 1" in sweep.profile_summary()
    assert list(tmp_path.rglob("*.json")) == []


def test_cached_runs_report_no_bypasses(tmp_path):
    specs = _dd_specs(n_pairs=1, seeds=(0,))
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        sweep.run_specs(specs)
        assert sweep.stats.bypassed == 0
        # ...and the summary keeps its stable prefix when none happen.
        assert "bypassed" not in sweep.stats.summary()
        stats = sweep.cache_stats()
        assert stats["misses"] == 1 and stats["bypassed"] == 0
        assert stats["bytes_written"] > 0
        assert "bypassed" not in sweep.profile_summary()


def test_progress_callback_fires_per_execution(tmp_path):
    seen = []
    specs = _dd_specs(n_pairs=2, seeds=(0,))
    with SweepRunner(
        jobs=1, cache_dir=tmp_path,
        progress=lambda spec, secs: seen.append((spec, secs)),
    ) as sweep:
        sweep.run_specs(specs)
        sweep.run_specs(specs)  # memo hits: no further callbacks
    assert len(seen) == len(specs)
    assert all(secs >= 0 for _, secs in seen)


def test_stats_snapshot_and_since(tmp_path):
    specs = _dd_specs(n_pairs=2, seeds=(0,))
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        before = sweep.stats.snapshot()
        sweep.run_specs(specs)
        delta = sweep.stats.since(before)
    assert delta.executed == len(specs)
    assert "simulations executed 2" in delta.summary()


def test_adapter_matches_direct_job_runner_exactly(tmp_path):
    config = scaled_testbed(SORT, scale=0.02, seeds=(0,))
    direct = JobRunner(config).run_uniform(DEFAULT_PAIR)
    with SweepRunner(jobs=1, cache_dir=tmp_path) as sweep:
        adapted = SweepJobRunner(config, sweep).run_uniform(DEFAULT_PAIR)
    assert adapted.mean_duration == direct.mean_duration
    assert adapted.mean_phases == direct.mean_phases
    assert [r.phases for r in adapted.results] == [
        r.phases for r in direct.results
    ]


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError):
        default_jobs()
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        default_jobs()
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def test_jobs_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        SweepRunner(jobs=0, cache_dir=tmp_path)
