"""On-disk result cache behaviour."""

from repro.runner import ResultCache

KEY = "ab" + "0" * 62


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    record = {"key": KEY, "result": {"elapsed": 1.25}}
    cache.put(KEY, record)
    assert cache.get(KEY) == record


def test_missing_entry_returns_none(tmp_path):
    assert ResultCache(tmp_path).get(KEY) is None


def test_corrupt_json_returns_none(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"key": KEY, "result": 1})
    cache.path_for(KEY).write_text("{not json", encoding="utf-8")
    assert cache.get(KEY) is None


def test_record_without_result_field_returns_none(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"key": KEY})
    assert cache.get(KEY) is None


def test_put_is_atomic_no_tmp_left_behind(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"key": KEY, "result": 1})
    leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
    assert leftovers == []


def test_entries_shard_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.path_for(KEY).parent.name == KEY[:2]
