"""Sweep telemetry: the runner's event stream and the progress renderer.

The runner-side tests drive a real ``SweepRunner`` (jobs=1, tiny specs)
and assert the event sequence; the renderer tests feed synthetic events
through a fake clock and capture the painted line.
"""

import io

import pytest

from repro.runner import RunSpec, SweepRunner
from repro.runner.kinds import register
from repro.runner.telemetry import (
    EVENT_KINDS,
    ProgressRenderer,
    SweepEvent,
    describe_spec,
)


@register("telemetry_echo")
def _echo(config, seed):
    return {"config": config, "seed": seed}


def spec(n, label=""):
    return RunSpec(kind="telemetry_echo", seed=n, config=n, label=label)


@pytest.fixture
def runner(tmp_path):
    events = []
    r = SweepRunner(jobs=1, cache_dir=tmp_path / "cache", events=events.append)
    with r:
        yield r, events


def kinds(events):
    return [e.kind for e in events]


def test_event_kinds_are_registered():
    assert set(EVENT_KINDS) == {
        "batch_started", "run_started", "run_finished",
        "cache_hit", "memo_hit", "batch_finished",
    }


def test_describe_spec_prefers_the_label():
    assert describe_spec(spec(3)) == "telemetry_echo seed=3"
    assert describe_spec(spec(3, label="nice")) == "nice"


def test_fresh_batch_emits_lifecycle_edges(runner):
    r, events = runner
    r.run_specs([spec(0), spec(1)])
    assert kinds(events) == [
        "batch_started", "run_started", "run_finished",
        "run_started", "run_finished", "batch_finished",
    ]
    started = [e for e in events if e.kind == "batch_started"]
    assert started[0].pending == 2
    finished = [e for e in events if e.kind == "run_finished"]
    assert [e.completed for e in finished] == [1, 2]
    assert [e.pending for e in finished] == [1, 0]
    assert all(e.key for e in finished)
    assert events[-1].completed == 2


def test_memo_and_cache_hits_emit_without_a_batch(runner, tmp_path):
    r, events = runner
    r.run_specs([spec(0)])
    events.clear()
    r.run_specs([spec(0)])  # memo
    assert kinds(events) == ["memo_hit"]

    events2 = []
    with SweepRunner(jobs=1, cache_dir=tmp_path / "cache",
                     events=events2.append) as r2:
        r2.run_specs([spec(0)])  # disk cache, fresh process memo
    assert kinds(events2) == ["cache_hit"]


def test_runner_without_events_callback_pays_nothing(tmp_path):
    with SweepRunner(jobs=1, cache_dir=tmp_path / "c") as r:
        assert r.events is None
        assert r.run_specs([spec(5)])[0]["seed"] == 5


# -- the renderer ---------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_renderer(jobs=1):
    stream = io.StringIO()
    clock = FakeClock()
    renderer = ProgressRenderer(jobs=jobs, stream=stream, clock=clock)
    renderer.min_interval = 0.0
    return renderer, stream, clock


def test_renderer_counts_and_formats():
    renderer, stream, clock = make_renderer()
    renderer(SweepEvent(kind="batch_started", pending=3))
    renderer(SweepEvent(kind="cache_hit", label="a"))
    clock.now = 1.0
    renderer(SweepEvent(kind="run_finished", label="b", seconds=2.0,
                        completed=1, pending=2))
    line = stream.getvalue().split("\r")[-1]
    assert "1/3 runs" in line
    assert "1 cache" in line
    assert "b" in line
    assert "ETA" in line


def test_renderer_eta_converges():
    renderer, _, _ = make_renderer(jobs=2)
    renderer(SweepEvent(kind="batch_started", pending=4))
    assert renderer.eta_seconds() is None  # no durations yet
    renderer(SweepEvent(kind="run_finished", seconds=10.0))
    renderer(SweepEvent(kind="run_finished", seconds=20.0))
    # 2 pending x mean 15s / 2 workers.
    assert renderer.eta_seconds() == pytest.approx(15.0)
    renderer(SweepEvent(kind="run_finished", seconds=15.0))
    renderer(SweepEvent(kind="run_finished", seconds=15.0))
    assert renderer.eta_seconds() == 0.0


def test_renderer_throttles_paints():
    renderer, stream, clock = make_renderer()
    renderer.min_interval = 0.1
    for _ in range(50):
        renderer(SweepEvent(kind="memo_hit"))  # clock never advances
    paints = stream.getvalue().count("\r")
    assert paints <= 1
    clock.now = 1.0
    renderer(SweepEvent(kind="memo_hit"))
    assert stream.getvalue().count("\r") == paints + 1


def test_renderer_close_finishes_the_line_idempotently():
    renderer, stream, _ = make_renderer()
    renderer(SweepEvent(kind="run_finished", seconds=1.0))
    renderer.close()
    value = stream.getvalue()
    assert value.endswith("\n")
    renderer.close()
    assert stream.getvalue() == value  # no second newline


def test_renderer_close_without_activity_writes_nothing():
    renderer, stream, _ = make_renderer()
    renderer.close()
    assert stream.getvalue() == ""


def test_progress_renderer_plugs_into_a_real_runner(tmp_path):
    stream = io.StringIO()
    renderer = ProgressRenderer(jobs=1, stream=stream)
    renderer.min_interval = 0.0
    with SweepRunner(jobs=1, cache_dir=tmp_path / "c",
                     events=renderer) as r:
        r.run_specs([spec(0), spec(1), spec(0)])
    renderer.close()
    out = stream.getvalue()
    assert "sweep: 2 runs" in out  # both fresh runs counted
    assert "0/2 runs" in out       # and the pending total was shown
    assert out.endswith("\n")
