"""RunSpec canonicalisation and cache-key stability."""

from dataclasses import dataclass

import pytest

from repro.api import scaled_testbed
from repro.runner import RunSpec, canonical, spec_key
from repro.workloads.profiles import SORT


def _spec(seed=0, scale=0.05, label=""):
    return RunSpec(
        kind="job",
        seed=seed,
        config=scaled_testbed(SORT, scale=scale, seeds=(seed,)),
        label=label,
    )


def test_key_is_stable_across_equal_specs():
    assert spec_key(_spec()) == spec_key(_spec())


def test_label_is_display_only():
    assert spec_key(_spec(label="a")) == spec_key(_spec(label="b"))


def test_seed_changes_key():
    assert spec_key(_spec(seed=0)) != spec_key(_spec(seed=1))


def test_config_field_changes_key():
    assert spec_key(_spec(scale=0.05)) != spec_key(_spec(scale=0.06))


def test_kind_changes_key():
    a = _spec()
    b = RunSpec(kind="chain", seed=a.seed, config=a.config, label=a.label)
    assert spec_key(a) != spec_key(b)


def test_version_changes_key():
    assert spec_key(_spec(), version="1.0.0") != spec_key(_spec(), version="9.9.9")


def test_canonical_handles_nested_dataclasses():
    @dataclass(frozen=True)
    class Inner:
        x: int

    @dataclass(frozen=True)
    class Outer:
        inner: Inner
        values: tuple

    out = canonical(Outer(Inner(1), (2, 3)))
    assert out == canonical(Outer(Inner(1), (2, 3)))
    assert out != canonical(Outer(Inner(2), (2, 3)))


def test_canonical_tags_dataclass_type():
    @dataclass(frozen=True)
    class A:
        x: int

    @dataclass(frozen=True)
    class B:
        x: int

    assert canonical(A(1)) != canonical(B(1))


def test_canonical_rejects_unserialisable():
    with pytest.raises(TypeError):
        canonical(object())
