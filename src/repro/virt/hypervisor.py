"""The physical host: Dom0 elevator, shared storage backend, resident VMs."""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from ..disk.backend import StorageParams, make_device
from ..disk.cachetier import CacheTier
from ..disk.geometry import DiskGeometry
from ..disk.model import DiskParameters
from ..iosched.base import IOScheduler
from ..iosched.registry import scheduler_factory
from ..sim.events import AllOf, Event
from .pair import SchedulerPair
from .vm import VM

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["PhysicalHost"]


class PhysicalHost:
    """One Xen host: a Dom0-level block device shared by its DomUs.

    The Dom0 elevator sees each VM as one process; guest disk images are
    spread across the address space so cross-VM arbitration costs real
    seeks (on spindles) or real channel contention (on flash).

    The device itself is resolved by name through the
    :mod:`repro.disk.backend` registry (``storage=`` + a
    :class:`~repro.disk.backend.StorageParams` bundle).  The historical
    ``geometry=``/``disk_params=`` assembly kwargs still work but are
    deprecated — they fold into the bundle with a
    :class:`DeprecationWarning`, like the ``repro.experiments.common``
    re-exports.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        vmm_scheduler_factory: Callable[[], IOScheduler],
        max_vms: int,
        storage: str = "hdd",
        storage_params: Optional[StorageParams] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional["TraceBus"] = None,
        switch_control_latency: float = 0.050,
        geometry: Optional[DiskGeometry] = None,
        disk_params: Optional[DiskParameters] = None,
    ):
        if max_vms <= 0:
            raise ValueError("max_vms must be positive")
        if geometry is not None or disk_params is not None:
            warnings.warn(
                "the geometry=/disk_params= kwargs of PhysicalHost are "
                "deprecated; pass storage_params=StorageParams(...) "
                "(repro.disk.backend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        params = storage_params or StorageParams()
        if geometry is not None:
            params = replace(params, geometry=geometry)
        if disk_params is not None:
            params = replace(params, disk_params=disk_params)
        self.env = env
        self.name = name
        self.max_vms = max_vms
        self.storage = storage
        self.storage_params = params
        self.geometry = params.geometry
        self.trace = trace
        self.disk = make_device(
            storage,
            env,
            params,
            rng,
            scheduler=vmm_scheduler_factory(),
            name=f"{name}.sda",
            trace=trace,
            switch_control_latency=switch_control_latency,
        )
        #: Optional host buffer-cache/write-buffer tier fronting the
        #: device; ``None`` keeps the direct request path bit-identical.
        self.cache_tier: Optional[CacheTier] = None
        if params.cache_tier.enabled:
            self.cache_tier = CacheTier(
                env, self.disk, params.cache_tier, name=f"{name}.bc"
            )
        self.vms: List[VM] = []
        #: Filled in by the network topology when attached.
        self.nic = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<PhysicalHost {self.name} vms={len(self.vms)}>"

    # -- VM management ---------------------------------------------------------
    def add_vm(
        self,
        vm_id: str,
        guest_scheduler_factory: Callable[[], IOScheduler],
        image_sectors: Optional[int] = None,
        **vm_kwargs,
    ) -> VM:
        """Create a VM; its image is placed in the host's next stripe.

        Stripes divide the platter evenly among ``max_vms`` images, so
        with 4 VMs on a 1 TB disk consecutive images sit ~250 GB apart —
        the cross-VM seek distance that makes the Dom0 elevator choice
        matter.  When a cache tier is configured the VM's ring targets
        the tier; misses and flushes still reach the real device.
        """
        index = len(self.vms)
        if index >= self.max_vms:
            raise RuntimeError(f"host {self.name} is full ({self.max_vms} VMs)")
        stripe = self.geometry.total_sectors // self.max_vms
        if image_sectors is None:
            image_sectors = stripe // 2
        if image_sectors > stripe:
            raise ValueError("image does not fit in its stripe")
        vm = VM(
            self.env,
            vm_id,
            backend_disk=self.cache_tier or self.disk,
            image_offset_sectors=index * stripe,
            image_sectors=image_sectors,
            guest_scheduler_factory=guest_scheduler_factory,
            trace=self.trace,
            **vm_kwargs,
        )
        vm.host_name = self.name
        self.vms.append(vm)
        return vm

    # -- control plane ------------------------------------------------------------
    def set_vmm_scheduler(self, factory: Callable[[], IOScheduler]) -> Event:
        """Hot-switch the Dom0 elevator."""
        return self.disk.switch_scheduler(factory)

    def set_pair(self, pair: SchedulerPair) -> Event:
        """Switch Dom0 and all guests to ``pair``; fires when all done.

        Switches run concurrently (the meta-scheduler daemon issues the
        sysfs writes to Dom0 and over the guest channels at once); each
        device still pays its own drain.
        """
        events = [self.set_vmm_scheduler(scheduler_factory(pair.vmm))]
        events.extend(
            vm.switch_scheduler(scheduler_factory(pair.vm)) for vm in self.vms
        )
        return AllOf(self.env, events)

    @property
    def current_pair(self) -> SchedulerPair:
        """The (Dom0, guest) pair currently installed.

        Guests normally share one scheduler; if a fine-grained plan has
        diversified them, the first VM's choice is reported.
        """
        vm_sched = self.vms[0].scheduler_name if self.vms else "cfq"
        return SchedulerPair(self.disk.scheduler.name, vm_sched)
