"""The physical host: Dom0 elevator, shared spindle, resident VMs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from ..disk.device import DiskDevice
from ..disk.geometry import DiskGeometry
from ..disk.model import DiskParameters, ServiceTimeModel
from ..iosched.base import IOScheduler
from ..iosched.registry import scheduler_factory
from ..sim.events import AllOf, Event
from ..sim.rng import fallback_rng
from .pair import SchedulerPair
from .vm import VM

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["PhysicalHost"]


class PhysicalHost:
    """One Xen host: a Dom0-level block device shared by its DomUs.

    The Dom0 elevator sees each VM as one process; guest disk images are
    spread across the platter so cross-VM arbitration costs real seeks.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        vmm_scheduler_factory: Callable[[], IOScheduler],
        max_vms: int,
        geometry: Optional[DiskGeometry] = None,
        disk_params: Optional[DiskParameters] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional["TraceBus"] = None,
        switch_control_latency: float = 0.050,
    ):
        if max_vms <= 0:
            raise ValueError("max_vms must be positive")
        self.env = env
        self.name = name
        self.max_vms = max_vms
        self.geometry = geometry or DiskGeometry()
        self.trace = trace
        model = ServiceTimeModel(
            geometry=self.geometry,
            params=disk_params or DiskParameters(),
            rng=rng or fallback_rng(),
        )
        self.disk = DiskDevice(
            env,
            vmm_scheduler_factory(),
            model,
            name=f"{name}.sda",
            trace=trace,
            switch_control_latency=switch_control_latency,
        )
        self.vms: List[VM] = []
        #: Filled in by the network topology when attached.
        self.nic = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<PhysicalHost {self.name} vms={len(self.vms)}>"

    # -- VM management ---------------------------------------------------------
    def add_vm(
        self,
        vm_id: str,
        guest_scheduler_factory: Callable[[], IOScheduler],
        image_sectors: Optional[int] = None,
        **vm_kwargs,
    ) -> VM:
        """Create a VM; its image is placed in the host's next stripe.

        Stripes divide the platter evenly among ``max_vms`` images, so
        with 4 VMs on a 1 TB disk consecutive images sit ~250 GB apart —
        the cross-VM seek distance that makes the Dom0 elevator choice
        matter.
        """
        index = len(self.vms)
        if index >= self.max_vms:
            raise RuntimeError(f"host {self.name} is full ({self.max_vms} VMs)")
        stripe = self.geometry.total_sectors // self.max_vms
        if image_sectors is None:
            image_sectors = stripe // 2
        if image_sectors > stripe:
            raise ValueError("image does not fit in its stripe")
        vm = VM(
            self.env,
            vm_id,
            backend_disk=self.disk,
            image_offset_sectors=index * stripe,
            image_sectors=image_sectors,
            guest_scheduler_factory=guest_scheduler_factory,
            trace=self.trace,
            **vm_kwargs,
        )
        vm.host_name = self.name
        self.vms.append(vm)
        return vm

    # -- control plane ------------------------------------------------------------
    def set_vmm_scheduler(self, factory: Callable[[], IOScheduler]) -> Event:
        """Hot-switch the Dom0 elevator."""
        return self.disk.switch_scheduler(factory)

    def set_pair(self, pair: SchedulerPair) -> Event:
        """Switch Dom0 and all guests to ``pair``; fires when all done.

        Switches run concurrently (the meta-scheduler daemon issues the
        sysfs writes to Dom0 and over the guest channels at once); each
        device still pays its own drain.
        """
        events = [self.set_vmm_scheduler(scheduler_factory(pair.vmm))]
        events.extend(
            vm.switch_scheduler(scheduler_factory(pair.vm)) for vm in self.vms
        )
        return AllOf(self.env, events)

    @property
    def current_pair(self) -> SchedulerPair:
        """The (Dom0, guest) pair currently installed.

        Guests normally share one scheduler; if a fine-grained plan has
        diversified them, the first VM's choice is reported.
        """
        vm_sched = self.vms[0].scheduler_name if self.vms else "cfq"
        return SchedulerPair(self.disk.scheduler.name, vm_sched)
