"""A minimal extent-based guest filesystem.

Maps files to runs of guest LBAs.  The allocator hands out mostly
contiguous extents with configurable fragmentation (a fragmented spill
area makes merge reads seekier, as on an aged ext3 volume).  This is
enough to give every byte the Hadoop tasks touch a stable disk address,
so reads of previously written data hit the same sectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..disk.request import SECTOR_SIZE
from ..sim.rng import fallback_rng

__all__ = ["Extent", "GuestFile", "GuestFilesystem"]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of guest sectors."""

    lba: int
    nsectors: int

    @property
    def end_lba(self) -> int:
        return self.lba + self.nsectors

    @property
    def nbytes(self) -> int:
        return self.nsectors * SECTOR_SIZE


@dataclass
class GuestFile:
    """A file as a list of extents plus a logical size."""

    name: str
    extents: List[Extent] = field(default_factory=list)
    size_bytes: int = 0

    @property
    def allocated_bytes(self) -> int:
        return sum(e.nbytes for e in self.extents)

    def ranges(self, offset: int, length: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(lba, nsectors)`` runs covering ``[offset, offset+length)``.

        Offsets are in bytes and rounded outward to sector boundaries.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if length == 0:
            return
        start_sector = offset // SECTOR_SIZE
        end_sector = -(-(offset + length) // SECTOR_SIZE)  # ceil div
        want = end_sector - start_sector
        skipped = 0
        for extent in self.extents:
            if want <= 0:
                return
            if skipped + extent.nsectors <= start_sector:
                skipped += extent.nsectors
                continue
            inner = max(0, start_sector - skipped)
            take = min(extent.nsectors - inner, want)
            yield (extent.lba + inner, take)
            want -= take
            start_sector += take
            skipped += extent.nsectors
        if want > 0:
            raise ValueError(
                f"read past end of {self.name!r}: missing {want} sectors"
            )


class GuestFilesystem:
    """Sequential extent allocator over a guest LBA range.

    ``fragmentation`` in [0, 1) makes the allocator split large
    allocations and scatter pieces within a window, modelling an aged
    filesystem; 0 gives perfectly contiguous files.
    """

    def __init__(
        self,
        total_sectors: int,
        fragmentation: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        reserved_sectors: int = 0,
    ):
        if total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if not 0 <= fragmentation < 1:
            raise ValueError("fragmentation must be in [0, 1)")
        self.total_sectors = total_sectors
        self.fragmentation = fragmentation
        self.rng = rng or fallback_rng()
        self._next_free = reserved_sectors
        self._files: Dict[str, GuestFile] = {}

    @property
    def used_sectors(self) -> int:
        return self._next_free

    @property
    def free_sectors(self) -> int:
        return self.total_sectors - self._next_free

    def lookup(self, name: str) -> Optional[GuestFile]:
        return self._files.get(name)

    def create(self, name: str, size_bytes: int) -> GuestFile:
        """Allocate a new file of ``size_bytes`` (sector-rounded)."""
        if name in self._files:
            raise FileExistsError(name)
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        nsectors = -(-size_bytes // SECTOR_SIZE)
        file = GuestFile(name=name, size_bytes=size_bytes)
        remaining = nsectors
        while remaining > 0:
            if self.fragmentation > 0 and remaining > 2048:
                # Split with probability = fragmentation; pieces ≥ 1 MB.
                if self.rng.random() < self.fragmentation:
                    piece = int(self.rng.integers(2048, remaining + 1))
                else:
                    piece = remaining
            else:
                piece = remaining
            extent = self._allocate(piece)
            file.extents.append(extent)
            remaining -= piece
        self._files[name] = file
        return file

    def create_or_replace(self, name: str, size_bytes: int) -> GuestFile:
        """Like :meth:`create`, but silently drops an old version.

        Old extents are leaked (no free list) — acceptable for job-length
        simulations on a 1 TB volume.
        """
        self._files.pop(name, None)
        return self.create(name, size_bytes)

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundError(name)
        del self._files[name]

    def _allocate(self, nsectors: int) -> Extent:
        if self._next_free + nsectors > self.total_sectors:
            raise OSError(
                f"guest filesystem full: need {nsectors}, "
                f"free {self.free_sectors}"
            )
        extent = Extent(self._next_free, nsectors)
        self._next_free += nsectors
        if self.fragmentation > 0:
            # Leave a small gap so consecutive files are not perfectly
            # adjacent (metadata, other writers).
            gap = int(self.rng.integers(0, 256))
            self._next_free = min(self.total_sectors, self._next_free + gap)
        return extent
