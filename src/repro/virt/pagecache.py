"""Guest page cache and writeback daemon.

The page cache is what turns application file I/O into the block-level
patterns the elevators arbitrate:

* **Reads** miss the cache and become *synchronous* requests issued one
  readahead window at a time — the reader blocks per request, which is
  what creates the deceptive-idleness dynamic anticipatory scheduling
  exploits.
* **Buffered writes** dirty cache chunks instantly; a writeback daemon
  later flushes them as *asynchronous* requests in large batches (the
  mixed sync/async workload the paper observes mid-job).
* **fsync / sync writes** flush immediately as synchronous writes.

Residency is tracked at chunk granularity with LRU eviction; evicting a
dirty chunk forces it out as an async write first.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

from ..disk.request import SECTOR_SIZE, BlockRequest, IoOp
from ..sim.events import AllOf, AnyOf, Event
from .fs import GuestFile
from .vdisk import VirtualBlockDevice

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment

__all__ = ["PageCache", "PageCacheParams"]


@dataclass(frozen=True)
class PageCacheParams:
    """Sizing and policy knobs (defaults ≈ a 1 GB RHEL5 guest)."""

    #: Total cache capacity in bytes (~60% of a 1 GB guest).
    capacity_bytes: int = 600 * 1024 * 1024
    #: Start background writeback beyond this many dirty bytes.
    dirty_background_bytes: int = 32 * 1024 * 1024
    #: Throttle writers beyond this many dirty bytes.
    dirty_limit_bytes: int = 128 * 1024 * 1024
    #: Cache/dirty tracking granularity.
    chunk_bytes: int = 1024 * 1024
    #: Largest read issued by readahead.
    read_request_bytes: int = 512 * 1024
    #: Largest write issued by the flusher.
    write_request_bytes: int = 512 * 1024
    #: Periodic flusher wakeup (pdflush's 5 s default).
    writeback_interval: float = 5.0
    #: Max flusher requests in flight before it throttles itself.  Small
    #: values pace the flusher against device completions, interleaving
    #: the VMs' writeback streams at the hypervisor like real pdflush
    #: (each unplug dispatches a few requests, then waits).
    writeback_inflight: int = 4

    def __post_init__(self) -> None:
        if min(
            self.capacity_bytes,
            self.dirty_background_bytes,
            self.dirty_limit_bytes,
            self.chunk_bytes,
            self.read_request_bytes,
            self.write_request_bytes,
        ) <= 0:
            raise ValueError("all sizes must be positive")
        if self.dirty_limit_bytes < self.dirty_background_bytes:
            raise ValueError("dirty_limit must be >= dirty_background")


class PageCache:
    """Per-VM page cache over one virtual block device."""

    def __init__(
        self,
        env: "Environment",
        vdisk: VirtualBlockDevice,
        params: Optional[PageCacheParams] = None,
        name: str = "pagecache",
    ):
        self.env = env
        self.vdisk = vdisk
        self.params = params or PageCacheParams()
        self.name = name
        #: (file_name, chunk_idx) -> dirty flag; OrderedDict as LRU.
        self._resident: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        #: Dirty chunks in dirtying order; maps key -> GuestFile.
        self._dirty: "OrderedDict[Tuple[str, int], GuestFile]" = OrderedDict()
        self._throttle_waiters: List[Event] = []
        self._wb_kick: Event = env.event()
        self._wb_inflight: Deque[Event] = deque()
        self._writeback_proc = env.process(self._writeback_daemon())
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.bytes_read_disk = 0
        self.bytes_written_disk = 0
        self.throttle_events = 0

    # -- sizing ------------------------------------------------------------------
    @property
    def _max_chunks(self) -> int:
        return max(1, self.params.capacity_bytes // self.params.chunk_bytes)

    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.params.chunk_bytes

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.params.chunk_bytes

    # -- public API: all methods are process generators ----------------------------
    def read(self, file: GuestFile, offset: int, length: int, pid: Any):
        """Read ``length`` bytes; blocks per missing readahead window."""
        self._check_range(file, offset, length)
        if length == 0:
            return
        chunk = self.params.chunk_bytes
        first = offset // chunk
        last = (offset + length - 1) // chunk
        run_start: Optional[int] = None
        for idx in range(first, last + 1):
            key = (file.name, idx)
            if key in self._resident:
                self.hits += 1
                self._resident.move_to_end(key)
                if run_start is not None:
                    yield from self._read_chunks(file, run_start, idx - 1, pid)
                    run_start = None
            else:
                self.misses += 1
                if run_start is None:
                    run_start = idx
        if run_start is not None:
            yield from self._read_chunks(file, run_start, last, pid)

    def write(self, file: GuestFile, offset: int, length: int, pid: Any,
              sync: bool = False):
        """Write ``length`` bytes (buffered unless ``sync``)."""
        self._check_range(file, offset, length)
        if length == 0:
            return
        chunk = self.params.chunk_bytes
        first = offset // chunk
        last = (offset + length - 1) // chunk

        if sync:
            events = []
            for idx in range(first, last + 1):
                self._insert(file, idx, dirty=False)
                events.extend(
                    self._submit_chunk_io(file, idx, IoOp.WRITE, pid, sync=True)
                )
            if events:
                yield AllOf(self.env, events)
            return

        for idx in range(first, last + 1):
            self._insert(file, idx, dirty=True)
        if self.dirty_bytes > self.params.dirty_background_bytes:
            self._kick_writeback()
        # Dirty throttling: the writer sleeps until the flusher catches up.
        while self.dirty_bytes > self.params.dirty_limit_bytes:
            self.throttle_events += 1
            self._kick_writeback()
            waiter = self.env.event()
            self._throttle_waiters.append(waiter)
            yield waiter

    def fsync(self, file: GuestFile, pid: Any):
        """Flush all of ``file``'s dirty chunks synchronously."""
        keys = [k for k in self._dirty if k[0] == file.name]
        events = []
        for key in keys:
            del self._dirty[key]
            if key in self._resident:
                self._resident[key] = False
            events.extend(
                self._submit_chunk_io(file, key[1], IoOp.WRITE, pid, sync=True)
            )
        self._wake_throttled()
        if events:
            yield AllOf(self.env, events)

    def drop(self, file: Optional[GuestFile] = None) -> None:
        """Drop clean cached chunks (of one file, or all); keeps dirty ones."""
        keys = [
            k
            for k, dirty in self._resident.items()
            if not dirty and (file is None or k[0] == file.name)
        ]
        for key in keys:
            del self._resident[key]

    # -- internals -----------------------------------------------------------------
    @staticmethod
    def _check_range(file: GuestFile, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        if offset + length > file.size_bytes:
            raise ValueError(
                f"I/O past EOF of {file.name!r}: "
                f"{offset + length} > {file.size_bytes}"
            )

    def _chunk_span(self, file: GuestFile, idx: int) -> Tuple[int, int]:
        chunk = self.params.chunk_bytes
        off = idx * chunk
        return off, min(chunk, file.size_bytes - off)

    def _read_chunks(self, file: GuestFile, first: int, last: int, pid: Any):
        """Issue sync reads for chunks [first, last]; block per window."""
        off, _ = self._chunk_span(file, first)
        end_off = self._chunk_span(file, last)[0] + self._chunk_span(file, last)[1]
        length = end_off - off
        window = self.params.read_request_bytes
        for lba, nsectors in file.ranges(off, length):
            pos = 0
            while pos < nsectors:
                take = min(nsectors - pos, window // SECTOR_SIZE)
                req = BlockRequest(lba + pos, take, IoOp.READ, pid, sync=True)
                done = self.vdisk.submit(req)
                self.bytes_read_disk += take * SECTOR_SIZE
                yield done
                pos += take
        for idx in range(first, last + 1):
            self._insert(file, idx, dirty=False)

    def _submit_chunk_io(self, file: GuestFile, idx: int, op: IoOp, pid: Any,
                         sync: bool) -> List[Event]:
        """Submit requests covering one chunk; returns completion events."""
        off, length = self._chunk_span(file, idx)
        if length <= 0:
            return []
        window = self.params.write_request_bytes if op is IoOp.WRITE else self.params.read_request_bytes
        window_sectors = window // SECTOR_SIZE
        events = []
        for lba, nsectors in file.ranges(off, length):
            pos = 0
            while pos < nsectors:
                take = min(nsectors - pos, window_sectors)
                req = BlockRequest(lba + pos, take, op, pid, sync=sync)
                events.append(self.vdisk.submit(req))
                if op is IoOp.WRITE:
                    self.bytes_written_disk += take * SECTOR_SIZE
                else:
                    self.bytes_read_disk += take * SECTOR_SIZE
                pos += take
        return events

    def _insert(self, file: GuestFile, idx: int, dirty: bool) -> None:
        key = (file.name, idx)
        was_dirty = self._resident.get(key, False)
        self._resident[key] = was_dirty or dirty
        self._resident.move_to_end(key)
        if dirty and key not in self._dirty:
            self._dirty[key] = file
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._resident) > self._max_chunks:
            key, dirty = next(iter(self._resident.items()))
            del self._resident[key]
            if dirty and key in self._dirty:
                # Force the dirty chunk out as background writeback.
                file = self._dirty.pop(key)
                self._flush_chunk_async(file, key[1])

    def _flush_chunk_async(self, file: GuestFile, idx: int) -> None:
        for done in self._submit_chunk_io(file, idx, IoOp.WRITE, self.name, sync=False):
            self._wb_inflight.append(done)

    def _kick_writeback(self) -> None:
        if not self._wb_kick.triggered:
            self._wb_kick.succeed()

    def _wake_throttled(self) -> None:
        if self.dirty_bytes <= self.params.dirty_limit_bytes:
            waiters, self._throttle_waiters = self._throttle_waiters, []
            for waiter in waiters:
                waiter.succeed()

    def _writeback_daemon(self):
        env = self.env
        while True:
            self._wb_kick = env.event()
            if self._dirty:
                # Periodic flush while dirty data exists; pure event-wait
                # otherwise so an idle simulation can run to completion.
                timer = env.timeout(self.params.writeback_interval)
                yield AnyOf(env, [self._wb_kick, timer])
                periodic = timer.processed and not self._wb_kick.triggered
            else:
                yield self._wb_kick
                periodic = False
            # A kick (threshold crossing) flushes down to the hysteresis
            # target; the periodic wakeup writes out everything that has
            # aged (kupdate semantics — our chunks are all ≥interval old).
            target = 0 if periodic else self.params.dirty_background_bytes // 2
            while self.dirty_bytes > target and self._dirty:
                key, file = next(iter(self._dirty.items()))
                del self._dirty[key]
                if key in self._resident:
                    self._resident[key] = False
                self._flush_chunk_async(file, key[1])
                self._wake_throttled()
                # Self-throttle: bound flusher requests in flight.
                while len(self._wb_inflight) > self.params.writeback_inflight:
                    done = self._wb_inflight.popleft()
                    if not done.processed:
                        yield done
            # Reap finished completions without blocking.
            while self._wb_inflight and self._wb_inflight[0].processed:
                self._wb_inflight.popleft()
            self._wake_throttled()

    def flush_all(self, pid: Any = "flush"):
        """Flush every dirty chunk (async) and wait for completion."""
        events: List[Event] = []
        while self._dirty:
            key, file = next(iter(self._dirty.items()))
            del self._dirty[key]
            if key in self._resident:
                self._resident[key] = False
            events.extend(
                self._submit_chunk_io(file, key[1], IoOp.WRITE, pid, sync=False)
            )
        self._wake_throttled()
        if events:
            yield AllOf(self.env, events)
        # Also wait for any writeback already in flight.
        pending = [e for e in self._wb_inflight if not e.processed]
        if pending:
            yield AllOf(self.env, pending)
