"""Cluster builder: N physical hosts × M VMs with a shared configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..disk.backend import StorageParams
from ..disk.cachetier import CacheTierParams
from ..disk.geometry import DiskGeometry
from ..disk.model import DiskParameters
from ..disk.ssd import SsdParameters
from ..iosched.registry import scheduler_factory
from ..sim.events import AllOf, Event
from ..sim.rng import RngStreams
from .hypervisor import PhysicalHost
from .pagecache import PageCacheParams
from .pair import DEFAULT_PAIR, SchedulerPair
from .vm import VM

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["ClusterConfig", "VirtualCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stamp out a virtual cluster.

    Defaults mirror the paper's testbed: 4 hosts, 4 VMs per host,
    1 TB SATA disk per host, 1 GB / 1 VCPU guests, (CFQ, CFQ) pairs.
    """

    hosts: int = 4
    vms_per_host: int = 4
    initial_pair: SchedulerPair = DEFAULT_PAIR
    #: Storage-backend name for every host (``repro.disk.backend``
    #: registry: hdd/ssd/hybrid).  Carried as a plain string — it is
    #: resolved only at build time, never during spec canonicalisation,
    #: so the config stays a pure cache-key ingredient.
    storage: str = "hdd"
    #: Per-host overrides as ``(host_index, backend_name)`` pairs, for
    #: hand-built heterogeneous clusters beyond the ``hybrid`` parity
    #: rule.
    storage_overrides: Tuple[Tuple[int, str], ...] = ()
    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    disk_params: DiskParameters = field(default_factory=DiskParameters)
    ssd: SsdParameters = field(default_factory=SsdParameters)
    cache_tier: CacheTierParams = field(default_factory=CacheTierParams)
    pagecache: PageCacheParams = field(default_factory=PageCacheParams)
    #: Seconds of work per second: 1 VCPU pinned to one core.
    vm_cpu_capacity: float = 1.0
    fs_fragmentation: float = 0.02
    ring_slots: int = 32
    switch_control_latency: float = 0.050
    seed: int = 0

    def with_(self, **changes) -> "ClusterConfig":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)


class VirtualCluster:
    """The simulated testbed: hosts, VMs, and the pair control plane."""

    def __init__(
        self,
        env: "Environment",
        config: Optional[ClusterConfig] = None,
        trace: Optional["TraceBus"] = None,
    ):
        self.env = env
        self.config = config or ClusterConfig()
        self.trace = trace
        self.rng = RngStreams(self.config.seed)
        self.hosts: List[PhysicalHost] = []
        self._current_pair = self.config.initial_pair
        self._build()

    def _build(self) -> None:
        cfg = self.config
        overrides = dict(cfg.storage_overrides)
        for h in range(cfg.hosts):
            host = PhysicalHost(
                self.env,
                name=f"h{h}",
                vmm_scheduler_factory=scheduler_factory(cfg.initial_pair.vmm),
                max_vms=cfg.vms_per_host,
                storage=overrides.get(h, cfg.storage),
                storage_params=StorageParams(
                    geometry=cfg.geometry,
                    disk_params=cfg.disk_params,
                    ssd=cfg.ssd,
                    cache_tier=cfg.cache_tier,
                    host_index=h,
                ),
                rng=self.rng.stream(f"h{h}.disk"),
                trace=self.trace,
                switch_control_latency=cfg.switch_control_latency,
            )
            for v in range(cfg.vms_per_host):
                host.add_vm(
                    vm_id=f"h{h}v{v}",
                    guest_scheduler_factory=scheduler_factory(cfg.initial_pair.vm),
                    cpu_capacity=cfg.vm_cpu_capacity,
                    pagecache_params=cfg.pagecache,
                    fs_fragmentation=cfg.fs_fragmentation,
                    rng=self.rng.stream(f"h{h}v{v}.fs"),
                    ring_slots=cfg.ring_slots,
                )
            self.hosts.append(host)

    # -- views ------------------------------------------------------------------
    @property
    def vms(self) -> List[VM]:
        """All VMs across all hosts, in (host, slot) order."""
        return [vm for host in self.hosts for vm in host.vms]

    def vm(self, vm_id: str) -> VM:
        for candidate in self.vms:
            if candidate.vm_id == vm_id:
                return candidate
        raise KeyError(vm_id)

    def host_of(self, vm: VM) -> PhysicalHost:
        for host in self.hosts:
            if vm in host.vms:
                return host
        raise KeyError(vm.vm_id)

    @property
    def current_pair(self) -> SchedulerPair:
        return self._current_pair

    def storage_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-device backend counters, for devices that report any.

        Plain :class:`~repro.disk.device.DiskDevice` spindles report
        nothing, so all-HDD clusters return ``{}`` and run payloads
        stay bit-identical to the pre-registry code; SSDs contribute
        their FTL counters and cache tiers their hit ledgers.
        """
        out: Dict[str, Dict[str, object]] = {}
        for host in self.hosts:
            report = getattr(host.disk, "storage_stats", None)
            if callable(report):
                out[host.disk.name] = report()
            if host.cache_tier is not None:
                out[host.cache_tier.name] = host.cache_tier.storage_stats()
        return out

    # -- control plane --------------------------------------------------------------
    def set_pair(self, pair: SchedulerPair) -> Event:
        """Switch every host (Dom0 + guests) to ``pair``."""
        self._current_pair = pair
        events = [host.set_pair(pair) for host in self.hosts]
        done = AllOf(self.env, events)
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "cluster.set_pair", pair=str(pair)
            )
        return done

    def set_pair_process(self, pair: SchedulerPair):
        """Generator form of :meth:`set_pair` for use inside processes."""
        yield self.set_pair(pair)
