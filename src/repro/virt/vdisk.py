"""The guest's virtual block device (blkfront → blkback → Dom0 elevator).

A :class:`VirtualBlockDevice` is the DomU half of Xen's split block
driver.  It runs the *guest* elevator over the VM's own requests, then
forwards dispatched requests through a bounded ring to the host's
:class:`~repro.disk.device.DiskDevice`, translating guest LBAs to the
physical offsets of the VM's disk image.  Forwarded requests carry the
VM id as their process identity, so the Dom0 elevator arbitrates
*between VMs* exactly as the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..disk.device import DiskDevice, ElevatorQueue
from ..disk.request import BlockRequest
from ..disk.stats import DeviceStats
from ..iosched.base import IOScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["VirtualBlockDevice"]

#: Xen blkfront's classic one-page ring: 32 outstanding requests.
DEFAULT_RING_SLOTS = 32


class VirtualBlockDevice(ElevatorQueue):
    """Guest elevator plus the bounded ring to the backend device."""

    kind = "vdisk"

    def __init__(
        self,
        env: "Environment",
        scheduler: IOScheduler,
        backend: DiskDevice,
        vm_id: Any,
        lba_offset: int,
        capacity_sectors: int,
        ring_slots: int = DEFAULT_RING_SLOTS,
        name: Optional[str] = None,
        trace: Optional["TraceBus"] = None,
        stats: Optional[DeviceStats] = None,
        switch_control_latency: float = 0.050,
        quiesce_holds_arrivals: bool = False,
    ):
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        if lba_offset < 0 or capacity_sectors <= 0:
            raise ValueError("invalid vdisk geometry")
        self.backend = backend
        self.vm_id = vm_id
        self.lba_offset = lba_offset
        self.capacity_sectors = capacity_sectors
        self.ring_slots = ring_slots
        self.stats = stats or DeviceStats()
        self._in_ring = 0
        super().__init__(
            env,
            scheduler,
            name or f"xvda@{vm_id}",
            trace,
            switch_control_latency,
            quiesce_holds_arrivals,
        )

    # -- ElevatorQueue hooks ------------------------------------------------------
    def _outstanding(self) -> int:
        return self._in_ring

    @property
    def _can_dispatch(self) -> bool:
        return self._in_ring < self.ring_slots

    def _serve(self, request: BlockRequest):
        """Forward through the ring; do not wait (the ring pipelines)."""
        if request.end_lba > self.capacity_sectors:
            raise ValueError(
                f"request {request!r} beyond vdisk capacity "
                f"{self.capacity_sectors}"
            )
        self._in_ring += 1
        request.dispatch_time = self.env._now
        physical = BlockRequest(
            lba=request.lba + self.lba_offset,
            nsectors=request.nsectors,
            op=request.op,
            process_id=self.vm_id,
            sync=request.sync,
            origin=request,
        )
        physical.submit_time = request.submit_time
        done = self.backend.submit(physical)
        self.env.process(self._await_backend(request, done))
        return ()  # nothing to yield: dispatch continues immediately

    def _await_backend(self, request: BlockRequest, done):
        yield done
        self._in_ring -= 1
        request.complete_time = self.env._now
        self.stats.on_complete(request, 0.0, 0.0, 0.0, 0.0)
        self._completed(request)
