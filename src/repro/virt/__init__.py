"""Xen-like virtualization substrate: DomU devices over a Dom0 elevator."""

from .cluster import ClusterConfig, VirtualCluster
from .fs import Extent, GuestFile, GuestFilesystem
from .hypervisor import PhysicalHost
from .pagecache import PageCache, PageCacheParams
from .pair import DEFAULT_PAIR, SchedulerPair, all_pairs, pairs_excluding_noop_vmm
from .vdisk import DEFAULT_RING_SLOTS, VirtualBlockDevice
from .vm import VM

__all__ = [
    "ClusterConfig",
    "DEFAULT_PAIR",
    "DEFAULT_RING_SLOTS",
    "Extent",
    "GuestFile",
    "GuestFilesystem",
    "PageCache",
    "PageCacheParams",
    "PhysicalHost",
    "SchedulerPair",
    "VM",
    "VirtualBlockDevice",
    "VirtualCluster",
    "all_pairs",
    "pairs_excluding_noop_vmm",
]
