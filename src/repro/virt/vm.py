"""A guest virtual machine: vCPU, virtual disk, filesystem, page cache."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from ..disk.device import DiskDevice
from ..iosched.base import IOScheduler
from ..sim.cpu import CPUJob, ProcessorSharingCPU
from ..sim.events import Event
from ..sim.rng import fallback_rng
from .fs import GuestFile, GuestFilesystem
from .pagecache import PageCache, PageCacheParams
from .vdisk import DEFAULT_RING_SLOTS, VirtualBlockDevice

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["VM"]


class VM:
    """One DomU with a single vCPU and one virtual disk.

    Matches the paper's guest sizing: 1 VCPU pinned to a core, 1 GB of
    memory (reflected in the page-cache capacity), one xvda image on the
    host's SATA disk.
    """

    def __init__(
        self,
        env: "Environment",
        vm_id: str,
        backend_disk: DiskDevice,
        image_offset_sectors: int,
        image_sectors: int,
        guest_scheduler_factory: Callable[[], IOScheduler],
        cpu_capacity: float = 1.0,
        pagecache_params: Optional[PageCacheParams] = None,
        fs_fragmentation: float = 0.02,
        rng: Optional[np.random.Generator] = None,
        trace: Optional["TraceBus"] = None,
        ring_slots: int = DEFAULT_RING_SLOTS,
    ):
        self.env = env
        self.vm_id = vm_id
        self.host_name: Optional[str] = None  # set by PhysicalHost.add_vm
        self.trace = trace
        #: Fault-injection state: paused VMs make no progress; crashed
        #: VMs stop receiving work (see :meth:`crash`).
        self.paused = False
        self.crashed = False
        self.vdisk = VirtualBlockDevice(
            env,
            guest_scheduler_factory(),
            backend_disk,
            vm_id=vm_id,
            lba_offset=image_offset_sectors,
            capacity_sectors=image_sectors,
            trace=trace,
            ring_slots=ring_slots,
        )
        self.cpu = ProcessorSharingCPU(env, cpu_capacity, name=f"cpu@{vm_id}")
        self.fs = GuestFilesystem(
            image_sectors,
            fragmentation=fs_fragmentation,
            rng=rng or fallback_rng(),
        )
        self.cache = PageCache(
            env, self.vdisk, pagecache_params, name=f"pc@{vm_id}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<VM {self.vm_id} sched={self.vdisk.scheduler.name}>"

    # -- file I/O helpers (generators to run inside sim processes) ------------------
    def create_file(self, name: str, size_bytes: int) -> GuestFile:
        return self.fs.create_or_replace(name, size_bytes)

    def read_file(self, file: GuestFile, offset: int, length: int, pid: Any):
        """Generator: read through the page cache."""
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "fs.read", vm=self.vm_id, file=file.name,
                offset=offset, length=length, process=pid,
            )
        yield from self.cache.read(file, offset, length, pid)

    def write_file(self, file: GuestFile, offset: int, length: int, pid: Any,
                   sync: bool = False):
        """Generator: write through the page cache (buffered by default)."""
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "fs.write", vm=self.vm_id, file=file.name,
                offset=offset, length=length, process=pid,
            )
        yield from self.cache.write(file, offset, length, pid, sync=sync)

    def fsync(self, file: GuestFile, pid: Any):
        yield from self.cache.fsync(file, pid)

    # -- compute -----------------------------------------------------------------
    def compute(self, seconds_of_work: float, label: Any = None) -> CPUJob:
        """Submit CPU work; the event fires when the vCPU finishes it."""
        return self.cpu.execute(seconds_of_work, label)

    # -- fault injection -----------------------------------------------------------
    def pause(self) -> None:
        """Freeze the guest: vCPU stops and the vdisk dispatches nothing.

        I/O already forwarded to the backend drains (the host does not
        stop), matching a hypervisor pause.  Idempotent.
        """
        if self.paused:
            return
        self.paused = True
        self.cpu.pause()
        self.vdisk.pause()

    def resume(self) -> None:
        """Unfreeze a paused guest."""
        if not self.paused:
            return
        self.paused = False
        self.cpu.resume()
        self.vdisk.resume()

    def crash(self) -> None:
        """Kill the guest's TaskTracker: no new work lands here.

        Deliberately a *compute* crash, not a storage loss — running
        attempts are killed by the JobTracker and the VM receives no
        further tasks, but its disk image (and already-written map
        outputs) stays readable so reducers can still fetch from it and
        the simulation cannot deadlock on vanished data.
        """
        self.crashed = True

    # -- control plane ------------------------------------------------------------
    def switch_scheduler(self, factory: Callable[[], IOScheduler]) -> Event:
        """Hot-switch the guest elevator (``echo x > /sys/block/xvda/...``)."""
        return self.vdisk.switch_scheduler(factory)

    @property
    def scheduler_name(self) -> str:
        return self.vdisk.scheduler.name
