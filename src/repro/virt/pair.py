"""Scheduler pairs: (VMM-level elevator, VM-level elevator).

The paper's central configuration object.  A pair is written
``(Anticipatory, Deadline)`` meaning Dom0 runs anticipatory and every
DomU runs deadline; the 4×4 grid gives 16 pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..iosched.registry import SCHEDULER_NAMES, abbrev, resolve_name

__all__ = ["SchedulerPair", "all_pairs", "DEFAULT_PAIR"]


@dataclass(frozen=True, order=True)
class SchedulerPair:
    """An assignment of elevators to the two levels of the I/O stack."""

    #: Canonical scheduler name in the hypervisor (Dom0).
    vmm: str
    #: Canonical scheduler name inside every guest (DomU).
    vm: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "vmm", resolve_name(self.vmm))
        object.__setattr__(self, "vm", resolve_name(self.vm))

    def __str__(self) -> str:
        return f"({abbrev(self.vmm)}, {abbrev(self.vm)})"

    @property
    def label(self) -> str:
        """Compact two-letter label like the paper's Fig. 5 axes (``ad``)."""
        return self.vmm[0] + self.vm[0]

    @classmethod
    def parse(cls, text: str) -> "SchedulerPair":
        """Parse ``"(AS, DL)"``, ``"as,dl"``, ``"ad"``-style labels."""
        s = text.strip().strip("()")
        if "," in s:
            vmm, vm = (part.strip() for part in s.split(",", 1))
            return cls(vmm, vm)
        if len(s) == 2:
            by_initial = {name[0]: name for name in SCHEDULER_NAMES}
            try:
                return cls(by_initial[s[0].lower()], by_initial[s[1].lower()])
            except KeyError:
                raise ValueError(f"cannot parse scheduler pair {text!r}") from None
        raise ValueError(f"cannot parse scheduler pair {text!r}")

    def as_tuple(self) -> Tuple[str, str]:
        return (self.vmm, self.vm)


#: The stock configuration the paper calls "default": (CFQ, CFQ).
DEFAULT_PAIR = SchedulerPair("cfq", "cfq")


def all_pairs() -> List[SchedulerPair]:
    """All 16 pairs in the paper's canonical (Table I) order."""
    return [
        SchedulerPair(vmm, vm)
        for vm in SCHEDULER_NAMES
        for vmm in SCHEDULER_NAMES
    ]


def pairs_excluding_noop_vmm() -> List[SchedulerPair]:
    """The 12 pairs with a real elevator in Dom0 (paper's Fig. 2 inset)."""
    return [p for p in all_pairs() if p.vmm != "noop"]
