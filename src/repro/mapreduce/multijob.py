"""Multi-tenant control plane: N concurrent jobs over shared slots.

The single-job :class:`~repro.mapreduce.jobtracker.MapReduceJob` owns
its slot workers outright.  In a consolidated cluster the interesting
dynamics are *between* jobs: one tenant's map wave overlapping
another's shuffle tail, job-level schedulers arbitrating slot access,
and the winning elevator pair flipping with the cluster-wide phase mix.
:class:`MultiJobTracker` is a JobTracker-level multiplexer for exactly
that: it owns the per-VM map/reduce slot pools and admits tasks from
every live job through a pluggable job-level scheduler (FIFO,
fair-share, capacity, shortest-job-first), with an arrival stream
(:mod:`repro.workloads.arrivals`) feeding it jobs over simulated time.

Design notes:

* Each admitted job gets the same per-job machinery the single-job path
  builds — a :class:`~repro.mapreduce.jobtracker.JobContext`, a
  :class:`~repro.mapreduce.jobtracker.TaskPool`, a
  :class:`~repro.mapreduce.shuffle.ShuffleService`, its own HDFS
  input/output namespace and CPU-noise RNG stream — and runs the
  unmodified task generators.  One admitted job under FIFO therefore
  behaves exactly like ``MapReduceJob`` modulo scratch-file tags.
* Slot workers never busy-wait: a worker that finds no eligible task
  parks on a wake event that admission and task completion trigger.
* Reduce slots are claimable only once a job's slowstart gate
  (``reducers_may_start``) has opened, so shuffle overlap follows the
  same policy as the single-job tracker.
* The optional :class:`SwitchPlan` applies the paper's adaptive idea at
  cluster scope: while the majority of live jobs are in their map
  phase, run ``map_pair``; once the mix tips into shuffle/reduce
  tails, run ``tail_pair`` — with ``min_dwell`` hysteresis so a churny
  mix cannot thrash the elevators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..hdfs.datanode import DataNodeService
from ..hdfs.namenode import NameNode
from ..sim.events import AllOf, Event
from ..virt.cluster import ClusterConfig
from ..virt.pair import SchedulerPair
from .job import JobConfig
from .jobtracker import JobContext, TaskPool
from .map_task import MapTask, map_task_proc
from .reduce_task import ReduceTask, reduce_task_proc
from .shuffle import ShuffleService

if TYPE_CHECKING:  # pragma: no cover
    from ..net.topology import Topology
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus
    from ..virt.cluster import VirtualCluster
    from ..workloads.arrivals import ArrivalConfig, JobArrival

__all__ = [
    "JOB_SCHEDULERS",
    "JobScheduler",
    "LiveJob",
    "MultiJobConfig",
    "MultiJobResult",
    "MultiJobTracker",
    "SwitchPlan",
    "job_scheduler",
]


# -- job-level scheduling policies ----------------------------------------------------


class JobScheduler:
    """Orders live jobs by claim priority (highest priority first).

    Stateless by design: policies are pure functions of the live-job
    set, so adding one cannot perturb determinism.  Ties always fall
    back to ``(submit_time, job_id)`` — total and deterministic.
    """

    name = "?"

    def order(self, jobs: List["LiveJob"],
              tracker: "MultiJobTracker") -> List["LiveJob"]:
        raise NotImplementedError


class FifoScheduler(JobScheduler):
    """Hadoop's default: strict submission order."""

    name = "fifo"

    def order(self, jobs, tracker):
        return sorted(jobs, key=lambda j: (j.submit_time, j.job_id))


class FairScheduler(JobScheduler):
    """Fair-share: the job holding the fewest slots claims next."""

    name = "fair"

    def order(self, jobs, tracker):
        return sorted(
            jobs, key=lambda j: (j.running_tasks, j.submit_time, j.job_id)
        )


class CapacityScheduler(JobScheduler):
    """Per-tenant capacity: the most under-served *tenant* goes first.

    Tenants get equal shares; within a tenant, FIFO.  This is the
    coarse-grained YARN capacity idea without preemption.
    """

    name = "capacity"

    def order(self, jobs, tracker):
        usage: Dict[str, int] = {}
        for job in jobs:
            usage[job.tenant] = usage.get(job.tenant, 0) + job.running_tasks
        return sorted(
            jobs,
            key=lambda j: (usage[j.tenant], j.submit_time, j.job_id),
        )


class SjfScheduler(JobScheduler):
    """Shortest-job-first by total input bytes (size is known at submit)."""

    name = "sjf"

    def order(self, jobs, tracker):
        return sorted(
            jobs, key=lambda j: (j.input_bytes, j.submit_time, j.job_id)
        )


JOB_SCHEDULERS: Dict[str, type] = {
    cls.name: cls
    for cls in (FifoScheduler, FairScheduler, CapacityScheduler, SjfScheduler)
}


def job_scheduler(name: str) -> JobScheduler:
    """Instantiate a registered job-level scheduler by name."""
    try:
        return JOB_SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown job scheduler {name!r}; choose from "
            f"{sorted(JOB_SCHEDULERS)}"
        ) from None


# -- configuration --------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchPlan:
    """Cluster-scope phase-majority elevator switching.

    ``map_pair`` runs while most live jobs are still mapping,
    ``tail_pair`` once the mix is majority shuffle/reduce;
    ``min_dwell`` seconds must pass between switches (hysteresis
    against a churny job mix).
    """

    map_pair: SchedulerPair
    tail_pair: SchedulerPair
    min_dwell: float = 20.0

    def __post_init__(self) -> None:
        if self.min_dwell < 0:
            raise ValueError("min_dwell must be non-negative")


@dataclass(frozen=True)
class MultiJobConfig:
    """Everything one multi-job simulation needs (pure data).

    Composed of dataclasses/tuples/scalars only so it canonicalises
    into the sweep cache key; the ``multi_job`` run kind executes it.
    ``base_job`` is the template every arrival instantiates (the size
    class scales its ``bytes_per_vm``; input/output paths get per-job
    suffixes).
    """

    cluster: ClusterConfig
    base_job: JobConfig
    arrivals: "ArrivalConfig"
    scheduler: str = "fifo"
    map_slots_per_vm: int = 2
    reduce_slots_per_vm: int = 2
    switch_plan: Optional[SwitchPlan] = None

    def __post_init__(self) -> None:
        if self.scheduler not in JOB_SCHEDULERS:
            raise ValueError(
                f"unknown job scheduler {self.scheduler!r}; choose from "
                f"{sorted(JOB_SCHEDULERS)}"
            )
        if self.map_slots_per_vm < 1 or self.reduce_slots_per_vm < 1:
            raise ValueError("slot counts must be >= 1")


# -- runtime state --------------------------------------------------------------------


class LiveJob:
    """One admitted job's runtime state under the multiplexer."""

    def __init__(
        self,
        job_id: int,
        tenant: str,
        size_class: str,
        submit_time: float,
        ctx: JobContext,
        pool: TaskPool,
        reduce_queues: Dict[str, Deque[ReduceTask]],
        n_reducers: int,
        input_bytes: int,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.size_class = size_class
        self.submit_time = submit_time
        self.ctx = ctx
        self.pool = pool
        #: Unclaimed reduce tasks, keyed by their pinned VM.
        self.reduce_queues = reduce_queues
        self.n_reducers = n_reducers
        self.input_bytes = input_bytes
        self.running_maps = 0
        self.running_reduces = 0
        self.reduces_finished = 0
        self.first_launch: Optional[float] = None
        self.finished = False
        self.end_time: Optional[float] = None

    @property
    def tag(self) -> str:
        return f"j{self.job_id}"

    @property
    def running_tasks(self) -> int:
        return self.running_maps + self.running_reduces

    @property
    def maps_complete(self) -> bool:
        return self.ctx.maps_finished >= self.ctx.n_maps

    def has_unclaimed_reduces(self) -> bool:
        return any(len(q) > 0 for q in self.reduce_queues.values())


@dataclass
class MultiJobResult:
    """What a finished multi-job run reports (JSON-able job records)."""

    scheduler: str
    start: float
    makespan: float
    jobs: List[Dict[str, Any]]


# -- the multiplexer ------------------------------------------------------------------


class MultiJobTracker:
    """Admits an arrival stream and multiplexes jobs over shared slots.

    Usage::

        tracker = MultiJobTracker(env, cluster, topology, namenode,
                                  base_job, arrivals, scheduler="fair")
        proc = tracker.start()
        env.run(until=proc)
        result = proc.value          # a MultiJobResult
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        topology: "Topology",
        namenode: NameNode,
        base_job: JobConfig,
        arrivals: Sequence["JobArrival"],
        scheduler: str = "fifo",
        map_slots_per_vm: int = 2,
        reduce_slots_per_vm: int = 2,
        switch_plan: Optional[SwitchPlan] = None,
        trace: Optional["TraceBus"] = None,
    ):
        if not arrivals:
            raise ValueError("at least one job arrival is required")
        times = [a.time for a in arrivals]
        if times != sorted(times):
            raise ValueError("arrivals must be time-ordered")
        self.env = env
        self.cluster = cluster
        self.topology = topology
        self.namenode = namenode
        self.base_job = base_job
        self.arrivals = list(arrivals)
        self.scheduler = job_scheduler(scheduler)
        self.map_slots_per_vm = map_slots_per_vm
        self.reduce_slots_per_vm = reduce_slots_per_vm
        self.switch_plan = switch_plan
        self.trace = trace
        for host in cluster.hosts:
            topology.add_host(host.name)
        self.dn = DataNodeService(env, cluster, topology)
        #: Admitted jobs in admission order (finished ones stay listed).
        self.jobs: List[LiveJob] = []
        self.n_finished = 0
        self._arrivals_open = True
        self._next_task_id = 0
        self._slot_waiters: List[Event] = []
        self._phase_waiters: List[Event] = []
        self.process = None

    # -- lifecycle ------------------------------------------------------------------
    def start(self):
        """Launch the control plane; the process's value is a
        :class:`MultiJobResult`."""
        if self.process is not None:
            raise RuntimeError("tracker already started")
        self.process = self.env.process(self._run())
        return self.process

    def _run(self):
        start = self.env.now
        procs = [self.env.process(self._arrival_proc())]
        for vm in self.cluster.vms:
            for _ in range(self.map_slots_per_vm):
                procs.append(self.env.process(self._map_worker(vm.vm_id)))
            for _ in range(self.reduce_slots_per_vm):
                procs.append(self.env.process(self._reduce_worker(vm.vm_id)))
        if self.switch_plan is not None:
            # Deliberately outside the completion barrier: the monitor
            # may be mid-dwell when the last job drains, and its timeout
            # must not stretch the makespan.
            self.env.process(self._switch_monitor())
        yield AllOf(self.env, procs)
        end = self.env.now

        unfinished = [job.tag for job in self.jobs if not job.finished]
        if unfinished or len(self.jobs) != len(self.arrivals):
            raise RuntimeError(
                f"multi-job run ended inconsistently: admitted "
                f"{len(self.jobs)}/{len(self.arrivals)}, "
                f"unfinished {unfinished}"
            )
        return MultiJobResult(
            scheduler=self.scheduler.name,
            start=start,
            makespan=end - start,
            jobs=[self._record(job, end) for job in
                  sorted(self.jobs, key=lambda j: j.job_id)],
        )

    def _record(self, job: LiveJob, end: float) -> Dict[str, Any]:
        ctx = job.ctx
        maps_done = (ctx.maps_done_event.value
                     if ctx.maps_done_event.triggered else end)
        shuffle_done = (ctx.shuffle.shuffle_done.value
                        if ctx.shuffle.shuffle_done.triggered else end)
        return {
            "job_id": job.job_id,
            "tag": job.tag,
            "tenant": job.tenant,
            "size_class": job.size_class,
            "submit": job.submit_time,
            "first_launch": (job.first_launch
                             if job.first_launch is not None
                             else job.submit_time),
            "maps_done": maps_done,
            "shuffle_done": shuffle_done,
            "end": job.end_time,
            "latency": job.end_time - job.submit_time,
            "n_maps": ctx.n_maps,
            "n_reducers": job.n_reducers,
            "input_bytes": job.input_bytes,
            "map_output_bytes": ctx.shuffle.total_map_output_bytes,
            "shuffle_bytes": ctx.shuffle.shuffled_bytes,
            "reduce_output_bytes": ctx.reduce_output_bytes,
            "stolen": job.pool.stolen,
        }

    # -- wake plumbing (no busy-wait) -----------------------------------------------
    def _sleep(self) -> Event:
        event = self.env.event()
        self._slot_waiters.append(event)
        return event

    def _notify(self) -> None:
        waiters, self._slot_waiters = self._slot_waiters, []
        for event in waiters:
            event.succeed()

    def _phase_sleep(self) -> Event:
        event = self.env.event()
        self._phase_waiters.append(event)
        return event

    def _notify_phase(self) -> None:
        waiters, self._phase_waiters = self._phase_waiters, []
        for event in waiters:
            event.succeed()

    # -- admission ------------------------------------------------------------------
    def _arrival_proc(self):
        for arrival in self.arrivals:
            delay = arrival.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._admit(arrival)
        self._arrivals_open = False
        self._notify()
        self._notify_phase()

    def _job_config(self, arrival: "JobArrival") -> JobConfig:
        base = self.base_job
        bytes_per_vm = max(
            base.block_size, int(base.bytes_per_vm * arrival.size_class.bytes_factor)
        )
        # Whole blocks only, like scaled_job: a remainder byte would add
        # a short block and change the wave structure unpredictably.
        bytes_per_vm = base.block_size * max(1, bytes_per_vm // base.block_size)
        return base.with_(
            bytes_per_vm=bytes_per_vm,
            input_path=f"{base.input_path}/j{arrival.job_id}",
            output_path=f"{base.output_path}/j{arrival.job_id}",
        )

    def _admit(self, arrival: "JobArrival") -> None:
        job_id = arrival.job_id
        cfg = self._job_config(arrival)
        input_file = self.namenode.load_input(cfg.input_path, cfg.bytes_per_vm)
        # Task ids are globally unique across jobs: scratch-file names
        # and CFQ process queues are keyed by them, and two jobs' "map 0"
        # sharing a VM must not collide.
        tasks = [
            MapTask(task_id=self._next_task_id + i, block=block,
                    vm_id=block.replicas[0])
            for i, block in enumerate(input_file.blocks)
        ]
        self._next_task_id += len(tasks)
        n_reducers = cfg.reducers_per_vm * len(self.cluster.vms)
        output_file = self.namenode.register_file(cfg.output_path)
        shuffle = ShuffleService(self.env, n_reducers, len(tasks))
        ctx = JobContext(
            env=self.env,
            cluster=self.cluster,
            topology=self.topology,
            namenode=self.namenode,
            dn=self.dn,
            config=cfg,
            shuffle=shuffle,
            output_file=output_file,
            trace=self.trace,
            rng=self.cluster.rng.stream(f"job{job_id}.cpu_noise"),
            n_maps=len(tasks),
            maps_done_event=self.env.event(),
            reducers_may_start=self.env.event(),
            job_tag=f"j{job_id}",
        )
        if ctx.slowstart_count() == 0:
            ctx.reducers_may_start.succeed()
        reduce_queues: Dict[str, Deque[ReduceTask]] = {
            vm.vm_id: deque() for vm in self.cluster.vms
        }
        idx = 0
        for _ in range(cfg.reducers_per_vm):
            for vm in self.cluster.vms:
                reduce_queues[vm.vm_id].append(
                    ReduceTask(reducer_idx=idx, vm_id=vm.vm_id,
                               tag=f"j{job_id}.")
                )
                idx += 1
        job = LiveJob(
            job_id=job_id,
            tenant=arrival.tenant,
            size_class=arrival.size_class.name,
            submit_time=self.env.now,
            ctx=ctx,
            pool=TaskPool(tasks),
            reduce_queues=reduce_queues,
            n_reducers=n_reducers,
            input_bytes=input_file.size_bytes,
        )
        self.jobs.append(job)
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "sched.job_admitted",
                job=job.tag, tenant=job.tenant, size_class=job.size_class,
                input_bytes=job.input_bytes, n_maps=ctx.n_maps,
            )
        self._notify()
        self._notify_phase()

    # -- slot workers ---------------------------------------------------------------
    def _live(self) -> List[LiveJob]:
        return [job for job in self.jobs if not job.finished]

    def _claim_map(self, vm_id: str) -> Optional[Tuple[LiveJob, MapTask]]:
        for job in self.scheduler.order(self._live(), self):
            task = job.pool.take(vm_id)
            if task is not None:
                return job, task
        return None

    def _claim_reduce(self, vm_id: str) -> Optional[Tuple[LiveJob, ReduceTask]]:
        for job in self.scheduler.order(self._live(), self):
            if not job.ctx.reducers_may_start.triggered:
                continue  # slowstart gate still closed
            queue = job.reduce_queues[vm_id]
            if queue:
                return job, queue.popleft()
        return None

    def _map_worker(self, vm_id: str):
        while True:
            claim = self._claim_map(vm_id)
            if claim is not None:
                job, task = claim
                job.running_maps += 1
                if job.first_launch is None:
                    job.first_launch = self.env.now
                if self.trace is not None:
                    self.trace.publish(
                        self.env.now, "sched.task_assigned",
                        job=job.tag, kind="map", vm=vm_id, task=task.task_id,
                    )
                yield self.env.process(map_task_proc(job.ctx, task))
                job.running_maps -= 1
                self._task_done(job)
                continue
            if not self._arrivals_open and not any(
                job.pool.remaining() > 0 for job in self.jobs
            ):
                return
            yield self._sleep()

    def _reduce_worker(self, vm_id: str):
        while True:
            claim = self._claim_reduce(vm_id)
            if claim is not None:
                job, task = claim
                job.running_reduces += 1
                if job.first_launch is None:
                    job.first_launch = self.env.now
                if self.trace is not None:
                    self.trace.publish(
                        self.env.now, "sched.task_assigned",
                        job=job.tag, kind="reduce", vm=vm_id,
                        task=task.reducer_idx,
                    )
                yield self.env.process(reduce_task_proc(job.ctx, task))
                job.running_reduces -= 1
                job.reduces_finished += 1
                self._task_done(job)
                continue
            if not self._arrivals_open and not any(
                job.has_unclaimed_reduces() for job in self.jobs
            ):
                return
            yield self._sleep()

    def _task_done(self, job: LiveJob) -> None:
        self._maybe_finish(job)
        self._notify()
        self._notify_phase()

    def _maybe_finish(self, job: LiveJob) -> None:
        if job.finished:
            return
        if job.maps_complete and job.reduces_finished >= job.n_reducers:
            job.finished = True
            job.end_time = self.env.now
            self.n_finished += 1
            latency = job.end_time - job.submit_time
            if self.trace is not None:
                self.trace.publish(
                    self.env.now, "sched.job_done",
                    job=job.tag, tenant=job.tenant, latency=latency,
                )
                self.trace.publish(
                    self.env.now, "tenant.job_latency",
                    tenant=job.tenant, latency=latency,
                )

    # -- phase-majority switching ----------------------------------------------------
    def _desired_pair(self, current: SchedulerPair) -> SchedulerPair:
        live = self._live()
        if not live:
            return current  # idle gaps keep whatever is loaded
        mapping = sum(1 for job in live if not job.maps_complete)
        if mapping * 2 >= len(live):
            return self.switch_plan.map_pair
        return self.switch_plan.tail_pair

    def _switch_monitor(self):
        plan = self.switch_plan
        current = self.cluster.config.initial_pair
        last_switch: Optional[float] = None
        while True:
            if not self._arrivals_open and self.n_finished >= len(self.arrivals):
                return
            desired = self._desired_pair(current)
            if desired != current:
                if (last_switch is not None
                        and self.env.now - last_switch < plan.min_dwell):
                    yield self.env.timeout(
                        plan.min_dwell - (self.env.now - last_switch)
                    )
                    continue
                yield self.cluster.set_pair(desired)
                current = desired
                last_switch = self.env.now
                continue
            yield self._phase_sleep()
