"""Phase accounting: the paper's Ph1/Ph2/Ph3 decomposition.

* **Ph1** — job start → all maps done (CPU + disk + network).
* **Ph2** — maps done → shuffle done (the *non-concurrent* shuffle:
  disk + network only).
* **Ph3** — shuffle done → job done (sort + reduce: CPU + disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PhaseTimes", "JobResult", "PHASE_NAMES"]

PHASE_NAMES = ("ph1_map", "ph2_shuffle", "ph3_reduce")


@dataclass
class PhaseTimes:
    """Absolute timestamps of the phase boundaries."""

    start: float = 0.0
    maps_done: Optional[float] = None
    shuffle_done: Optional[float] = None
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("job has not finished")
        return self.end - self.start

    @property
    def ph1(self) -> float:
        if self.maps_done is None:
            raise ValueError("maps have not finished")
        return self.maps_done - self.start

    @property
    def ph2(self) -> float:
        """Non-concurrent shuffle time (may be ~0 with many waves)."""
        if self.shuffle_done is None or self.maps_done is None:
            raise ValueError("shuffle has not finished")
        return max(0.0, self.shuffle_done - self.maps_done)

    @property
    def ph3(self) -> float:
        if self.end is None or self.shuffle_done is None:
            raise ValueError("job has not finished")
        return self.end - max(self.shuffle_done, self.maps_done)

    @property
    def non_concurrent_shuffle_pct(self) -> float:
        """Ph2 as a percentage of total runtime (paper Table II)."""
        if self.duration <= 0:
            return 0.0
        return 100.0 * self.ph2 / self.duration

    def breakdown(self) -> Dict[str, float]:
        return {
            "ph1_map": self.ph1,
            "ph2_shuffle": self.ph2,
            "ph3_reduce": self.ph3,
        }


@dataclass
class JobResult:
    """Everything an experiment wants to know about one job run."""

    job_name: str
    phases: PhaseTimes
    n_maps: int = 0
    n_reducers: int = 0
    input_bytes: int = 0
    map_output_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    reduce_output_bytes: float = 0.0
    #: (time, fraction-of-maps-finished) progress samples.
    map_progress: List[Tuple[float, float]] = field(default_factory=list)
    #: Attempt/recovery counters (empty for fault-free runs): attempt
    #: totals, retries, speculative launches, kills, plus injector
    #: episode counts.  See :mod:`repro.faults`.
    fault_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-device storage-backend counters (empty for all-HDD clusters,
    #: which report nothing — keeping their payloads bit-identical).
    #: SSDs contribute FTL counters (write amplification, GC cycles),
    #: cache tiers their hit/miss ledgers.  See
    #: :meth:`repro.virt.cluster.VirtualCluster.storage_stats`.
    storage: Dict[str, Dict] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.phases.duration

    def summary(self) -> str:
        p = self.phases
        base = (
            f"{self.job_name}: {p.duration:.1f}s "
            f"(map {p.ph1:.1f}s, shuffle {p.ph2:.1f}s, reduce {p.ph3:.1f}s; "
            f"{self.n_maps} maps, {self.n_reducers} reducers)"
        )
        if self.fault_stats:
            retries = self.fault_stats.get("map_retries", 0) + \
                self.fault_stats.get("reduce_retries", 0)
            spec = self.fault_stats.get("map_speculative", 0)
            base += f" [faults: {retries} retries, {spec} speculative]"
        return base
