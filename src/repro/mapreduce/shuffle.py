"""The shuffle service: map-output registry and per-reducer feeds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..sim.events import Event
from ..sim.resources import Store
from ..virt.fs import GuestFile

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["MapOutput", "ShuffleService"]


@dataclass(frozen=True)
class MapOutput:
    """Descriptor of one map task's merged output file."""

    map_id: int
    vm_id: str
    file: Optional[GuestFile]
    total_bytes: float

    def partition_bytes(self, reducer: int, n_reducers: int) -> float:
        """Exact bytes destined for ``reducer`` (uniform partitioning).

        The extent is defined by consecutive :meth:`partition_offset`
        values — ``offset(r+1) - offset(r)`` — with the last partition
        taking the remainder, so the per-reducer extents tile
        ``total_bytes`` exactly: no overlap or gap at partition
        boundaries, and ``sum(extents) == total_bytes``.
        """
        offset = self.partition_offset(reducer, n_reducers)
        if reducer == n_reducers - 1:
            return self.total_bytes - offset
        return self._offset(reducer + 1, n_reducers) - offset

    def partition_offset(self, reducer: int, n_reducers: int) -> int:
        """Byte offset of a reducer's partition within the output file."""
        if n_reducers <= 0:
            raise ValueError("n_reducers must be positive")
        if not 0 <= reducer < n_reducers:
            raise ValueError("reducer index out of range")
        return self._offset(reducer, n_reducers)

    def _offset(self, reducer: int, n_reducers: int) -> int:
        return int(self.total_bytes * reducer / n_reducers)


class ShuffleService:
    """Fan-out of completed map outputs to every reducer.

    Each reducer owns a :class:`Store` fed with every registered
    :class:`MapOutput`; reducers consume descriptors as maps finish, so
    the shuffle overlaps the map phase exactly as in Hadoop.  The
    service also tracks when the *entire* shuffle is done (every reducer
    has fetched every partition) — the paper's Ph2/Ph3 boundary.
    """

    def __init__(self, env: "Environment", n_reducers: int, n_maps: int,
                 trace: Optional["TraceBus"] = None):
        if n_reducers <= 0 or n_maps <= 0:
            raise ValueError("reducers and maps must be positive")
        self.env = env
        self.n_reducers = n_reducers
        self.n_maps = n_maps
        self.trace = trace
        self.queues: List[Store] = [Store(env) for _ in range(n_reducers)]
        self.registered = 0
        #: Registration-order bookkeeping list.  Retried reduce attempts
        #: read from here instead of their (already drained) queue.
        self.outputs: List[MapOutput] = []
        self._register_waiters: List[Event] = []
        self._fetched_pairs: set = set()
        self.shuffle_done: Event = env.event()
        self.total_map_output_bytes = 0.0
        self.shuffled_bytes = 0.0

    def register(self, output: MapOutput) -> None:
        """Publish a finished map output to all reducers."""
        if self.registered >= self.n_maps:
            raise RuntimeError("more map outputs than maps")
        self.registered += 1
        self.total_map_output_bytes += output.total_bytes
        self.outputs.append(output)
        for queue in self.queues:
            queue.put(output)
        waiters, self._register_waiters = self._register_waiters, []
        for waiter in waiters:
            waiter.succeed(output)

    def wait_register(self) -> Event:
        """Event fired at the next :meth:`register` (retry attempts)."""
        waiter = self.env.event()
        self._register_waiters.append(waiter)
        return waiter

    def note_fetch_complete(self, reducer_idx: int, map_id: int,
                            nbytes: float) -> None:
        """A reducer finished pulling one partition.

        Keyed by ``(reducer, map)`` pair so that re-fetches by retried
        reduce attempts neither inflate the logical shuffle volume nor
        double-count towards the shuffle-done boundary.
        """
        pair = (reducer_idx, map_id)
        if pair in self._fetched_pairs:
            return
        self._fetched_pairs.add(pair)
        self.shuffled_bytes += nbytes
        if self.trace is not None:
            # The live residual signal (``job.shuffle_done`` is only
            # published retrospectively): one record per *logical*
            # fetch, ``remaining`` falling monotonically to zero.
            self.trace.publish(
                self.env.now, "shuffle.fetch",
                reducer=reducer_idx, map=map_id, nbytes=nbytes,
                remaining=self.fetches_remaining,
            )
        if (
            len(self._fetched_pairs) >= self.n_maps * self.n_reducers
            and not self.shuffle_done.triggered
        ):
            self.shuffle_done.succeed(self.env.now)

    @property
    def fetches_remaining(self) -> int:
        return self.n_maps * self.n_reducers - len(self._fetched_pairs)
