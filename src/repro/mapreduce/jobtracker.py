"""The JobTracker: task placement, slot workers, phase events."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

import numpy as np

from ..hdfs.blocks import HdfsFile
from ..hdfs.datanode import DataNodeService
from ..hdfs.namenode import NameNode
from ..sim.events import AllOf, Event
from .attempts import AttemptManager
from .job import JobConfig
from .map_task import MapTask, map_task_proc
from .phases import JobResult, PhaseTimes
from .reduce_task import ReduceTask, reduce_task_proc
from .shuffle import ShuffleService

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan
    from ..net.topology import Topology
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus
    from ..virt.cluster import VirtualCluster

__all__ = ["JobContext", "MapReduceJob", "TaskPool"]


class TaskPool:
    """Pending map tasks, grouped by preferred (data-local) VM.

    Workers take local tasks first; when a VM runs dry it steals from
    the VM with the largest backlog (the stolen block is then read over
    the network from a remote replica).
    """

    def __init__(self, tasks: List[MapTask], steal_threshold: int = 2):
        self._local: Dict[str, Deque[MapTask]] = {}
        for task in tasks:
            self._local.setdefault(task.vm_id, deque()).append(task)
        self.total = len(tasks)
        self.stolen = 0
        #: Minimum victim backlog before a non-local assignment happens.
        #: A VM's own slots drain a short queue faster than a remote read
        #: would, so trackers only go non-local against real stragglers.
        self.steal_threshold = steal_threshold

    def remaining(self) -> int:
        return sum(len(q) for q in self._local.values())

    def take(self, vm_id: str) -> Optional[MapTask]:
        queue = self._local.get(vm_id)
        if queue:
            return queue.popleft()
        # Steal from the most loaded VM; rebind the task to the thief.
        victim = max(self._local.values(), key=len, default=None)
        if not victim or len(victim) < self.steal_threshold:
            return None
        task = victim.popleft()
        self.stolen += 1
        return MapTask(task_id=task.task_id, block=task.block, vm_id=vm_id)

    def evict(self, vm_id: str) -> List[MapTask]:
        """Remove and return a (crashed) VM's still-queued local tasks."""
        queue = self._local.pop(vm_id, None)
        return list(queue) if queue else []


@dataclass
class JobContext:
    """Everything the task generators need, in one handle."""

    env: "Environment"
    cluster: "VirtualCluster"
    topology: "Topology"
    namenode: NameNode
    dn: DataNodeService
    config: JobConfig
    shuffle: ShuffleService
    output_file: HdfsFile
    trace: Optional["TraceBus"] = None
    rng: Optional[np.random.Generator] = None
    #: Attempt/recovery control plane; bound by MapReduceJob._prepare.
    attempts: Optional["AttemptManager"] = None
    maps_finished: int = 0
    n_maps: int = 0
    maps_done_event: Optional[Event] = None
    reducers_may_start: Optional[Event] = None
    map_progress: List = field(default_factory=list)
    reduce_input_bytes: float = 0.0
    reduce_output_bytes: float = 0.0
    #: Multi-job runs tag each job's trace records; ``None`` (the
    #: single-job path) keeps historical trace payloads byte-identical.
    job_tag: Optional[str] = None

    def slowstart_count(self) -> int:
        """Maps that must finish before reducers may launch.

        ``slowstart=0`` means *zero* — reducers start at job start —
        while any positive fraction requires at least one finished map
        (the historical ``max(1, ...)`` behaviour).
        """
        if self.config.slowstart == 0:
            return 0
        return max(1, int(self.config.slowstart * self.n_maps))

    def compute(self, vm, seconds: float, label: Any = None):
        """Submit jittered CPU work on ``vm`` (lockstep breaker)."""
        noise = self.config.cpu_noise
        if noise > 0 and self.rng is not None and seconds > 0:
            seconds *= float(self.rng.uniform(1.0 - noise, 1.0 + noise))
        return vm.compute(seconds, label)

    def on_map_finished(self, task: MapTask) -> None:
        self.maps_finished += 1
        frac = self.maps_finished / self.n_maps
        self.map_progress.append((self.env.now, frac))
        if self.trace is not None:
            if self.job_tag is None:
                self.trace.publish(
                    self.env.now, "job.map_finished",
                    task_id=task.task_id, done=self.maps_finished,
                    total=self.n_maps,
                )
            else:
                self.trace.publish(
                    self.env.now, "job.map_finished",
                    task_id=task.task_id, done=self.maps_finished,
                    total=self.n_maps, job=self.job_tag,
                )
        slowstart_count = self.slowstart_count()
        if (
            self.maps_finished >= slowstart_count
            and self.reducers_may_start is not None
            and not self.reducers_may_start.triggered
        ):
            self.reducers_may_start.succeed()
        if self.maps_finished >= self.n_maps:
            if not self.maps_done_event.triggered:
                self.maps_done_event.succeed(self.env.now)
            if self.trace is not None:
                if self.job_tag is None:
                    self.trace.publish(self.env.now, "job.maps_done")
                else:
                    self.trace.publish(self.env.now, "job.maps_done",
                                       job=self.job_tag)

    def on_reduce_finished(self, task: ReduceTask, input_bytes: float,
                           output_bytes: float) -> None:
        self.reduce_input_bytes += input_bytes
        self.reduce_output_bytes += output_bytes
        if self.trace is not None:
            if self.job_tag is None:
                self.trace.publish(
                    self.env.now, "job.reduce_finished",
                    reducer=task.reducer_idx,
                )
            else:
                self.trace.publish(
                    self.env.now, "job.reduce_finished",
                    reducer=task.reducer_idx, job=self.job_tag,
                )


class MapReduceJob:
    """One job execution over a virtual cluster.

    Usage::

        job = MapReduceJob(env, cluster, topology, namenode, config)
        proc = job.start()
        env.run(until=proc)
        result = proc.value
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        topology: "Topology",
        namenode: NameNode,
        config: JobConfig,
        trace: Optional["TraceBus"] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.topology = topology
        self.namenode = namenode
        self.config = config
        self.trace = trace
        self.fault_plan = fault_plan
        self.attempts: Optional[AttemptManager] = None
        #: Extra counters merged into JobResult.fault_stats (the fault
        #: injector deposits its episode counts here).
        self.extra_fault_stats: Dict[str, int] = {}
        # Ensure every host is on the network.
        for host in cluster.hosts:
            topology.add_host(host.name)
        self.ctx: Optional[JobContext] = None
        #: Phase-boundary events, available once start() is called.
        self.maps_done_event: Optional[Event] = None
        self.shuffle_done_event: Optional[Event] = None
        self.process = None

    def start(self):
        """Launch the job; returns the process whose value is JobResult."""
        if self.process is not None:
            raise RuntimeError("job already started")
        self._prepare()
        self.process = self.env.process(self._run())
        return self.process

    # -- setup ----------------------------------------------------------------------
    def _prepare(self) -> None:
        cfg = self.config
        if not self.namenode.exists(cfg.input_path):
            self.namenode.load_input(cfg.input_path, cfg.bytes_per_vm)
        input_file = self.namenode.lookup(cfg.input_path)
        tasks = [
            MapTask(task_id=i, block=block, vm_id=block.replicas[0])
            for i, block in enumerate(input_file.blocks)
        ]
        n_reducers = cfg.reducers_per_vm * len(self.cluster.vms)
        out_path = cfg.output_path
        if self.namenode.exists(out_path):
            self.namenode.delete(out_path)
        output_file = self.namenode.register_file(out_path)

        shuffle = ShuffleService(self.env, n_reducers, len(tasks),
                                 trace=self.trace)
        self.shuffle_done_event = shuffle.shuffle_done
        self.maps_done_event = self.env.event()
        ctx = JobContext(
            env=self.env,
            cluster=self.cluster,
            topology=self.topology,
            namenode=self.namenode,
            dn=DataNodeService(self.env, self.cluster, self.topology),
            config=cfg,
            shuffle=shuffle,
            output_file=output_file,
            trace=self.trace,
            rng=self.cluster.rng.stream("job.cpu_noise"),
            n_maps=len(tasks),
            maps_done_event=self.maps_done_event,
            reducers_may_start=self.env.event(),
        )
        self.ctx = ctx
        if ctx.slowstart_count() == 0:
            # slowstart=0: reducers are free to launch at job start, not
            # gated on the first finished map.
            ctx.reducers_may_start.succeed()
        self._pool = TaskPool(tasks)
        self._input_file = input_file
        self.attempts = AttemptManager(
            self.env,
            ctx,
            self._pool,
            plan=self.fault_plan,
            rng=self.cluster.rng,
            trace=self.trace,
        )
        ctx.attempts = self.attempts

    # -- execution --------------------------------------------------------------------
    def _map_worker(self, vm_id: str):
        mgr = self.attempts
        while True:
            claim = mgr.claim_map(vm_id)
            if claim is None:
                return
            if isinstance(claim, Event):
                # No placeable work right now, but retries/speculation
                # may still produce some: park until the manager wakes us.
                yield claim
                continue
            yield self.env.process(map_task_proc(self.ctx, claim.task, claim))
            mgr.map_attempt_done(claim)

    def _reduce_worker(self, task: ReduceTask):
        yield self.ctx.reducers_may_start
        mgr = self.attempts
        attempt = mgr.start_reduce(task)
        if attempt is None:
            # Fault-free path: exactly the historical single execution.
            yield self.env.process(reduce_task_proc(self.ctx, task))
            return
        while attempt is not None:
            yield self.env.process(
                reduce_task_proc(self.ctx, attempt.task, attempt)
            )
            attempt = mgr.reduce_attempt_done(attempt)

    def _run(self):
        ctx = self.ctx
        cfg = self.config
        start = self.env.now
        if self.trace is not None:
            self.trace.publish(start, "job.start", name=cfg.spec.name)

        workers = []
        for vm in self.cluster.vms:
            for _ in range(cfg.map_slots):
                workers.append(self.env.process(self._map_worker(vm.vm_id)))

        reducer_tasks = []
        idx = 0
        for _ in range(cfg.reducers_per_vm):
            for vm in self.cluster.vms:
                reducer_tasks.append(ReduceTask(reducer_idx=idx, vm_id=vm.vm_id))
                idx += 1
        reducers = [
            self.env.process(self._reduce_worker(t)) for t in reducer_tasks
        ]

        yield AllOf(self.env, workers + reducers)
        end = self.env.now
        if self.trace is not None:
            # Published retrospectively (no watcher process: attaching a
            # trace must not perturb the event schedule); the record
            # carries the boundary's true simulated time.
            if self.shuffle_done_event.triggered:
                self.trace.publish(
                    self.shuffle_done_event.value, "job.shuffle_done"
                )
            self.trace.publish(end, "job.done", name=cfg.spec.name)

        phases = PhaseTimes(
            start=start,
            maps_done=self.maps_done_event.value
            if self.maps_done_event.triggered
            else end,
            shuffle_done=self.shuffle_done_event.value
            if self.shuffle_done_event.triggered
            else end,
            end=end,
        )
        fault_stats = self.attempts.fault_stats()
        fault_stats.update(self.extra_fault_stats)
        return JobResult(
            job_name=cfg.spec.name,
            phases=phases,
            n_maps=ctx.n_maps,
            n_reducers=len(reducer_tasks),
            input_bytes=self._input_file.size_bytes,
            map_output_bytes=ctx.shuffle.total_map_output_bytes,
            shuffle_bytes=ctx.shuffle.shuffled_bytes,
            reduce_output_bytes=ctx.reduce_output_bytes,
            map_progress=list(ctx.map_progress),
            fault_stats=fault_stats,
        )
