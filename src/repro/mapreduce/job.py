"""Job specifications: workload I/O profiles and runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["JobSpec", "JobConfig", "MB"]

MB = 1024 * 1024


@dataclass(frozen=True)
class JobSpec:
    """The I/O/CPU profile of a MapReduce application.

    The paper classifies applications by the size of the map output and
    reduce output (heavy/moderate/light disk operations); these ratios
    encode exactly that classification:

    * ``emit_ratio`` — bytes emitted into the map-side sort buffer per
      input byte (pre-combiner).
    * ``map_output_ratio`` — bytes actually spilled/merged to disk per
      input byte (post-combiner).  Equal to ``emit_ratio`` when there is
      no combiner.
    * ``reduce_output_ratio`` — bytes written to HDFS per byte of reduce
      input.
    """

    name: str
    emit_ratio: float
    map_output_ratio: float
    reduce_output_ratio: float
    combiner: bool = False
    #: CPU seconds per MB of input processed by the map function.
    map_cpu_s_per_mb: float = 0.015
    #: CPU seconds per MB run through the combiner at spill time.
    combine_cpu_s_per_mb: float = 0.0
    #: CPU seconds per MB for sort/merge passes (map and reduce side).
    sort_cpu_s_per_mb: float = 0.006
    #: CPU seconds per MB of reduce input processed by the reduce function.
    reduce_cpu_s_per_mb: float = 0.012

    def __post_init__(self) -> None:
        if min(self.emit_ratio, self.map_output_ratio, self.reduce_output_ratio) < 0:
            raise ValueError("ratios must be non-negative")
        if self.map_output_ratio > self.emit_ratio + 1e-9:
            raise ValueError("map_output_ratio cannot exceed emit_ratio")
        if min(
            self.map_cpu_s_per_mb,
            self.combine_cpu_s_per_mb,
            self.sort_cpu_s_per_mb,
            self.reduce_cpu_s_per_mb,
        ) < 0:
            raise ValueError("CPU costs must be non-negative")


@dataclass(frozen=True)
class JobConfig:
    """Cluster-facing job parameters (Hadoop 0.19 defaults)."""

    spec: JobSpec
    #: Input bytes stored (and processed) per data node, 512 MB default.
    bytes_per_vm: int = 512 * MB
    block_size: int = 64 * MB
    #: Concurrent map / reduce tasks per VM ("at most two Map or Reduce
    #: tasks" per single-core VM in the paper).
    map_slots: int = 2
    reducers_per_vm: int = 2
    replication: int = 2
    #: io.sort.mb and the spill threshold.
    sort_buffer_bytes: int = 100 * MB
    spill_threshold: float = 0.8
    #: Reduce-side in-memory shuffle buffer before spilling to disk.
    shuffle_buffer_bytes: int = 128 * MB
    #: mapred.reduce.parallel.copies.
    max_parallel_fetches: int = 5
    #: Granularity at which tasks interleave I/O and CPU.
    io_chunk_bytes: int = 4 * MB
    #: Fraction of maps finished before reducers launch.
    slowstart: float = 0.05
    #: Relative jitter applied to every task CPU burst (seeded).  Real
    #: tasks never take identical time; without jitter the 32 reducers
    #: run in artificial lockstep and convoy effects dominate.
    cpu_noise: float = 0.10
    input_path: str = "input"
    output_path: str = "output"

    def __post_init__(self) -> None:
        if self.bytes_per_vm <= 0 or self.block_size <= 0:
            raise ValueError("sizes must be positive")
        if self.map_slots <= 0 or self.reducers_per_vm <= 0:
            raise ValueError("slot counts must be positive")
        if not 0 < self.spill_threshold <= 1:
            raise ValueError("spill_threshold must be in (0, 1]")
        if not 0 <= self.slowstart <= 1:
            raise ValueError("slowstart must be in [0, 1]")
        if not 0 <= self.cpu_noise < 1:
            raise ValueError("cpu_noise must be in [0, 1)")

    def with_(self, **changes) -> "JobConfig":
        return replace(self, **changes)

    def blocks_per_vm(self) -> int:
        return -(-self.bytes_per_vm // self.block_size)  # ceil

    def waves(self) -> float:
        """Map waves: blocks / (nodes × slots), per the paper's Table II."""
        return self.blocks_per_vm() / self.map_slots
