"""The reduce task: shuffle fetches, merge sort, reduce, HDFS output."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..sim.events import AllOf
from ..sim.resources import Resource
from ..virt.fs import GuestFile
from .job import MB
from .shuffle import MapOutput

if TYPE_CHECKING:  # pragma: no cover
    from .attempts import TaskAttempt
    from .jobtracker import JobContext

__all__ = ["ReduceTask", "reduce_task_proc"]


@dataclass(frozen=True)
class ReduceTask:
    """One reducer: an index into the partition space, pinned to a VM."""

    reducer_idx: int
    vm_id: str
    #: Disambiguates scratch files and I/O process identity when several
    #: jobs share a VM (``reducer_idx`` is a per-job partition index, so
    #: it repeats across concurrent jobs).  The single-job path keeps the
    #: default empty tag and therefore its historical names.
    tag: str = ""


def reduce_task_proc(ctx: "JobContext", task: "ReduceTask",
                     attempt: Optional["TaskAttempt"] = None):
    """Generator implementing one reduce task.

    Three stages, matching the paper's phase analysis:

    1. **Shuffle** (overlaps the map phase): pull this reducer's
       partition from every map output as it appears, up to
       ``max_parallel_fetches`` at a time; buffer in memory and spill to
       local disk (async writes) when the shuffle buffer fills.
    2. **Merge**: read the spills back (sync reads) and merge-sort.
    3. **Reduce + output**: reduce CPU interleaved with the replicated
       HDFS write pipeline (local buffered write + network + remote
       buffered write).

    ``attempt`` adds the fault contract (see
    :func:`~repro.mapreduce.map_task.map_task_proc`).  A first attempt
    consumes map-output descriptors from its reducer queue exactly like
    the fault-free path; *retried* attempts instead walk the shuffle
    service's registration list (their queue was drained by the dead
    attempt) and wait on registration events for outputs still to come.
    """
    spec = ctx.config.spec
    cfg = ctx.config
    vm = ctx.cluster.vm(task.vm_id)
    pid = f"red{task.tag}{task.reducer_idx}@{task.vm_id}"
    n_reducers = ctx.shuffle.n_reducers
    n_maps = ctx.shuffle.n_maps
    queue = ctx.shuffle.queues[task.reducer_idx]
    suffix = "" if attempt is None or attempt.number == 0 else f".a{attempt.number}"

    fetch_slots = Resource(ctx.env, capacity=cfg.max_parallel_fetches)
    mem_buffered = 0.0
    total_input = 0.0
    spills: List[GuestFile] = []
    spill_bytes: List[float] = []
    spill_lock = Resource(ctx.env, capacity=1)

    def aborted(progress: float) -> bool:
        return attempt is not None and attempt.should_abort(progress)

    def fetch_one(desc: MapOutput):
        nonlocal mem_buffered, total_input
        with fetch_slots.request() as slot:
            yield slot
            nbytes = desc.partition_bytes(task.reducer_idx, n_reducers)
            if nbytes > 0 and desc.file is not None:
                offset = desc.partition_offset(task.reducer_idx, n_reducers)
                length = int(nbytes)
                src_vm = ctx.cluster.vm(desc.vm_id)
                if length > 0:
                    end = min(offset + length, desc.file.size_bytes)
                    length = max(0, end - offset)
                if length > 0:
                    # The serving TaskTracker reads the partition (hot in
                    # its page cache if recent) ...
                    yield from src_vm.read_file(
                        desc.file, offset, length, f"tt@{desc.vm_id}"
                    )
                    # ... and it crosses the network unless VM-local.
                    if desc.vm_id != task.vm_id:
                        yield ctx.topology.transfer(
                            src_vm.host_name,
                            vm.host_name,
                            length,
                            label=f"shuffle m{desc.map_id}->r{task.reducer_idx}",
                        )
            mem_buffered += nbytes
            total_input += nbytes
            if mem_buffered >= cfg.shuffle_buffer_bytes:
                with spill_lock.request() as lock:
                    yield lock
                    if mem_buffered >= cfg.shuffle_buffer_bytes:
                        yield from spill_to_disk()
        ctx.shuffle.note_fetch_complete(task.reducer_idx, desc.map_id, nbytes)

    def spill_to_disk():
        nonlocal mem_buffered
        amount = mem_buffered
        mem_buffered = 0.0
        if amount < 1:
            return
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * amount / MB, pid)
        f = vm.create_file(
            f"rspill_{task.tag}{task.reducer_idx}_{len(spills)}{suffix}",
            int(amount)
        )
        yield from vm.write_file(f, 0, int(amount), pid)
        spills.append(f)
        spill_bytes.append(amount)

    # -- stage 1: shuffle ------------------------------------------------------------
    fetchers = []
    if attempt is None or attempt.number == 0:
        for i in range(n_maps):
            if aborted(0.5 * i / n_maps):
                return None
            desc = yield queue.get()
            fetchers.append(ctx.env.process(fetch_one(desc)))
    else:
        # Retry path: replay the registration log, then wait for the rest.
        seen = 0
        while seen < n_maps:
            if aborted(0.5 * seen / n_maps):
                return None
            if seen < len(ctx.shuffle.outputs):
                desc = ctx.shuffle.outputs[seen]
                seen += 1
                fetchers.append(ctx.env.process(fetch_one(desc)))
            else:
                yield ctx.shuffle.wait_register()
    if fetchers:
        yield AllOf(ctx.env, fetchers)

    # -- stage 2: merge --------------------------------------------------------------
    for i, (f, size) in enumerate(zip(spills, spill_bytes)):
        if aborted(0.5 + 0.2 * i / len(spills)):
            return None
        yield from vm.read_file(f, 0, int(size), pid)
    if total_input > 0:
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * total_input / MB, pid)

    # -- stage 3: reduce + replicated output --------------------------------------------
    out_bytes = int(total_input * spec.reduce_output_ratio)
    out_file = ctx.output_file
    written = 0
    while written < out_bytes:
        if aborted(0.7 + 0.3 * written / out_bytes):
            return None
        block_size = min(cfg.block_size, out_bytes - written)
        block = ctx.namenode.add_block(out_file, block_size, task.vm_id)
        if spec.reduce_cpu_s_per_mb > 0:
            # Reduce function produces this block's worth of output.
            consumed = (
                block_size / spec.reduce_output_ratio
                if spec.reduce_output_ratio > 0
                else 0.0
            )
            yield ctx.compute(vm, spec.reduce_cpu_s_per_mb * consumed / MB, pid)
        yield from ctx.dn.write_block(block, task.vm_id, pid)
        written += block_size
    if out_bytes == 0 and total_input > 0 and spec.reduce_cpu_s_per_mb > 0:
        # Output-light jobs still run the reduce function over all input.
        yield ctx.compute(vm, spec.reduce_cpu_s_per_mb * total_input / MB, pid)

    if attempt is not None and not ctx.attempts.claim_success(attempt):
        return None
    ctx.on_reduce_finished(task, total_input, out_bytes)
    return total_input
