"""The map task: read input, map, buffer, spill (+combine), merge."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..hdfs.blocks import HdfsBlock
from ..virt.fs import GuestFile
from .job import MB
from .shuffle import MapOutput

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobContext

__all__ = ["MapTask", "map_task_proc"]


@dataclass(frozen=True)
class MapTask:
    """One map task: a block to process on a chosen VM."""

    task_id: int
    block: HdfsBlock
    vm_id: str

    @property
    def is_data_local(self) -> bool:
        return self.vm_id in self.block.replicas


def map_task_proc(ctx: "JobContext", task: "MapTask"):
    """Generator implementing one map task's life.

    Per the paper's workload characterisation, this interleaves:
    sequential sync reads of the input block; map CPU; buffered (async)
    spill writes once the sort buffer passes its threshold, with
    combiner CPU applied pre-spill; and a final merge pass when multiple
    spills exist.
    """
    spec = ctx.config.spec
    cfg = ctx.config
    vm = ctx.cluster.vm(task.vm_id)
    pid = f"map{task.task_id}@{task.vm_id}"
    block = task.block

    buffer_limit = cfg.sort_buffer_bytes * cfg.spill_threshold
    buffered_raw = 0.0
    spills: List[GuestFile] = []
    spill_bytes: List[float] = []
    out_written = 0.0

    def spill():
        nonlocal buffered_raw, out_written
        raw = buffered_raw
        buffered_raw = 0.0
        if raw <= 0:
            return
        if spec.combiner and spec.combine_cpu_s_per_mb > 0:
            yield ctx.compute(vm, spec.combine_cpu_s_per_mb * raw / MB, pid)
        # Sort the buffer before writing (quick-sort pass).
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * raw / MB, pid)
        to_disk = raw * (spec.map_output_ratio / spec.emit_ratio) if spec.emit_ratio else 0.0
        if to_disk <= 0:
            return
        f = vm.create_file(f"spill_{task.task_id}_{len(spills)}", int(to_disk))
        yield from vm.write_file(f, 0, int(to_disk), pid)
        spills.append(f)
        spill_bytes.append(to_disk)
        out_written += to_disk

    # -- input + map + spill loop -----------------------------------------------
    pos = 0
    while pos < block.size_bytes:
        chunk = min(cfg.io_chunk_bytes, block.size_bytes - pos)
        yield from ctx.dn.read_block(block, task.vm_id, pid, pos, chunk)
        if spec.map_cpu_s_per_mb > 0:
            yield ctx.compute(vm, spec.map_cpu_s_per_mb * chunk / MB, pid)
        buffered_raw += chunk * spec.emit_ratio
        if buffered_raw >= buffer_limit:
            yield from spill()
        pos += chunk
    yield from spill()

    # -- merge spills into the final map output ------------------------------------
    total_out = sum(spill_bytes)
    if len(spills) > 1:
        merged = vm.create_file(f"mapout_{task.task_id}", int(total_out))
        for f, size in zip(spills, spill_bytes):
            # Spill data is usually still in the page cache; a cold
            # chunk costs a real read.
            yield from vm.read_file(f, 0, int(size), pid)
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * total_out / MB, pid)
        yield from vm.write_file(merged, 0, int(total_out), pid)
        out_file = merged
    elif spills:
        out_file = spills[0]
    else:
        out_file = None

    output = MapOutput(
        map_id=task.task_id,
        vm_id=task.vm_id,
        file=out_file,
        total_bytes=total_out,
    )
    ctx.shuffle.register(output)
    ctx.on_map_finished(task)
    return output
