"""The map task: read input, map, buffer, spill (+combine), merge."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..hdfs.blocks import HdfsBlock
from ..virt.fs import GuestFile
from .job import MB
from .shuffle import MapOutput

if TYPE_CHECKING:  # pragma: no cover
    from .attempts import TaskAttempt
    from .jobtracker import JobContext

__all__ = ["MapTask", "map_task_proc"]


@dataclass(frozen=True)
class MapTask:
    """One map task: a block to process on a chosen VM."""

    task_id: int
    block: HdfsBlock
    vm_id: str

    @property
    def is_data_local(self) -> bool:
        return self.vm_id in self.block.replicas


def map_task_proc(ctx: "JobContext", task: "MapTask",
                  attempt: Optional["TaskAttempt"] = None):
    """Generator implementing one map task's life.

    Per the paper's workload characterisation, this interleaves:
    sequential sync reads of the input block; map CPU; buffered (async)
    spill writes once the sort buffer passes its threshold, with
    combiner CPU applied pre-spill; and a final merge pass when multiple
    spills exist.

    ``attempt`` carries the fault-injection contract: the generator
    polls :meth:`~repro.mapreduce.attempts.TaskAttempt.should_abort` at
    chunk/spill/merge boundaries (cooperative checkpoints — aborting is
    only legal between I/O operations, like a JVM exiting between
    records) and registers its output only if it wins
    :meth:`~repro.mapreduce.attempts.AttemptManager.claim_success`.
    Retried attempts suffix their scratch file names so rival attempts
    sharing a VM never collide.
    """
    spec = ctx.config.spec
    cfg = ctx.config
    vm = ctx.cluster.vm(task.vm_id)
    pid = f"map{task.task_id}@{task.vm_id}"
    block = task.block
    # Attempt 0 keeps the historical names (bit-identical fault-free runs).
    suffix = "" if attempt is None or attempt.number == 0 else f".a{attempt.number}"

    buffer_limit = cfg.sort_buffer_bytes * cfg.spill_threshold
    buffered_raw = 0.0
    spills: List[GuestFile] = []
    spill_bytes: List[float] = []
    out_written = 0.0

    def aborted(progress: float) -> bool:
        return attempt is not None and attempt.should_abort(progress)

    def spill():
        nonlocal buffered_raw, out_written
        raw = buffered_raw
        buffered_raw = 0.0
        if raw <= 0:
            return
        if spec.combiner and spec.combine_cpu_s_per_mb > 0:
            yield ctx.compute(vm, spec.combine_cpu_s_per_mb * raw / MB, pid)
        # Sort the buffer before writing (quick-sort pass).
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * raw / MB, pid)
        to_disk = raw * (spec.map_output_ratio / spec.emit_ratio) if spec.emit_ratio else 0.0
        if to_disk <= 0:
            return
        f = vm.create_file(f"spill_{task.task_id}_{len(spills)}{suffix}", int(to_disk))
        yield from vm.write_file(f, 0, int(to_disk), pid)
        spills.append(f)
        spill_bytes.append(to_disk)
        out_written += to_disk

    # -- input + map + spill loop -----------------------------------------------
    pos = 0
    while pos < block.size_bytes:
        if aborted(0.8 * pos / block.size_bytes):
            return None
        chunk = min(cfg.io_chunk_bytes, block.size_bytes - pos)
        yield from ctx.dn.read_block(block, task.vm_id, pid, pos, chunk)
        if spec.map_cpu_s_per_mb > 0:
            yield ctx.compute(vm, spec.map_cpu_s_per_mb * chunk / MB, pid)
        buffered_raw += chunk * spec.emit_ratio
        if buffered_raw >= buffer_limit:
            yield from spill()
        pos += chunk
    yield from spill()

    # -- merge spills into the final map output ------------------------------------
    if aborted(0.8):
        return None
    total_out = sum(spill_bytes)
    if len(spills) > 1:
        merged = vm.create_file(f"mapout_{task.task_id}{suffix}", int(total_out))
        for i, (f, size) in enumerate(zip(spills, spill_bytes)):
            if aborted(0.8 + 0.2 * i / len(spills)):
                return None
            # Spill data is usually still in the page cache; a cold
            # chunk costs a real read.
            yield from vm.read_file(f, 0, int(size), pid)
        yield ctx.compute(vm, spec.sort_cpu_s_per_mb * total_out / MB, pid)
        yield from vm.write_file(merged, 0, int(total_out), pid)
        out_file = merged
    elif spills:
        out_file = spills[0]
    else:
        out_file = None

    if attempt is not None and not ctx.attempts.claim_success(attempt):
        # Killed, or a rival attempt registered first: discard quietly.
        return None
    output = MapOutput(
        map_id=task.task_id,
        vm_id=task.vm_id,
        file=out_file,
        total_bytes=total_out,
    )
    ctx.shuffle.register(output)
    ctx.on_map_finished(task)
    return output
