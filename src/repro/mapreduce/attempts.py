"""Task attempts and JobTracker-side recovery.

Fault-free Hadoop runs one attempt per task; under faults the
JobTracker retries failed attempts on other TaskTrackers (bounded by
``mapred.*.max.attempts``) and launches *speculative* backup attempts
for stragglers, killing the loser when either finishes.  This module
adds exactly that control plane:

* :class:`TaskAttempt` — one execution of a task.  Task generators
  consult it at cooperative checkpoints (chunk/spill/fetch/output
  boundaries) and abort when the attempt has been killed or has hit
  its pre-drawn failure point; the winner claims success exactly once.
* :class:`AttemptManager` — per-job bookkeeping: hands attempts to
  slot workers, requeues failures with re-placement (a retry avoids
  the VM it just failed on), rehomes queued work away from crashed
  VMs, and runs the straggler monitor for speculative execution.

The manager is always present but *inert* without an active fault
plan: no RNG streams are drawn, no events are created, and the claim
path reduces to the plain ``TaskPool.take`` the fault-free scheduler
always used — keeping fault-free runs bit-identical.

Failure points are drawn per ``(task, attempt)`` from dedicated
``faults.*`` RNG streams keyed by name, so they are independent of
scheduling order and of every pre-existing stream.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from ..sim.events import Event
from .map_task import MapTask
from .reduce_task import ReduceTask

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan
    from ..sim.core import Environment
    from ..sim.rng import RngStreams
    from ..sim.tracing import TraceBus
    from .jobtracker import JobContext, TaskPool

__all__ = ["TaskAttempt", "AttemptManager"]


class TaskAttempt:
    """One execution attempt of a map or reduce task."""

    __slots__ = (
        "task",
        "number",
        "speculative",
        "fail_at",
        "killed",
        "succeeded",
        "failed",
        "started_at",
    )

    def __init__(self, task, number: int = 0, speculative: bool = False,
                 fail_at: Optional[float] = None, started_at: float = 0.0):
        self.task = task
        self.number = number
        self.speculative = speculative
        #: Progress fraction at which this attempt fails, or None.
        self.fail_at = fail_at
        self.killed = False
        self.succeeded = False
        self.failed = False
        self.started_at = started_at

    @property
    def is_map(self) -> bool:
        return isinstance(self.task, MapTask)

    @property
    def vm_id(self) -> str:
        return self.task.vm_id

    def should_abort(self, progress: float) -> bool:
        """Checkpoint predicate called by the task generators.

        ``progress`` is a monotone fraction in [0, 1] of the attempt's
        work; the pre-drawn failure point makes failures land mid-task
        rather than only at the start.
        """
        if self.killed:
            return True
        if self.fail_at is not None and progress >= self.fail_at:
            self.failed = True
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "m" if self.is_map else "r"
        tid = self.task.task_id if self.is_map else self.task.reducer_idx
        spec = "s" if self.speculative else ""
        return f"<Attempt {kind}{tid}.{self.number}{spec} on {self.vm_id}>"


class _MapState:
    """Recovery bookkeeping for one map task."""

    __slots__ = ("done", "attempts", "failures", "running", "queued",
                 "speculated")

    def __init__(self) -> None:
        self.done = False
        self.attempts = 0
        self.failures = 0
        self.running: List[TaskAttempt] = []
        self.queued = 0
        self.speculated = False


class AttemptManager:
    """Per-job attempt lifecycle: placement, retry, speculation."""

    def __init__(
        self,
        env: "Environment",
        ctx: "JobContext",
        pool: "TaskPool",
        plan: Optional["FaultPlan"] = None,
        rng: Optional["RngStreams"] = None,
        trace: Optional["TraceBus"] = None,
    ):
        self.env = env
        self.ctx = ctx
        self.pool = pool
        self.plan = plan
        self.trace = trace
        self._rng = rng
        #: Recovery machinery active?  False keeps the fault-free fast
        #: path: claim == pool.take, no events, no stats.
        self.enabled = plan is not None and plan.needs_recovery
        self.stats: Dict[str, int] = {}
        if not self.enabled:
            return
        self._tasks = plan.tasks
        self._spec = plan.speculation
        self._map_state: Dict[int, _MapState] = {}
        #: Requeued work: (MapTask, attempt_number, speculative, avoid_vm).
        self._retry_queue: Deque[tuple] = deque()
        self._crashed_vms: set = set()
        self._work_event: Event = env.event()
        self._map_durations: List[float] = []
        self._running_reduces: List[TaskAttempt] = []
        self.stats = {
            "map_attempts": 0,
            "map_retries": 0,
            "map_speculative": 0,
            "map_killed": 0,
            "map_failures": 0,
            "reduce_attempts": 0,
            "reduce_retries": 0,
            "reduce_killed": 0,
        }
        if self._spec.enabled:
            env.process(self._straggler_monitor())

    # -- map placement ------------------------------------------------------------
    def claim_map(self, vm_id: str):
        """Next unit of map work for a slot worker on ``vm_id``.

        Returns a :class:`TaskAttempt` to run, an :class:`Event` to
        wait on (work may still appear), or None (the worker may exit).
        """
        if not self.enabled:
            task = self.pool.take(vm_id)
            return TaskAttempt(task) if task is not None else None
        if vm_id in self._crashed_vms:
            return None
        entry = self._take_retry(vm_id)
        if entry is not None:
            task, number, speculative, _ = entry
            return self._start_map(
                MapTask(task.task_id, task.block, vm_id), number, speculative
            )
        task = self.pool.take(vm_id)
        if task is not None:
            return self._start_map(task, 0, False)
        if self.ctx.maps_finished >= self.ctx.n_maps:
            return None
        # Tasks may still fail, crash off their VM, or turn speculative:
        # wait for the manager to produce more work.
        return self._work_event

    def _take_retry(self, vm_id: str):
        """Pop the first requeued entry placeable on ``vm_id``."""
        for i, entry in enumerate(self._retry_queue):
            avoid = entry[3]
            if avoid == vm_id and self._n_alive() > 1:
                continue  # re-place away from where it just failed
            del self._retry_queue[i]
            return entry
        return None

    def _start_map(self, task: MapTask, number: int,
                   speculative: bool) -> TaskAttempt:
        attempt = TaskAttempt(
            task,
            number,
            speculative,
            fail_at=self._draw_fail_at("map", task.task_id, number,
                                       self._tasks.map_fail_prob),
            started_at=self.env.now,
        )
        state = self._map_state.setdefault(task.task_id, _MapState())
        state.attempts += 1
        state.running.append(attempt)
        if state.queued > 0:
            state.queued -= 1
        self.stats["map_attempts"] += 1
        if speculative:
            self.stats["map_speculative"] += 1
        return attempt

    def map_attempt_done(self, attempt: TaskAttempt) -> None:
        """A map slot worker finished running ``attempt`` (any outcome)."""
        if not self.enabled:
            return
        state = self._map_state[attempt.task.task_id]
        state.running.remove(attempt)
        if attempt.succeeded:
            state.done = True
            self._map_durations.append(self.env.now - attempt.started_at)
            # First finisher wins: rivals abort at their next checkpoint.
            for rival in state.running:
                rival.killed = True
            self._wake()
            return
        if state.done:
            # Lost the race with a sibling attempt.
            self.stats["map_killed"] += 1
            return
        if attempt.failed:
            state.failures += 1
            self.stats["map_failures"] += 1
        else:
            self.stats["map_killed"] += 1
        # Requeue unless a sibling attempt is still running or queued.
        if not state.running and state.queued == 0:
            self._requeue_map(attempt)

    def _requeue_map(self, attempt: TaskAttempt) -> None:
        state = self._map_state[attempt.task.task_id]
        number = attempt.number + 1
        state.queued += 1
        self._retry_queue.append(
            (attempt.task, number, attempt.speculative, attempt.vm_id)
        )
        self.stats["map_retries"] += 1
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "task.retry", kind="map",
                task_id=attempt.task.task_id, attempt=number,
                failed_on=attempt.vm_id,
            )
        self._wake()

    def claim_success(self, attempt: TaskAttempt) -> bool:
        """Register exactly one winner per task (called by task procs)."""
        if not self.enabled:
            attempt.succeeded = True
            return True
        if attempt.killed:
            return False
        if attempt.is_map:
            state = self._map_state[attempt.task.task_id]
            if state.done:
                return False
        attempt.succeeded = True
        return True

    # -- reduce placement ---------------------------------------------------------
    def start_reduce(self, task: ReduceTask) -> Optional[TaskAttempt]:
        """First attempt for a reduce task; None on the fault-free path."""
        if not self.enabled:
            return None
        self.stats["reduce_attempts"] += 1
        attempt = TaskAttempt(
            task,
            0,
            fail_at=self._draw_fail_at("reduce", task.reducer_idx, 0,
                                       self._tasks.reduce_fail_prob),
            started_at=self.env.now,
        )
        self._running_reduces.append(attempt)
        return attempt

    def reduce_attempt_done(self, attempt: TaskAttempt) -> Optional[TaskAttempt]:
        """Next attempt for a finished reduce attempt, or None if done."""
        if attempt in self._running_reduces:
            self._running_reduces.remove(attempt)
        if attempt.succeeded:
            return None
        if attempt.failed:
            self.stats["reduce_retries"] += 1
        else:
            self.stats["reduce_killed"] += 1
        number = attempt.number + 1
        task = attempt.task
        new_vm = self._replace_reduce_vm(task.vm_id)
        if new_vm != task.vm_id:
            task = ReduceTask(reducer_idx=task.reducer_idx, vm_id=new_vm)
        if self.trace is not None:
            self.trace.publish(
                self.env.now, "task.retry", kind="reduce",
                task_id=attempt.task.reducer_idx, attempt=number,
                failed_on=attempt.task.vm_id,
            )
        self.stats["reduce_attempts"] += 1
        retry = TaskAttempt(
            task,
            number,
            fail_at=self._draw_fail_at("reduce", task.reducer_idx, number,
                                       self._tasks.reduce_fail_prob),
            started_at=self.env.now,
        )
        self._running_reduces.append(retry)
        return retry

    def _replace_reduce_vm(self, failed_vm: str) -> str:
        """Deterministically re-place a reduce retry off ``failed_vm``."""
        alive = [vm.vm_id for vm in self.ctx.cluster.vms
                 if vm.vm_id not in self._crashed_vms]
        if not alive:
            return failed_vm
        candidates = [v for v in alive if v != failed_vm] or alive
        # Rotate by attempt volume so serial retries spread out.
        return candidates[self.stats["reduce_retries"] % len(candidates)]

    # -- crash handling ------------------------------------------------------------
    def on_vm_crashed(self, vm_id: str) -> None:
        """The TaskTracker on ``vm_id`` died: kill and rehome its work."""
        if not self.enabled:
            return
        self._crashed_vms.add(vm_id)
        # Kill running attempts placed there (they abort at the next
        # checkpoint; a kill does not count against max_attempts).
        for state in self._map_state.values():
            for attempt in state.running:
                if attempt.vm_id == vm_id:
                    attempt.killed = True
        for attempt in self._running_reduces:
            if attempt.vm_id == vm_id:
                attempt.killed = True
        # Rehome this VM's still-queued data-local tasks.
        for task in self.pool.evict(vm_id):
            state = self._map_state.setdefault(task.task_id, _MapState())
            state.queued += 1
            self._retry_queue.append((task, 0, False, vm_id))
        self._wake()

    def vm_alive(self, vm_id: str) -> bool:
        return not self.enabled or vm_id not in self._crashed_vms

    # -- speculation ---------------------------------------------------------------
    def _straggler_monitor(self):
        """Periodic scan for map attempts running far past the mean."""
        ctx = self.ctx
        spec = self._spec
        while ctx.maps_finished < ctx.n_maps:
            yield self.env.timeout(spec.check_interval_s)
            if ctx.maps_finished >= ctx.n_maps:
                return
            if ctx.maps_finished < spec.min_finished_fraction * ctx.n_maps:
                continue
            if self.pool.remaining() > 0 or self._retry_queue:
                continue  # slots have real work; don't burn them on backups
            if not self._map_durations:
                continue
            mean = sum(self._map_durations) / len(self._map_durations)
            threshold = spec.slowdown_threshold * mean
            for state in self._map_state.values():
                if state.done or state.speculated or state.queued:
                    continue
                if len(state.running) != 1:
                    continue
                attempt = state.running[0]
                if self.env.now - attempt.started_at <= threshold:
                    continue
                state.speculated = True
                state.queued += 1
                self._retry_queue.append(
                    (attempt.task, attempt.number + 1, True, attempt.vm_id)
                )
                if self.trace is not None:
                    self.trace.publish(
                        self.env.now, "task.speculative",
                        task_id=attempt.task.task_id,
                        running_on=attempt.vm_id,
                        elapsed=self.env.now - attempt.started_at,
                        mean=mean,
                    )
                self._wake()

    # -- internals -----------------------------------------------------------------
    def _draw_fail_at(self, kind: str, task_id: int, number: int,
                      prob: float) -> Optional[float]:
        """Pre-draw this attempt's failure point (None = succeeds).

        The final allowed attempt never fails (see
        :class:`~repro.faults.plan.TaskFaults`): kills from crashes or
        lost speculation races do not count against the bound.
        """
        if prob <= 0 or self._rng is None:
            return None
        if number >= self._tasks.max_attempts - 1:
            return None
        g = self._rng.stream(f"faults.{kind}{task_id}.a{number}")
        if g.random() >= prob:
            return None
        return float(g.random())

    def _n_alive(self) -> int:
        return len(self.ctx.cluster.vms) - len(self._crashed_vms)

    def _wake(self) -> None:
        """Release workers parked on the work event."""
        if not self._work_event.triggered:
            self._work_event.succeed()
            self._work_event = self.env.event()

    def fault_stats(self) -> Dict[str, int]:
        """Counters for :attr:`JobResult.fault_stats` (empty when inert)."""
        return dict(self.stats)
