"""A Hadoop-0.19-style MapReduce engine over the virtual cluster."""

from .job import JobConfig, JobSpec, MB
from .jobtracker import JobContext, MapReduceJob, TaskPool
from .map_task import MapTask, map_task_proc
from .multijob import (
    JOB_SCHEDULERS,
    MultiJobConfig,
    MultiJobResult,
    MultiJobTracker,
    SwitchPlan,
    job_scheduler,
)
from .phases import PHASE_NAMES, JobResult, PhaseTimes
from .reduce_task import ReduceTask, reduce_task_proc
from .shuffle import MapOutput, ShuffleService

__all__ = [
    "JOB_SCHEDULERS",
    "JobConfig",
    "JobContext",
    "JobResult",
    "JobSpec",
    "MB",
    "MapOutput",
    "MapReduceJob",
    "MapTask",
    "MultiJobConfig",
    "MultiJobResult",
    "MultiJobTracker",
    "PHASE_NAMES",
    "PhaseTimes",
    "ReduceTask",
    "ShuffleService",
    "SwitchPlan",
    "TaskPool",
    "job_scheduler",
    "map_task_proc",
    "reduce_task_proc",
]
