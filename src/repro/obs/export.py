"""Trace export: JSONL streaming and Chrome trace-event (Perfetto) files.

Two formats, one source of truth (:class:`~repro.sim.tracing.TraceRecord`):

* **JSONL** — one compact, key-sorted JSON object per record.  Because
  the encoder is canonical (sorted keys, fixed separators, ``repr``
  floats), re-exporting the same records is byte-identical — the
  determinism guard the test suite leans on.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.  VMs and devices map to tracks; phases,
  requests, switches, and faults map to duration events; one-shot
  markers map to instants.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

from ..sim.tracing import TraceRecord

__all__ = [
    "TopicFilter",
    "JsonlTraceWriter",
    "encode_record",
    "decode_record",
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Chrome trace timestamps are microseconds.
_US = 1e6


class TopicFilter:
    """Topic matcher mirroring ``TraceBus.record_topic`` globs.

    Accepts exact names, ``"family.*"`` prefixes, and ``"*"``; an empty
    pattern list means "everything".
    """

    def __init__(self, topics: Optional[Sequence[str]] = None):
        topics = list(topics or ["*"])
        self.match_all = "*" in topics
        self.exact = {t for t in topics if t != "*" and not t.endswith(".*")}
        self.prefixes = [t[:-1] for t in topics if t.endswith(".*")]

    def matches(self, topic: str) -> bool:
        if self.match_all or topic in self.exact:
            return True
        return any(topic.startswith(p) for p in self.prefixes)


def encode_record(record: TraceRecord) -> str:
    """Canonical one-line JSON for a record (byte-stable re-export)."""
    return json.dumps(
        {"time": record.time, "topic": record.topic, "payload": record.payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_record(line: str) -> TraceRecord:
    obj = json.loads(line)
    return TraceRecord(time=obj["time"], topic=obj["topic"],
                       payload=obj["payload"])


class JsonlTraceWriter:
    """Streaming JSONL sink with a topic filter and a ring-buffer cap.

    Usable as a trace-bus callback (it is callable) or fed explicitly
    via :meth:`add`.  With ``cap`` set, only the *last* ``cap`` matching
    records survive — bounding memory on long runs while keeping the
    interesting tail (the paper's diagnosis windows sit at phase
    boundaries, i.e. late in each phase).
    """

    def __init__(self, topics: Optional[Sequence[str]] = None,
                 cap: Optional[int] = None):
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive (or None for unbounded)")
        self.filter = TopicFilter(topics)
        self._ring: Deque[TraceRecord] = deque(maxlen=cap)
        self.dropped = 0

    def __call__(self, record: TraceRecord) -> None:
        self.add(record)

    def add(self, record: TraceRecord) -> None:
        if not self.filter.matches(record.topic):
            return
        if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.add(record)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._ring)

    def flush(self, path: Path | str) -> int:
        """Write the retained records to ``path``; returns the count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._ring:
                fh.write(encode_record(record))
                fh.write("\n")
        return len(self._ring)


def write_jsonl(records: Iterable[TraceRecord], path: Path | str,
                topics: Optional[Sequence[str]] = None,
                cap: Optional[int] = None) -> int:
    """One-shot export: filter, (optionally) cap, write; returns count."""
    writer = JsonlTraceWriter(topics=topics, cap=cap)
    writer.extend(records)
    return writer.flush(path)


def load_jsonl(path: Path | str) -> List[TraceRecord]:
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(decode_record(line))
    return records


# -- Chrome trace-event export --------------------------------------------------------


def _track_ids(records: Sequence[TraceRecord]) -> Dict[str, int]:
    """Stable pid assignment: every device (Dom0 disk or guest vdisk)
    gets its own track, sorted by name; pid 0 is the job/control track."""
    devices = sorted({
        r.payload["device"] for r in records
        if r.topic.startswith("disk.") and "device" in r.payload
    })
    return {name: pid for pid, name in enumerate(devices, start=1)}


def to_chrome_trace(records: Sequence[TraceRecord]) -> Dict[str, Any]:
    """Chrome trace-event JSON (dict form) for a recorded run.

    Mapping:

    * job phases (``job.start``/``maps_done``/``shuffle_done``/``done``)
      → ``X`` duration events on the ``job`` track (pid 0);
    * block requests (``disk.submit`` → ``disk.complete``) → ``X``
      events on the owning device's track, one per rid (merged rids
      share the completion edge);
    * elevator switches → ``X`` events spanning the measured stall;
    * faults with durations (``fault.vm_pause``, ``fault.disk_slow``)
      → ``X`` events; one-shot faults/retries/speculation → ``i``
      instants on the control track.
    """
    pids = _track_ids(records)
    events: List[Dict[str, Any]] = []
    for name, pid in [("job", 0), *sorted(pids.items())]:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    submits: Dict[tuple, TraceRecord] = {}
    marks: Dict[str, float] = {}

    def x_event(name, ts, dur, pid, cat, args=None):
        events.append({
            "name": name, "ph": "X", "ts": round(ts * _US, 3),
            "dur": round(max(dur, 0.0) * _US, 3), "pid": pid, "tid": 0,
            "cat": cat, "args": args or {},
        })

    def instant(name, ts, pid, cat, args=None):
        events.append({
            "name": name, "ph": "i", "ts": round(ts * _US, 3), "pid": pid,
            "tid": 0, "s": "g", "cat": cat, "args": args or {},
        })

    for record in records:
        topic, p, t = record.topic, record.payload, record.time
        if topic == "disk.submit":
            submits[(p["device"], p["rid"])] = record
        elif topic == "disk.complete":
            device = p["device"]
            pid = pids.get(device, 0)
            for rid in [p["rid"], *p.get("merged_rids", ())]:
                sub = submits.pop((device, rid), None)
                if sub is None:
                    continue
                x_event(
                    f"{sub.payload.get('op', 'io')} rid={rid}",
                    sub.time, t - sub.time, pid, "io",
                    {"lba": sub.payload.get("lba"),
                     "nsectors": sub.payload.get("nsectors"),
                     "process": sub.payload.get("process")},
                )
        elif topic == "disk.switched":
            stall = p.get("stall", 0.0)
            x_event(f"elv→{p.get('scheduler', '?')}", t - stall, stall,
                    pids.get(p["device"], 0), "switch")
        elif topic == "job.start":
            marks["start"] = t
        elif topic == "job.maps_done":
            if "start" in marks:
                x_event("phase:map", marks["start"], t - marks["start"], 0,
                        "phase")
            marks["maps_done"] = t
        elif topic == "job.shuffle_done":
            if "maps_done" in marks:
                x_event("phase:shuffle", marks["maps_done"],
                        t - marks["maps_done"], 0, "phase")
            marks["shuffle_done"] = t
        elif topic == "job.done":
            tail_from = marks.get("shuffle_done", marks.get("maps_done"))
            if tail_from is not None:
                x_event("phase:reduce", tail_from, t - tail_from, 0, "phase")
            marks["done"] = t
        elif topic == "fault.vm_pause":
            x_event(f"pause {p['vm']}", t, p.get("duration", 0.0), 0, "fault")
        elif topic == "fault.disk_slow":
            x_event(f"disk_slow {p['host']}", t, p.get("duration", 0.0), 0,
                    "fault", {"factor": p.get("factor")})
        elif topic in ("fault.vm_crash", "task.retry", "task.speculative",
                       "cluster.set_pair", "job.map_finished"):
            instant(topic, t, 0, topic.split(".")[0], dict(p))

    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0), e["pid"],
                               e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Sequence[TraceRecord], path: Path | str) -> int:
    """Write the Chrome trace for ``records``; returns the event count."""
    trace = to_chrome_trace(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, sort_keys=True), encoding="utf-8")
    return len(trace["traceEvents"])
