"""The machine-readable registry of every trace topic the simulator emits.

Single source of truth for the repo's topic taxonomy: the metrics
bridge (:class:`repro.obs.metrics.TraceMetrics`) subscribes to exactly
these names, ``repro lint``'s TRACE001 rule checks every
``TraceBus.publish``/``record_topic`` string literal against this set
(and flags registry entries nobody publishes as dead), and DESIGN.md's
"Observability" section documents the same list.

Adding a topic is a two-step change: publish it from the simulation and
add a :class:`TopicSpec` here (the linter fails the build if either
half is missing).  :mod:`repro.sim.tracing` deliberately does *not*
import this module at runtime — the bus stays policy-free and the
sim layer stays below obs — enforcement is static, via the linter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "TopicSpec",
    "TOPICS",
    "TOPIC_NAMES",
    "REGISTERED_TOPICS",
    "is_registered",
    "matching",
    "span_hint",
]


@dataclass(frozen=True)
class TopicSpec:
    """One registered trace topic."""

    #: Exact topic name as passed to ``TraceBus.publish``.
    name: str
    #: What one record on this topic means.
    doc: str
    #: Routing hint for causal-span reconstruction
    #: (:mod:`repro.obs.spans`): which span layer owns records on this
    #: topic.  One of ``"request"`` (per-rid block I/O), ``"task"``
    #: (per-process attempt), ``"job"`` (lifecycle/control), ``"fault"``
    #: (injected fault interval), ``"switch"`` (elevator switch stall).
    span: str = "job"


TOPICS: Tuple[TopicSpec, ...] = (
    # -- disk layer (per-device; payloads carry a ``device`` label) -----------
    TopicSpec("disk.submit", "request accepted into a device queue",
              span="request"),
    TopicSpec("disk.complete", "request (plus any merged rids) left the device",
              span="request"),
    TopicSpec("disk.service", "per-request seek/rotation/transfer time split",
              span="request"),
    TopicSpec("disk.switched", "elevator switch finished on a device (stall seconds)",
              span="switch"),
    # -- SSD backend (per-device; FTL internals) ------------------------------
    TopicSpec("ssd.gc", "greedy GC cycle: victim erased after relocating valid "
              "pages (moved/freed/write_amp in payload)"),
    TopicSpec("ssd.writeback", "write-cache flush to NAND (pages in payload)"),
    TopicSpec("ssd.channel", "NAND channel queue occupancy after a charge"),
    # -- guest filesystem (per-VM) --------------------------------------------
    TopicSpec("fs.read", "guest filesystem read completed", span="task"),
    TopicSpec("fs.write", "guest filesystem write completed", span="task"),
    # -- cluster / scheduler control ------------------------------------------
    TopicSpec("cluster.set_pair", "cluster applied a (VMM, VM) scheduler pair"),
    # -- MapReduce job lifecycle ----------------------------------------------
    TopicSpec("job.start", "job accepted; simulated clock at submission"),
    TopicSpec("job.map_finished", "one map task finished (done/total in payload)",
              span="task"),
    TopicSpec("job.maps_done", "last map task finished"),
    TopicSpec("job.shuffle_done", "last shuffle fetch finished (retrospective)"),
    TopicSpec("job.reduce_finished", "one reduce task finished", span="task"),
    TopicSpec("job.done", "job completed; simulated clock at completion"),
    TopicSpec("shuffle.fetch",
              "one logical shuffle partition fetched (live residual in "
              "``remaining``)", span="task"),
    # -- online adaptive control (repro.ctrl) ---------------------------------
    TopicSpec("ctrl.phase",
              "controller detected a phase boundary from live signals"),
    TopicSpec("ctrl.decision",
              "controller policy decided to switch or hold at a boundary"),
    TopicSpec("ctrl.switch",
              "controller-issued scheduler switch completed (stall seconds)",
              span="switch"),
    # -- multi-job scheduling / tenancy ---------------------------------------
    TopicSpec("sched.job_admitted", "multi-job tracker admitted an arriving job"),
    TopicSpec("sched.task_assigned", "a slot claimed a task (job/kind/vm in payload)"),
    TopicSpec("sched.job_done", "a multiplexed job completed (latency in payload)"),
    TopicSpec("tenant.job_latency", "per-tenant job latency sample at completion"),
    # -- recovery / speculation -----------------------------------------------
    TopicSpec("task.retry", "failed attempt re-queued (kind in payload)",
              span="task"),
    TopicSpec("task.speculative", "speculative backup attempt launched",
              span="task"),
    # -- fault injection ------------------------------------------------------
    TopicSpec("fault.disk_slow", "disk slow-down fault began on a host",
              span="fault"),
    TopicSpec("fault.disk_recover", "disk slow-down fault ended", span="fault"),
    TopicSpec("fault.vm_pause", "VM administratively paused", span="fault"),
    TopicSpec("fault.vm_resume", "paused VM resumed", span="fault"),
    TopicSpec("fault.vm_crash", "VM crashed (permanently, for the run)",
              span="fault"),
)

#: Topic names in registry order (what ``TraceMetrics`` subscribes to).
TOPIC_NAMES: Tuple[str, ...] = tuple(spec.name for spec in TOPICS)

#: The set form, for membership tests.
REGISTERED_TOPICS = frozenset(TOPIC_NAMES)


_SPAN_BY_NAME = {spec.name: spec.span for spec in TOPICS}


def is_registered(topic: str) -> bool:
    """True when ``topic`` is an exact registered topic name."""
    return topic in REGISTERED_TOPICS


def span_hint(topic: str) -> str:
    """The span layer owning records on ``topic`` (``"job"`` when the
    topic is unregistered — lifecycle is the catch-all owner)."""
    return _SPAN_BY_NAME.get(topic, "job")


def matching(pattern: str) -> Tuple[str, ...]:
    """Registered topics matched by ``pattern``, in registry order.

    Mirrors ``TraceBus.record_topic`` semantics: ``"*"`` matches every
    topic, ``"family.*"`` matches the family prefix, anything else is
    an exact name.
    """
    if pattern == "*":
        return TOPIC_NAMES
    if pattern.endswith(".*"):
        prefix = pattern[:-1]  # keep the dot: "disk.*" -> "disk."
        return tuple(name for name in TOPIC_NAMES if name.startswith(prefix))
    return tuple(name for name in TOPIC_NAMES if name == pattern)
