"""The ``repro report`` renderer: trace file → tables and a timeline.

Reads the JSONL artifacts written by :mod:`repro.obs.capture` (one file
per simulated run), replays them through :class:`TraceMetrics`, and
prints per-phase durations, per-device I/O metrics, and an ASCII phase
timeline — everything needed to diagnose a run without re-simulating.
Optionally re-exports the records as a Chrome trace for Perfetto.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..metrics.summary import format_table
from ..sim.tracing import TraceRecord
from .export import load_jsonl, write_chrome_trace
from .metrics import TraceMetrics

__all__ = [
    "trace_files",
    "phase_durations",
    "device_rows",
    "render_timeline",
    "render_report",
    "report_path",
]

_LABEL_RE = re.compile(r"\{([^}]*)\}")


def trace_files(path: Path | str) -> List[Path]:
    """The trace files a report argument refers to.

    A file is reported alone; a directory means every ``*.trace.jsonl``
    (or bare ``*.jsonl``) inside it, sorted by name for stable output.
    """
    path = Path(path)
    if path.is_file():
        return [path]
    if path.is_dir():
        found = sorted(path.glob("*.trace.jsonl")) or sorted(path.glob("*.jsonl"))
        if found:
            return found
        raise FileNotFoundError(f"no .jsonl trace files in {path}")
    raise FileNotFoundError(f"no such trace file or directory: {path}")


def phase_durations(records: Sequence[TraceRecord]) -> Dict[str, Tuple[float, float]]:
    """Phase name → (start, end) in simulated seconds, from job topics."""
    marks: Dict[str, float] = {}
    for record in records:
        if record.topic == "job.start":
            marks.setdefault("start", record.time)
        elif record.topic == "job.maps_done":
            marks["maps_done"] = record.time
        elif record.topic == "job.shuffle_done":
            marks["shuffle_done"] = record.time
        elif record.topic == "job.done":
            marks["end"] = record.time
    phases: Dict[str, Tuple[float, float]] = {}
    start, end = marks.get("start"), marks.get("end")
    if start is None or end is None:
        return phases
    maps_done = marks.get("maps_done", end)
    shuffle_done = marks.get("shuffle_done", end)
    phases["map"] = (start, maps_done)
    phases["shuffle"] = (maps_done, shuffle_done)
    phases["reduce"] = (shuffle_done, end)
    return phases


def _labelled(metrics: Dict[str, Any], prefix: str) -> Dict[str, Any]:
    """``{label-value: metric}`` for keys like ``prefix{device=NAME}``."""
    out: Dict[str, Any] = {}
    for key, value in metrics.items():
        if not key.startswith(prefix + "{"):
            continue
        match = _LABEL_RE.search(key)
        if match:
            label = match.group(1).split("=", 1)[1]
            out[label] = value
    return out


def device_rows(snapshot: Dict[str, Any]) -> List[List[Any]]:
    """Per-device I/O table rows from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    submitted = _labelled(counters, "disk.submitted")
    completed = _labelled(counters, "disk.completed")
    merged = _labelled(counters, "disk.merged")
    nbytes = _labelled(counters, "disk.bytes")
    stalls = _labelled(counters, "sched.switch_stall_seconds")
    depth_max = {k: g["max"] for k, g in _labelled(gauges, "disk.queue_depth").items()}
    latency = {k: h.get("mean", 0.0)
               for k, h in _labelled(histograms, "disk.latency").items()}
    rows = []
    for device in sorted(submitted):
        rows.append([
            device,
            int(submitted.get(device, 0)),
            int(completed.get(device, 0)),
            int(merged.get(device, 0)),
            nbytes.get(device, 0.0) / (1024 * 1024),
            int(depth_max.get(device, 0)),
            1000.0 * latency.get(device, 0.0),
            stalls.get(device, 0.0),
        ])
    return rows


def render_timeline(phases: Dict[str, Tuple[float, float]], width: int = 60) -> str:
    """ASCII phase timeline: one bar per phase, aligned to job time."""
    if not phases:
        return "(no job phase records in this trace)"
    t0 = min(start for start, _ in phases.values())
    t1 = max(end for _, end in phases.values())
    span = max(t1 - t0, 1e-9)
    lines = [f"timeline [{t0:.1f}s .. {t1:.1f}s]"]
    for name, (start, end) in phases.items():
        lead = int(round((start - t0) / span * width))
        bar = max(1, int(round((end - start) / span * width)))
        lines.append(
            f"  {name:<8}|{' ' * lead}{'#' * bar}"
            f"{' ' * max(0, width - lead - bar)}| {end - start:.1f}s"
        )
    return "\n".join(lines)


def render_report(records: Sequence[TraceRecord], title: str = "") -> str:
    """The full text report for one run's records."""
    snapshot = TraceMetrics().replay(records).registry.snapshot()
    phases = phase_durations(records)
    parts: List[str] = []
    if title:
        parts.append(f"== {title} ==")
    parts.append(f"{len(records)} trace records")

    if phases:
        parts.append(format_table(
            ["phase", "start s", "end s", "duration s"],
            [[name, start, end, end - start]
             for name, (start, end) in phases.items()],
            title="per-phase durations",
        ))
        parts.append(render_timeline(phases))

    rows = device_rows(snapshot)
    if rows:
        parts.append(format_table(
            ["device", "submitted", "completed", "merged", "MB",
             "max depth", "mean lat ms", "switch stall s"],
            rows,
            title="per-device I/O",
        ))

    counters = snapshot.get("counters", {})
    extras = []
    for key in ("cluster.pair_switches", "sched.switch_stall_seconds_total",
                "job.maps_finished", "job.reduces_finished",
                "task.speculative"):
        if key in counters:
            extras.append([key, counters[key]])
    extras.extend(
        [key, value] for key, value in sorted(counters.items())
        if key.startswith(("faults{", "task.retries{"))
    )
    if extras:
        parts.append(format_table(["metric", "value"], extras, title="counters"))
    return "\n\n".join(parts)


def report_path(path: Path | str, chrome_out: Optional[Path | str] = None) -> str:
    """Report every trace file under ``path``; optionally write a merged
    Chrome trace of all their records to ``chrome_out``."""
    files = trace_files(path)
    sections = []
    all_records: List[TraceRecord] = []
    for file in files:
        records = load_jsonl(file)
        all_records.extend(records)
        sections.append(render_report(records, title=file.name))
    if chrome_out is not None:
        n = write_chrome_trace(all_records, chrome_out)
        sections.append(f"wrote {n} Chrome trace events to {chrome_out}")
    return "\n\n".join(sections)
