"""The ``repro report`` renderer: trace file → tables and a timeline.

Reads the JSONL artifacts written by :mod:`repro.obs.capture` (one file
per simulated run), replays them through :class:`TraceMetrics`, and
prints per-phase durations, per-device I/O metrics, and an ASCII phase
timeline — everything needed to diagnose a run without re-simulating.
Optionally re-exports the records as a Chrome trace for Perfetto.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..metrics.summary import format_table
from ..sim.tracing import TraceRecord
from .export import load_jsonl, write_chrome_trace
from .metrics import TraceMetrics
from .spans import (blame_rows, blame_summary, critical_path,
                    critical_path_rows, write_span_trace)

__all__ = [
    "ReportError",
    "MissingTraceError",
    "EmptyTraceError",
    "trace_files",
    "phase_durations",
    "device_kinds",
    "device_rows",
    "device_dicts",
    "render_timeline",
    "render_report",
    "render_critical_path",
    "report_json",
    "report_path",
    "REPORT_SCHEMA",
]

_LABEL_RE = re.compile(r"\{([^}]*)\}")

#: Version tag stamped on every ``repro report --json`` document.
REPORT_SCHEMA = "repro.report/1"


class ReportError(RuntimeError):
    """Base class for named report failures (the CLI exits 2 on these)."""


class MissingTraceError(ReportError, FileNotFoundError):
    """The report argument names no trace files.

    Also a :class:`FileNotFoundError` so callers that predate the named
    hierarchy keep working.
    """


class EmptyTraceError(ReportError):
    """The named trace files exist but hold zero records."""


def trace_files(path: Path | str) -> List[Path]:
    """The trace files a report argument refers to.

    A file is reported alone; a directory means every ``*.trace.jsonl``
    (or bare ``*.jsonl``) inside it, sorted by name for stable output.
    Raises :class:`MissingTraceError` when nothing matches.
    """
    path = Path(path)
    if path.is_file():
        return [path]
    if path.is_dir():
        found = sorted(path.glob("*.trace.jsonl")) or sorted(path.glob("*.jsonl"))
        if found:
            return found
        raise MissingTraceError(f"no .jsonl trace files in {path}")
    raise MissingTraceError(f"no such trace file or directory: {path}")


def phase_durations(records: Sequence[TraceRecord]) -> Dict[str, Tuple[float, float]]:
    """Phase name → (start, end) in simulated seconds, from job topics."""
    marks: Dict[str, float] = {}
    for record in records:
        if record.topic == "job.start":
            marks.setdefault("start", record.time)
        elif record.topic == "job.maps_done":
            marks["maps_done"] = record.time
        elif record.topic == "job.shuffle_done":
            marks["shuffle_done"] = record.time
        elif record.topic == "job.done":
            marks["end"] = record.time
    phases: Dict[str, Tuple[float, float]] = {}
    start, end = marks.get("start"), marks.get("end")
    if start is None or end is None:
        return phases
    maps_done = marks.get("maps_done", end)
    shuffle_done = marks.get("shuffle_done", end)
    phases["map"] = (start, maps_done)
    phases["shuffle"] = (maps_done, shuffle_done)
    phases["reduce"] = (shuffle_done, end)
    return phases


def _labelled(metrics: Dict[str, Any], prefix: str) -> Dict[str, Any]:
    """``{label-value: metric}`` for keys like ``prefix{device=NAME}``."""
    out: Dict[str, Any] = {}
    for key, value in metrics.items():
        if not key.startswith(prefix + "{"):
            continue
        match = _LABEL_RE.search(key)
        if match:
            label = match.group(1).split("=", 1)[1]
            out[label] = value
    return out


#: Column names for :func:`device_rows`, shared by the text table and
#: the JSON emitter so the two never drift.  ``kind`` sits last so the
#: positional indices of the older columns stay stable.
DEVICE_FIELDS = ("device", "submitted", "completed", "merged", "mb",
                 "max_depth", "mean_latency_ms", "switch_stall_s", "kind")


def device_kinds(records: Sequence[TraceRecord]) -> Dict[str, str]:
    """Device name → backend kind, from ``disk.submit`` records.

    The ``kind`` field (hdd/ssd/vdisk/...) was added to the submit
    payload alongside the storage-backend registry; traces captured
    before that carry no field and fall back to the generic ``"disk"``.
    """
    kinds: Dict[str, str] = {}
    for record in records:
        if record.topic == "disk.submit":
            kinds.setdefault(record.payload["device"],
                             record.payload.get("kind", "disk"))
    return kinds


def device_dicts(snapshot: Dict[str, Any],
                 kinds: Optional[Dict[str, str]] = None) -> List[Dict[str, Any]]:
    """Per-device I/O rows as JSON objects (``repro report --json``)."""
    return [dict(zip(DEVICE_FIELDS, row))
            for row in device_rows(snapshot, kinds)]


def device_rows(snapshot: Dict[str, Any],
                kinds: Optional[Dict[str, str]] = None) -> List[List[Any]]:
    """Per-device I/O table rows from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    submitted = _labelled(counters, "disk.submitted")
    completed = _labelled(counters, "disk.completed")
    merged = _labelled(counters, "disk.merged")
    nbytes = _labelled(counters, "disk.bytes")
    stalls = _labelled(counters, "sched.switch_stall_seconds")
    depth_max = {k: g["max"] for k, g in _labelled(gauges, "disk.queue_depth").items()}
    latency = {k: h.get("mean", 0.0)
               for k, h in _labelled(histograms, "disk.latency").items()}
    kinds = kinds or {}
    rows = []
    for device in sorted(submitted):
        rows.append([
            device,
            int(submitted.get(device, 0)),
            int(completed.get(device, 0)),
            int(merged.get(device, 0)),
            nbytes.get(device, 0.0) / (1024 * 1024),
            int(depth_max.get(device, 0)),
            1000.0 * latency.get(device, 0.0),
            stalls.get(device, 0.0),
            kinds.get(device, "disk"),
        ])
    return rows


def render_timeline(phases: Dict[str, Tuple[float, float]], width: int = 60) -> str:
    """ASCII phase timeline: one bar per phase, aligned to job time."""
    if not phases:
        return "(no job phase records in this trace)"
    t0 = min(start for start, _ in phases.values())
    t1 = max(end for _, end in phases.values())
    span = max(t1 - t0, 1e-9)
    lines = [f"timeline [{t0:.1f}s .. {t1:.1f}s]"]
    for name, (start, end) in phases.items():
        lead = int(round((start - t0) / span * width))
        bar = max(1, int(round((end - start) / span * width)))
        lines.append(
            f"  {name:<8}|{' ' * lead}{'#' * bar}"
            f"{' ' * max(0, width - lead - bar)}| {end - start:.1f}s"
        )
    return "\n".join(lines)


def render_report(records: Sequence[TraceRecord], title: str = "") -> str:
    """The full text report for one run's records."""
    snapshot = TraceMetrics().replay(records).registry.snapshot()
    phases = phase_durations(records)
    parts: List[str] = []
    if title:
        parts.append(f"== {title} ==")
    parts.append(f"{len(records)} trace records")

    if phases:
        parts.append(format_table(
            ["phase", "start s", "end s", "duration s"],
            [[name, start, end, end - start]
             for name, (start, end) in phases.items()],
            title="per-phase durations",
        ))
        parts.append(render_timeline(phases))

    rows = device_rows(snapshot, device_kinds(records))
    if rows:
        parts.append(format_table(
            ["device", "submitted", "completed", "merged", "MB",
             "max depth", "mean lat ms", "switch stall s", "kind"],
            rows,
            title="per-device I/O",
        ))

    counters = snapshot.get("counters", {})
    extras = []
    for key in ("cluster.pair_switches", "sched.switch_stall_seconds_total",
                "job.maps_finished", "job.reduces_finished",
                "task.speculative"):
        if key in counters:
            extras.append([key, counters[key]])
    extras.extend(
        [key, value] for key, value in sorted(counters.items())
        if key.startswith(("faults{", "task.retries{"))
    )
    if extras:
        parts.append(format_table(["metric", "value"], extras, title="counters"))
    return "\n\n".join(parts)


def render_critical_path(records: Sequence[TraceRecord]) -> str:
    """Critical-path and blame tables for one run's records."""
    segments = critical_path(records)
    if not segments:
        return "(no critical path: the trace has no timed records)"
    summary = blame_summary(segments)
    parts = [format_table(
        ["phase", "owner", "kind", "start s", "end s", "dur s", "vm",
         "device", "io wait s", "service s"],
        critical_path_rows(segments),
        title="critical path",
        floatfmt=".3f",
    )]
    parts.append(format_table(
        ["phase", "dur s", "task", "fault", "switch", "idle", "io wait",
         "service"],
        blame_rows(summary),
        title="per-phase blame (critical-path seconds)",
        floatfmt=".3f",
    ))
    culprits = ", ".join(
        f"{o['owner']} ({o['seconds']:.3f}s)" for o in summary["top_owners"]
    )
    parts.append(
        f"critical path: {summary['segments']} segments summing to "
        f"{summary['makespan']:.3f}s"
        + (f"; top owners: {culprits}" if culprits else "")
    )
    return "\n\n".join(parts)


def _segment_dicts(segments) -> List[Dict[str, Any]]:
    return [{
        "phase": seg.phase, "owner": seg.owner, "kind": seg.kind,
        "start": seg.start, "end": seg.end, "duration": seg.duration,
        "vm": seg.vm, "device": seg.device, "io_wait": seg.io_wait,
        "service": seg.service,
    } for seg in segments]


def report_json(path: Path | str, critical: bool = False,
                spans_out: Optional[Path | str] = None) -> Dict[str, Any]:
    """The machine-readable report document (``repro report --json``).

    Schema (``repro.report/1``): ``{"schema", "files": [{"file",
    "records", "phases", "devices", "counters"[, "critical_path"]}]}``
    with phases as ``{name: {start, end, duration}}``, devices as
    :func:`device_dicts` rows, and ``critical_path`` (on request) as
    ``{"segments": [...], "blame": blame_summary}``.  Raises
    :class:`MissingTraceError`/:class:`EmptyTraceError` instead of
    reporting on nothing.
    """
    files = trace_files(path)
    doc: Dict[str, Any] = {"schema": REPORT_SCHEMA, "files": []}
    total = 0
    all_records: List[TraceRecord] = []
    for file in files:
        records = load_jsonl(file)
        all_records.extend(records)
        total += len(records)
        snapshot = TraceMetrics().replay(records).registry.snapshot()
        entry: Dict[str, Any] = {
            "file": file.name,
            "records": len(records),
            "phases": {
                name: {"start": s, "end": e, "duration": e - s}
                for name, (s, e) in phase_durations(records).items()
            },
            "devices": device_dicts(snapshot, device_kinds(records)),
            "counters": snapshot.get("counters", {}),
        }
        if critical:
            segments = critical_path(records)
            entry["critical_path"] = {
                "segments": _segment_dicts(segments),
                "blame": blame_summary(segments),
            }
        doc["files"].append(entry)
    if total == 0:
        raise EmptyTraceError(
            f"trace files under {path} contain no records "
            "(was the run traced with a too-narrow --trace-topics?)"
        )
    if spans_out is not None:
        write_span_trace(all_records, spans_out)
    return doc


def report_path(path: Path | str, chrome_out: Optional[Path | str] = None,
                critical: bool = False,
                spans_out: Optional[Path | str] = None) -> str:
    """Report every trace file under ``path``.

    ``critical`` appends the critical-path/blame tables per file;
    ``chrome_out`` writes a merged Chrome trace of all records;
    ``spans_out`` writes the merged span-tree/critical-path Perfetto
    export.  Raises :class:`EmptyTraceError` when the files hold no
    records at all.
    """
    files = trace_files(path)
    sections = []
    all_records: List[TraceRecord] = []
    for file in files:
        records = load_jsonl(file)
        all_records.extend(records)
        sections.append(render_report(records, title=file.name))
        if critical and records:
            sections.append(render_critical_path(records))
    if not all_records:
        raise EmptyTraceError(
            f"trace files under {path} contain no records "
            "(was the run traced with a too-narrow --trace-topics?)"
        )
    if chrome_out is not None:
        n = write_chrome_trace(all_records, chrome_out)
        sections.append(f"wrote {n} Chrome trace events to {chrome_out}")
    if spans_out is not None:
        n = write_span_trace(all_records, spans_out)
        sections.append(f"wrote {n} span trace events to {spans_out}")
    return "\n\n".join(sections)
