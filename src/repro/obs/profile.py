"""Wall-clock profiling of sweep-runner execution.

Unlike :mod:`repro.obs.metrics` (simulation time, deterministic), this
module measures the *harness itself*: how long each
:class:`~repro.runner.spec.RunSpec` batch spent in lookup vs execution,
how well the process pool was utilised, and what the on-disk cache did.
Numbers here never flow into payloads or cache keys — they are printed
after a sweep and thrown away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["BatchProfile", "SweepProfiler"]


@dataclass
class BatchProfile:
    """Timings for one ``run_specs`` call."""

    specs: int
    executed: int
    memo_hits: int
    cache_hits: int
    #: Seconds resolving memo/disk-cache lookups (the cheap stage).
    lookup_seconds: float
    #: Wall seconds inside the execute stage (fan-out inclusive).
    execute_seconds: float
    #: Summed per-run simulation seconds (across workers; can exceed
    #: ``execute_seconds`` under parallelism).
    busy_seconds: float


@dataclass
class SweepProfiler:
    """Accumulates :class:`BatchProfile` rows for one runner's lifetime."""

    jobs: int = 1
    batches: List[BatchProfile] = field(default_factory=list)

    def record_batch(self, batch: BatchProfile) -> None:
        self.batches.append(batch)

    # -- aggregates -----------------------------------------------------------------
    @property
    def specs(self) -> int:
        return sum(b.specs for b in self.batches)

    @property
    def executed(self) -> int:
        return sum(b.executed for b in self.batches)

    @property
    def lookup_seconds(self) -> float:
        return sum(b.lookup_seconds for b in self.batches)

    @property
    def execute_seconds(self) -> float:
        return sum(b.execute_seconds for b in self.batches)

    @property
    def busy_seconds(self) -> float:
        return sum(b.busy_seconds for b in self.batches)

    def worker_utilization(self) -> float:
        """Busy fraction of the pool during execute stages (0..1).

        1.0 means every worker simulated for the whole execute window;
        low values mean the fan-out was starved (few specs) or skewed
        (one long run serialised the batch).
        """
        denom = self.execute_seconds * max(self.jobs, 1)
        if denom <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / denom)

    def snapshot(self, cache_stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "jobs": self.jobs,
            "batches": len(self.batches),
            "specs": self.specs,
            "executed": self.executed,
            "memo_hits": sum(b.memo_hits for b in self.batches),
            "cache_hits": sum(b.cache_hits for b in self.batches),
            "lookup_seconds": self.lookup_seconds,
            "execute_seconds": self.execute_seconds,
            "busy_seconds": self.busy_seconds,
            "worker_utilization": self.worker_utilization(),
        }
        if cache_stats is not None:
            snap["cache"] = dict(cache_stats)
        return snap

    def summary(self, cache_stats: Optional[Dict[str, Any]] = None) -> str:
        """One human line per concern, for the CLI's post-sweep report."""
        lines = [
            f"profile: {len(self.batches)} batches, {self.specs} specs "
            f"({self.executed} executed), lookup {self.lookup_seconds:.2f}s, "
            f"execute {self.execute_seconds:.2f}s",
            f"profile: workers {self.jobs}, busy {self.busy_seconds:.2f}s, "
            f"utilization {100 * self.worker_utilization():.0f}%",
        ]
        if cache_stats:
            line = (
                "profile: cache hits {hits}, misses {misses}, "
                "read {bytes_read} B, wrote {bytes_written} B".format(**cache_stats)
            )
            if cache_stats.get("bypassed"):
                line += ", bypassed {bypassed}".format(**cache_stats)
            lines.append(line)
        return "\n".join(lines)
