"""Per-run trace capture, switchable from the CLI across worker processes.

The sweep runner executes :class:`~repro.runner.spec.RunSpec`s in worker
*processes*, so the capture switch travels as environment variables
(``REPRO_TRACE_OUT`` / ``REPRO_TRACE_TOPICS`` / ``REPRO_TRACE_CAP`` /
``REPRO_TRACE_WINDOW``) that the pool's children inherit.  When active,
:func:`repro.runner.kinds.execute_spec` opens a :class:`RunCapture`
around each simulation: the run's components get a recording
:class:`~repro.sim.tracing.TraceBus`, and the records + a metrics
snapshot land in the capture directory as

    <out>/<kind>-seed<seed>-<key12>.trace.jsonl
    <out>/<kind>-seed<seed>-<key12>.metrics.json

(the 12-hex ``key12`` is the run's content-addressed spec-key prefix, so
file names are deterministic and collision-free across a sweep).

Capture is **streaming and memory-bounded**: when constructed with the
run's spec (the ``execute_spec`` path), the bus retains nothing — each
matched record flows through a :class:`~repro.obs.spill.TraceSpiller`
(windowed JSONL appends, at most ``window`` records in memory) and a
live :class:`~repro.obs.metrics.TraceMetrics` fold.  The resulting
artifacts are byte-identical to the old buffer-everything path, which
``tests/obs/test_spill.py`` pins across seeds.  Without a spec (ad-hoc
use, tests) the bus buffers as before and :meth:`RunCapture.finish`
exports in one shot.

Capture is strictly a side channel: payloads, cache keys, and cached
records are byte-identical with capture on or off — trace publication
costs no simulated time — which is what lets ``--trace-out`` coexist
with the bit-identity guarantees in ``tests/integration``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from ..sim.tracing import TraceBus
from .export import write_jsonl
from .metrics import TraceMetrics
from .spill import DEFAULT_WINDOW, TraceSpiller

__all__ = [
    "ENV_TRACE_OUT",
    "ENV_TRACE_TOPICS",
    "ENV_TRACE_CAP",
    "ENV_TRACE_WINDOW",
    "CaptureConfig",
    "config_from_env",
    "enable",
    "disable",
    "RunCapture",
    "current_bus",
]

ENV_TRACE_OUT = "REPRO_TRACE_OUT"
ENV_TRACE_TOPICS = "REPRO_TRACE_TOPICS"
ENV_TRACE_CAP = "REPRO_TRACE_CAP"
ENV_TRACE_WINDOW = "REPRO_TRACE_WINDOW"


@dataclass(frozen=True)
class CaptureConfig:
    """Where to put per-run trace artifacts and which topics to keep."""

    out_dir: str
    topics: Tuple[str, ...] = ("*",)
    #: Ring-buffer cap on exported records per run (None = unbounded).
    cap: Optional[int] = None
    #: Records held in memory between streaming appends (ignored when
    #: ``cap`` is set — the ring itself is the memory bound then).
    window: int = DEFAULT_WINDOW


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"${name} must be an integer, got {raw!r}") from None


def config_from_env() -> Optional[CaptureConfig]:
    """The active capture config, or ``None`` when capture is off.

    Read per call (not cached) so worker processes and tests that flip
    the environment mid-process see the current state.
    """
    out_dir = os.environ.get(ENV_TRACE_OUT)
    if not out_dir:
        return None
    raw_topics = os.environ.get(ENV_TRACE_TOPICS, "*")
    topics = tuple(t.strip() for t in raw_topics.split(",") if t.strip()) or ("*",)
    cap = _env_int(ENV_TRACE_CAP)
    window = _env_int(ENV_TRACE_WINDOW)
    return CaptureConfig(
        out_dir=out_dir, topics=topics, cap=cap,
        window=window if window is not None else DEFAULT_WINDOW,
    )


def enable(out_dir: os.PathLike | str, topics: Tuple[str, ...] = ("*",),
           cap: Optional[int] = None, window: Optional[int] = None) -> None:
    """Turn capture on process-wide (and for future worker children)."""
    os.environ[ENV_TRACE_OUT] = str(out_dir)
    os.environ[ENV_TRACE_TOPICS] = ",".join(topics)
    if cap is not None:
        os.environ[ENV_TRACE_CAP] = str(cap)
    if window is not None:
        os.environ[ENV_TRACE_WINDOW] = str(window)


def disable() -> None:
    os.environ.pop(ENV_TRACE_OUT, None)
    os.environ.pop(ENV_TRACE_TOPICS, None)
    os.environ.pop(ENV_TRACE_CAP, None)
    os.environ.pop(ENV_TRACE_WINDOW, None)


#: The bus of the capture currently wrapping ``execute_spec`` in this
#: process, if any.  Kind functions consult this to thread tracing into
#: the simulations they build.
_current: Optional[TraceBus] = None


def current_bus() -> Optional[TraceBus]:
    return _current


class RunCapture:
    """One run's recording bus plus the artifact writer.

    Context-manager form keeps ``execute_spec`` tidy::

        with RunCapture(cfg, spec=spec) as cap:
            payload = fn(spec.config, spec.seed)
        cap.finish(spec)

    With ``spec`` the capture streams (bounded memory: records spill to
    ``<base>.trace.jsonl`` in windows while metrics fold live); without
    it, the bus buffers everything and :meth:`finish` exports in one
    shot — handy for ad-hoc captures that inspect ``bus.records``.
    A failed run (exception inside the ``with``) aborts the streaming
    writer, leaving no half-written ``.trace.jsonl`` behind.
    """

    def __init__(self, config: CaptureConfig, spec=None):
        self.config = config
        self.bus = TraceBus()
        for topic in config.topics:
            self.bus.record_topic(topic)
        self._spiller: Optional[TraceSpiller] = None
        self._metrics: Optional[TraceMetrics] = None
        self.trace_path: Optional[Path] = None
        self.metrics_path: Optional[Path] = None
        if spec is not None:
            out = Path(config.out_dir)
            base = self.artifact_base(spec)
            self.trace_path = out / f"{base}.trace.jsonl"
            self.metrics_path = out / f"{base}.metrics.json"
            # Sinks see the record stream the buffered bus would have
            # kept (same topic filter, same order): the spiller applies
            # the ring cap itself, the metrics fold is uncapped exactly
            # like the old replay-over-all-records path.
            self._spiller = TraceSpiller(
                self.trace_path, window=config.window, cap=config.cap
            )
            self._metrics = TraceMetrics()
            self.bus.add_sink(self._spiller)
            self.bus.add_sink(self._metrics.handle)
            self.bus.retain_records = False

    def __enter__(self) -> "RunCapture":
        global _current
        self._previous = _current
        _current = self.bus
        return self

    def __exit__(self, exc_type, *exc) -> None:
        global _current
        _current = self._previous
        if exc_type is not None and self._spiller is not None:
            self._spiller.abort()

    def artifact_base(self, spec) -> str:
        # Imported lazily: repro.runner imports repro.obs.capture at
        # module load (via kinds), so the reverse edge must not run at
        # import time.
        from ..runner.spec import spec_key

        return f"{spec.kind}-seed{spec.seed}-{spec_key(spec)[:12]}"

    def finish(self, spec=None) -> Tuple[Path, Path]:
        """Write the run's trace JSONL and metrics JSON; returns paths."""
        if self._spiller is not None:
            assert self.trace_path is not None and self.metrics_path is not None
            self._spiller.close()
            snapshot = self._metrics.registry.snapshot()
            trace_path, metrics_path = self.trace_path, self.metrics_path
        else:
            if spec is None:
                raise TypeError("buffered RunCapture.finish() needs the spec")
            out = Path(self.config.out_dir)
            base = self.artifact_base(spec)
            trace_path = out / f"{base}.trace.jsonl"
            metrics_path = out / f"{base}.metrics.json"
            write_jsonl(self.bus.records, trace_path, cap=self.config.cap)
            snapshot = TraceMetrics().replay(self.bus.records).registry.snapshot()
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(snapshot, sort_keys=True, indent=1), encoding="utf-8"
        )
        return trace_path, metrics_path
