"""Per-run trace capture, switchable from the CLI across worker processes.

The sweep runner executes :class:`~repro.runner.spec.RunSpec`s in worker
*processes*, so the capture switch travels as environment variables
(``REPRO_TRACE_OUT`` / ``REPRO_TRACE_TOPICS``) that the pool's children
inherit.  When active, :func:`repro.runner.kinds.execute_spec` opens a
:class:`RunCapture` around each simulation: the run's components get a
recording :class:`~repro.sim.tracing.TraceBus`, and on completion the
records and a metrics snapshot land in the capture directory as

    <out>/<kind>-seed<seed>-<key12>.trace.jsonl
    <out>/<kind>-seed<seed>-<key12>.metrics.json

(the 12-hex ``key12`` is the run's content-addressed spec-key prefix, so
file names are deterministic and collision-free across a sweep).

Capture is strictly a side channel: payloads, cache keys, and cached
records are byte-identical with capture on or off — trace publication
costs no simulated time — which is what lets ``--trace-out`` coexist
with the bit-identity guarantees in ``tests/integration``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from ..sim.tracing import TraceBus
from .export import write_jsonl
from .metrics import TraceMetrics

__all__ = [
    "ENV_TRACE_OUT",
    "ENV_TRACE_TOPICS",
    "CaptureConfig",
    "config_from_env",
    "enable",
    "disable",
    "RunCapture",
    "current_bus",
]

ENV_TRACE_OUT = "REPRO_TRACE_OUT"
ENV_TRACE_TOPICS = "REPRO_TRACE_TOPICS"


@dataclass(frozen=True)
class CaptureConfig:
    """Where to put per-run trace artifacts and which topics to keep."""

    out_dir: str
    topics: Tuple[str, ...] = ("*",)
    #: Ring-buffer cap on exported records per run (None = unbounded).
    cap: Optional[int] = None


def config_from_env() -> Optional[CaptureConfig]:
    """The active capture config, or ``None`` when capture is off.

    Read per call (not cached) so worker processes and tests that flip
    the environment mid-process see the current state.
    """
    out_dir = os.environ.get(ENV_TRACE_OUT)
    if not out_dir:
        return None
    raw_topics = os.environ.get(ENV_TRACE_TOPICS, "*")
    topics = tuple(t.strip() for t in raw_topics.split(",") if t.strip()) or ("*",)
    return CaptureConfig(out_dir=out_dir, topics=topics)


def enable(out_dir: os.PathLike | str, topics: Tuple[str, ...] = ("*",)) -> None:
    """Turn capture on process-wide (and for future worker children)."""
    os.environ[ENV_TRACE_OUT] = str(out_dir)
    os.environ[ENV_TRACE_TOPICS] = ",".join(topics)


def disable() -> None:
    os.environ.pop(ENV_TRACE_OUT, None)
    os.environ.pop(ENV_TRACE_TOPICS, None)


#: The bus of the capture currently wrapping ``execute_spec`` in this
#: process, if any.  Kind functions consult this to thread tracing into
#: the simulations they build.
_current: Optional[TraceBus] = None


def current_bus() -> Optional[TraceBus]:
    return _current


class RunCapture:
    """One run's recording bus plus the artifact writer.

    Context-manager form keeps ``execute_spec`` tidy::

        with RunCapture(cfg) as cap:
            payload = fn(spec.config, spec.seed)
        cap.finish(spec)
    """

    def __init__(self, config: CaptureConfig):
        self.config = config
        self.bus = TraceBus()
        for topic in config.topics:
            self.bus.record_topic(topic)

    def __enter__(self) -> "RunCapture":
        global _current
        self._previous = _current
        _current = self.bus
        return self

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous

    def artifact_base(self, spec) -> str:
        # Imported lazily: repro.runner imports repro.obs.capture at
        # module load (via kinds), so the reverse edge must not run at
        # import time.
        from ..runner.spec import spec_key

        return f"{spec.kind}-seed{spec.seed}-{spec_key(spec)[:12]}"

    def finish(self, spec) -> Tuple[Path, Path]:
        """Write the run's trace JSONL and metrics JSON; returns paths."""
        out = Path(self.config.out_dir)
        base = self.artifact_base(spec)
        trace_path = out / f"{base}.trace.jsonl"
        metrics_path = out / f"{base}.metrics.json"
        write_jsonl(self.bus.records, trace_path, cap=self.config.cap)
        snapshot = TraceMetrics().replay(self.bus.records).registry.snapshot()
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(snapshot, sort_keys=True, indent=1), encoding="utf-8"
        )
        return trace_path, metrics_path
