"""Causal span reconstruction and critical-path attribution.

Rebuilds the causal structure of a recorded run — job → phase → task
attempt → block request — purely from the trace topics the simulator
already publishes (no new instrumentation), then answers the question
the flat ``repro report`` tables cannot: *which* task, device, VM, or
fault was on the critical path of each phase, and how much of that time
was I/O wait versus device service.

Stitching keys (see DESIGN §10):

* tasks are the ``process`` ids on ``fs.read``/``fs.write``/
  ``disk.submit`` records (``map<task_id>@<vm>``, ``red<tag><idx>@<vm>``,
  ``tt@<vm>`` shuffle servers); task end times are refined by the
  ``job.map_finished``/``job.reduce_finished`` ledger records;
* block requests stitch ``disk.submit`` → ``disk.complete`` via
  ``(device, rid)`` (merged rids share the completion edge) and pick up
  their device-busy split from ``disk.service``;
* faults (``fault.vm_pause``/``fault.disk_slow``) and elevator switches
  (``disk.switched``, interval ``[t - stall, t]``) become first-class
  blame intervals of their own.

The **critical path** of a phase ``[p0, p1]`` is computed by a backward
walk: starting at ``p1``, repeatedly attribute the segment down to the
latest-starting interval active at the cursor (faults beat switches
beat tasks on ties), or an explicit ``idle`` segment when nothing was
running.  Segments share endpoints by construction, so they tile each
phase *exactly* — the sum of segment durations telescopes to the job
makespan, which is the conservation property
``tests/obs/test_spans.py`` pins on fig2 and faulty_job runs.

Everything here is a pure function of the record list: same trace,
same attribution, byte-identical JSON.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from ..sim.tracing import TraceRecord
from .topics import span_hint

__all__ = [
    "Span",
    "Segment",
    "build_span_tree",
    "critical_path",
    "critical_path_rows",
    "blame_summary",
    "blame_rows",
    "assign_records",
    "write_span_trace",
]

#: Endpoint-comparison tolerance for the backward walk.  Simulated
#: times are exact floats, so this only absorbs representation noise.
_TOL = 1e-9

_PID_MAP = re.compile(r"^map(\d+)@(.+)$")
_PID_RED = re.compile(r"^red(.*?)(\d+)@(.+)$")
_PID_TT = re.compile(r"^tt@(.+)$")

#: Tie-break rank when several intervals end a phase segment together:
#: an injected fault explains a stall better than a switch, a switch
#: better than an ordinary task.
_KIND_RANK = {"fault": 3, "switch": 2, "task": 1}


@dataclass
class Span:
    """One node of the causal tree (run/job/phase/task/request/...)."""

    name: str
    kind: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Segment:
    """One tile of a phase's critical path."""

    phase: str
    owner: str
    kind: str  # task | fault | switch | idle
    start: float
    end: float
    vm: str = ""
    device: str = ""
    #: Seconds of the segment with at least one of the owner's block
    #: requests in flight, minus the device-service share.
    io_wait: float = 0.0
    #: Device service seconds of the owner's requests completing here.
    service: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _Interval:
    """A blame candidate for the backward walk."""

    name: str
    kind: str  # task | fault | switch
    start: float
    end: float
    vm: str = ""
    device: str = ""


@dataclass
class _Request:
    start: float
    end: float
    device: str
    rid: int
    service: float = 0.0


class _RunModel:
    """Everything the walk needs, extracted from the records once."""

    def __init__(self) -> None:
        self.jobs: List[Tuple[str, float, float]] = []
        self.windows: List[Tuple[str, float, float]] = []
        self.intervals: List[_Interval] = []
        self.tasks: Dict[str, _Interval] = {}
        self.requests_by_pid: Dict[str, List[_Request]] = {}
        self.task_by_map_id: Dict[Any, str] = {}
        self.task_by_red_idx: Dict[Any, str] = {}
        self.t_min = math.inf
        self.t_max = -math.inf


def _pid_vm(pid: str) -> str:
    return pid.rsplit("@", 1)[1] if "@" in pid else ""


def _extract(records: Sequence[TraceRecord]) -> _RunModel:
    model = _RunModel()
    tasks = model.tasks
    submits: Dict[Tuple[str, int], Tuple[float, str]] = {}
    services: Dict[Tuple[str, int], float] = {}
    job_starts: List[Tuple[float, str]] = []
    job_ends: List[Tuple[float, str]] = []
    marks: Dict[str, float] = {}
    map_finish: Dict[Any, float] = {}
    red_finish: List[Tuple[Any, Any, float]] = []  # (reducer, job, time)

    def touch_task(pid: Any, time: float) -> None:
        pid = str(pid)
        iv = tasks.get(pid)
        if iv is None:
            tasks[pid] = _Interval(name=pid, kind="task", start=time,
                                   end=time, vm=_pid_vm(pid))
        else:
            if time < iv.start:
                iv.start = time
            if time > iv.end:
                iv.end = time

    for record in records:
        topic, p, t = record.topic, record.payload, record.time
        if t < model.t_min:
            model.t_min = t
        if t > model.t_max:
            model.t_max = t
        if topic == "fs.read" or topic == "fs.write":
            touch_task(p["process"], t)
        elif topic == "disk.submit":
            pid = str(p.get("process", ""))
            if pid:
                touch_task(pid, t)
            submits[(p["device"], p["rid"])] = (t, pid)
        elif topic == "disk.complete":
            device = p["device"]
            for rid in [p["rid"], *p.get("merged_rids", ())]:
                sub = submits.pop((device, rid), None)
                if sub is None:
                    continue
                t_sub, pid = sub
                req = _Request(start=t_sub, end=t, device=device, rid=rid,
                               service=services.pop((device, rid), 0.0))
                model.requests_by_pid.setdefault(pid, []).append(req)
                if pid in tasks and t > tasks[pid].end:
                    tasks[pid].end = t
        elif topic == "disk.service":
            # Published at the spindle just before the completion edge,
            # so the submit entry is still pending: stash the split and
            # apply it when disk.complete stitches the request.
            services[(p["device"], p["rid"])] = p["service"]
        elif topic == "disk.switched":
            stall = float(p.get("stall", 0.0))
            model.intervals.append(_Interval(
                name=f"switch:{p['device']}->{p.get('scheduler', '?')}",
                kind="switch", start=t - stall, end=t, device=p["device"],
            ))
        elif topic == "fault.vm_pause":
            model.intervals.append(_Interval(
                name=f"pause:{p['vm']}", kind="fault", start=t,
                end=t + float(p.get("duration", 0.0)), vm=p["vm"],
            ))
        elif topic == "fault.disk_slow":
            model.intervals.append(_Interval(
                name=f"disk_slow:{p['host']}", kind="fault", start=t,
                end=t + float(p.get("duration", 0.0)),
            ))
        elif topic == "job.start":
            job_starts.append((t, str(p.get("name", p.get("job", "job")))))
            marks.setdefault("start", t)
        elif topic == "job.map_finished":
            map_finish[p["task_id"]] = t
        elif topic == "job.maps_done":
            marks["maps_done"] = t
        elif topic == "job.shuffle_done":
            marks["shuffle_done"] = t
        elif topic == "job.reduce_finished":
            red_finish.append((p["reducer"], p.get("job"), t))
        elif topic == "job.done":
            job_ends.append((t, str(p.get("name", p.get("job", "job")))))
            marks["end"] = t

    # Ledger refinement: a task *finishes* at its ledger record, which
    # is later than its last I/O event (the tail is pure compute).
    for pid in tasks:
        m = _PID_MAP.match(pid)
        if m:
            model.task_by_map_id[int(m.group(1))] = pid
            continue
        m = _PID_RED.match(pid)
        if m:
            model.task_by_red_idx.setdefault(int(m.group(2)), pid)
    for task_id, t in map_finish.items():
        pid = model.task_by_map_id.get(task_id)
        if pid is not None and t > tasks[pid].end:
            tasks[pid].end = t
    for reducer, _job, t in red_finish:
        pid = model.task_by_red_idx.get(reducer)
        if pid is not None and t > tasks[pid].end:
            tasks[pid].end = t

    model.intervals.extend(tasks.values())
    model.jobs = [
        (name, t0, next((te for te, ne in job_ends if ne == name), t0))
        for t0, name in job_starts
    ]

    # Phase windows: the single-job map/shuffle/reduce split when the
    # trace holds exactly one job, otherwise one window over the whole
    # run (multi-job overlap has no global phase boundaries).
    if len(job_starts) == 1 and "start" in marks and "end" in marks:
        start, end = marks["start"], marks["end"]
        maps_done = marks.get("maps_done", end)
        shuffle_done = marks.get("shuffle_done", end)
        model.windows = [("map", start, maps_done),
                         ("shuffle", maps_done, shuffle_done),
                         ("reduce", shuffle_done, end)]
    elif job_starts and job_ends:
        model.windows = [("run", min(t for t, _ in job_starts),
                          max(t for t, _ in job_ends))]
    elif model.t_min < model.t_max:
        model.windows = [("run", model.t_min, model.t_max)]
    return model


# -- the backward walk ----------------------------------------------------------------


def _union_length(spans: List[Tuple[float, float]]) -> float:
    total, cur_a, cur_b = 0.0, None, None
    for a, b in sorted(spans):
        if cur_b is None or a > cur_b:
            if cur_b is not None:
                total += cur_b - cur_a
            cur_a, cur_b = a, b
        elif b > cur_b:
            cur_b = b
    if cur_b is not None:
        total += cur_b - cur_a
    return total


def _segment_for(phase: str, owner: _Interval, start: float, end: float,
                 model: _RunModel) -> Segment:
    io_wait = service = 0.0
    device = owner.device
    if owner.kind == "task":
        reqs = [r for r in model.requests_by_pid.get(owner.name, ())
                if r.end > start and r.start < end]
        busy = _union_length([(max(r.start, start), min(r.end, end))
                              for r in reqs])
        service = math.fsum(r.service for r in reqs
                            if start - _TOL <= r.end <= end + _TOL)
        io_wait = max(busy - service, 0.0)
        per_device: Dict[str, float] = {}
        for r in reqs:
            per_device[r.device] = per_device.get(r.device, 0.0) + (
                min(r.end, end) - max(r.start, start))
        if per_device:
            device = max(sorted(per_device), key=lambda d: per_device[d])
    return Segment(phase=phase, owner=owner.name, kind=owner.kind,
                   start=start, end=end, vm=owner.vm, device=device,
                   io_wait=io_wait, service=service)


def _walk_phase(phase: str, p0: float, p1: float,
                model: _RunModel) -> List[Segment]:
    ivs = [iv for iv in model.intervals
           if iv.start < p1 - _TOL and iv.end > p0 + _TOL]
    out: List[Segment] = []
    cursor = p1
    guard = 2 * len(ivs) + 64
    while cursor > p0 + _TOL and guard > 0:
        guard -= 1
        active = [iv for iv in ivs
                  if iv.start < cursor - _TOL and iv.end >= cursor - _TOL]
        if active:
            owner = max(active, key=lambda iv: (
                iv.start, _KIND_RANK.get(iv.kind, 0), iv.name))
            seg_start = max(owner.start, p0)
            out.append(_segment_for(phase, owner, seg_start, cursor, model))
        else:
            ends = [iv.end for iv in ivs if iv.end < cursor - _TOL and iv.end > p0]
            seg_start = max(ends, default=p0)
            out.append(Segment(phase=phase, owner="idle", kind="idle",
                               start=seg_start, end=cursor))
        cursor = out[-1].start
    out.reverse()
    if out and out[0].start != p0:
        # Clamp the last residual (< _TOL) so the tiles stay exact.
        out[0] = replace(out[0], start=p0)
    return out


def critical_path(records: Sequence[TraceRecord]) -> List[Segment]:
    """The weighted critical path of a recorded run.

    One :class:`Segment` list tiling every phase window exactly: the
    first segment starts at the phase start, the last ends at the phase
    end, and consecutive segments share endpoints — so durations sum to
    the run's makespan by telescoping.
    """
    model = _extract(records)
    segments: List[Segment] = []
    for phase, p0, p1 in model.windows:
        segments.extend(_walk_phase(phase, p0, p1, model))
    return segments


def critical_path_rows(segments: Sequence[Segment]) -> List[List[Any]]:
    """Table rows for the report renderer (one per segment)."""
    return [[seg.phase, seg.owner, seg.kind, seg.start, seg.end,
             seg.duration, seg.vm or "-", seg.device or "-",
             seg.io_wait, seg.service]
            for seg in segments]


# -- blame aggregation ----------------------------------------------------------------


def blame_summary(segments: Sequence[Segment]) -> Dict[str, Any]:
    """JSON-able aggregation of a critical path.

    ``makespan`` is the fsum of segment durations (== the tiled window
    lengths); ``phases``/``devices``/``vms`` split the same seconds
    three ways; ``top_owners`` names the biggest individual culprits.
    """
    phases: Dict[str, Dict[str, Any]] = {}
    devices: Dict[str, float] = {}
    vms: Dict[str, float] = {}
    owners: Dict[Tuple[str, str], float] = {}
    for seg in segments:
        ph = phases.setdefault(seg.phase, {
            "duration": 0.0, "task": 0.0, "fault": 0.0, "switch": 0.0,
            "idle": 0.0, "io_wait": 0.0, "service": 0.0,
        })
        ph["duration"] += seg.duration
        ph[seg.kind] = ph.get(seg.kind, 0.0) + seg.duration
        ph["io_wait"] += seg.io_wait
        ph["service"] += seg.service
        if seg.device:
            devices[seg.device] = devices.get(seg.device, 0.0) + seg.duration
        if seg.vm:
            vms[seg.vm] = vms.get(seg.vm, 0.0) + seg.duration
        if seg.kind != "idle":
            key = (seg.owner, seg.kind)
            owners[key] = owners.get(key, 0.0) + seg.duration
    top = sorted(owners.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    return {
        "makespan": math.fsum(seg.duration for seg in segments),
        "segments": len(segments),
        "phases": {name: phases[name] for name in sorted(phases)},
        "devices": {name: devices[name] for name in sorted(devices)},
        "vms": {name: vms[name] for name in sorted(vms)},
        "top_owners": [
            {"owner": owner, "kind": kind, "seconds": seconds}
            for (owner, kind), seconds in top
        ],
    }


def blame_rows(summary: Dict[str, Any]) -> List[List[Any]]:
    """Per-phase blame table rows from a :func:`blame_summary` dict."""
    return [[name, ph["duration"], ph["task"], ph["fault"], ph["switch"],
             ph["idle"], ph["io_wait"], ph["service"]]
            for name, ph in summary["phases"].items()]


# -- the causal tree and record ownership ---------------------------------------------


def build_span_tree(records: Sequence[TraceRecord]) -> Span:
    """The causal span tree: run → job → phase → task → request.

    Tasks hang off the phase containing their start (off the job when
    the trace has no phase split); requests hang off their submitting
    task; faults and switches hang off the run root.
    """
    model = _extract(records)
    t0 = model.t_min if model.t_min <= model.t_max else 0.0
    t1 = model.t_max if model.t_min <= model.t_max else 0.0
    root = Span(name="run", kind="run", start=t0, end=t1)

    job_spans = [Span(name=f"job:{name}", kind="job", start=s, end=e)
                 for name, s, e in model.jobs]
    root.children.extend(job_spans)
    phase_parent = job_spans[0] if len(job_spans) == 1 else root
    phase_spans = [Span(name=f"phase:{name}", kind="phase", start=s, end=e)
                   for name, s, e in model.windows]
    phase_parent.children.extend(phase_spans)

    def parent_for(start: float) -> Span:
        for ph in phase_spans:
            if ph.start - _TOL <= start < ph.end + _TOL:
                return ph
        return phase_parent

    for pid in sorted(model.tasks):
        iv = model.tasks[pid]
        task = Span(name=f"task:{pid}", kind="task", start=iv.start,
                    end=iv.end, attrs={"vm": iv.vm})
        for req in model.requests_by_pid.get(pid, ()):
            task.children.append(Span(
                name=f"request:{req.device}/{req.rid}", kind="request",
                start=req.start, end=req.end,
                attrs={"device": req.device, "service": req.service},
            ))
        parent_for(iv.start).children.append(task)
    for iv in model.intervals:
        if iv.kind in ("fault", "switch"):
            root.children.append(Span(
                name=iv.name, kind=iv.kind, start=iv.start, end=iv.end,
                attrs={"vm": iv.vm, "device": iv.device},
            ))
    return root


def assign_records(records: Sequence[TraceRecord]) -> List[str]:
    """Owner span name for every record, positionally.

    The assignment is total and single-valued — every record is owned by
    exactly one span — which is the other half of the conservation
    property the span tests pin.  Routing follows the ``span`` hints in
    :mod:`repro.obs.topics`, refined by the stitching keys.
    """
    model = _extract(records)
    owners: List[str] = []
    for record in records:
        topic, p = record.topic, record.payload
        hint = span_hint(topic)
        owner = "run"
        if hint == "request" and "rid" in p and "device" in p:
            owner = f"request:{p['device']}/{p['rid']}"
        elif hint == "switch" and "device" in p:
            owner = f"switch:{p['device']}"
        elif hint == "fault":
            owner = f"fault:{p.get('vm', p.get('host', 'cluster'))}"
        elif hint == "task":
            pid = None
            if "process" in p:
                pid = str(p["process"])
            elif topic == "job.map_finished":
                pid = model.task_by_map_id.get(p["task_id"])
            elif topic == "job.reduce_finished" or topic == "shuffle.fetch":
                pid = model.task_by_red_idx.get(p.get("reducer"))
            elif "task_id" in p:  # task.retry / task.speculative
                pid = model.task_by_map_id.get(p["task_id"])
            if pid:
                owner = f"task:{pid}"
            elif model.jobs:
                owner = f"job:{model.jobs[0][0]}"
        elif model.jobs:
            name = p.get("name", p.get("job"))
            job_names = {n for n, _, _ in model.jobs}
            owner = (f"job:{name}" if name in job_names
                     else f"job:{model.jobs[0][0]}")
        owners.append(owner)
    return owners


# -- Perfetto span export -------------------------------------------------------------

_US = 1e6


def write_span_trace(records: Sequence[TraceRecord], path: Path | str) -> int:
    """Chrome/Perfetto trace of the span tree + critical path.

    Track layout: pid 0 carries the critical-path tiles (tid 0) and the
    job/phase spans (tid 1); each VM gets its own pid with tasks packed
    onto slot tids (requests share their task's tid so they nest).
    Returns the event count.
    """
    segments = critical_path(records)
    tree = build_span_tree(records)
    events: List[Dict[str, Any]] = []

    def x_event(name, start, end, pid, tid, cat, args=None):
        events.append({
            "name": name, "ph": "X", "ts": round(start * _US, 3),
            "dur": round(max(end - start, 0.0) * _US, 3), "pid": pid,
            "tid": tid, "cat": cat, "args": args or {},
        })

    for seg in segments:
        x_event(f"{seg.kind}:{seg.owner}" if seg.kind == "idle" else seg.owner,
                seg.start, seg.end, 0, 0, f"critical-{seg.kind}",
                {"phase": seg.phase, "io_wait": seg.io_wait,
                 "service": seg.service, "device": seg.device})

    vms = sorted({span.attrs.get("vm", "") for parent in _iter_spans(tree)
                  for span in parent.children if span.kind == "task"})
    vm_pid = {vm: i for i, vm in enumerate(vms, start=1)}
    names = [("critical-path", 0)] + [(vm or "(host)", pid)
                                      for vm, pid in sorted(vm_pid.items())]
    for name, pid in names:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})

    slots: Dict[int, List[float]] = {}

    def slot_for(pid: int, start: float, end: float) -> int:
        lanes = slots.setdefault(pid, [])
        for tid, busy_until in enumerate(lanes):
            if busy_until <= start + _TOL:
                lanes[tid] = end
                return tid
        lanes.append(end)
        return len(lanes) - 1

    for parent in _iter_spans(tree):
        for span in parent.children:
            if span.kind in ("job", "phase"):
                x_event(span.name, span.start, span.end, 0, 1, span.kind)
            elif span.kind in ("fault", "switch"):
                x_event(span.name, span.start, span.end, 0, 1, span.kind,
                        dict(span.attrs))
            elif span.kind == "task":
                pid = vm_pid.get(span.attrs.get("vm", ""), 0)
                tid = slot_for(pid, span.start, span.end)
                x_event(span.name, span.start, span.end, pid, tid, "task")
                for req in span.children:
                    x_event(req.name, req.start, req.end, pid, tid,
                            "request", dict(req.attrs))

    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0), e["pid"],
                               e["tid"], e["name"]))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    return len(events)


def _iter_spans(root: Span):
    stack = [root]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))
