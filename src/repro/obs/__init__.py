"""repro.obs — the observability layer over the trace bus.

Four concerns, one package:

* :mod:`repro.obs.metrics` — deterministic simulation-time counters,
  gauges, and fixed-bucket histograms, auto-populated from trace topics;
* :mod:`repro.obs.export` — JSONL trace files (filtered, ring-capped)
  and Chrome trace-event exports viewable in Perfetto;
* :mod:`repro.obs.profile` — wall-clock profiling of the sweep runner
  (stage timings, worker utilization, cache traffic);
* :mod:`repro.obs.capture` — the per-run capture switch the CLI's
  ``--trace-out`` flips, propagated to worker processes via the
  environment;
* :mod:`repro.obs.report` — the ``repro report`` renderer;
* :mod:`repro.obs.spans` — causal span reconstruction, critical-path
  extraction, and blame attribution over captured trace records;
* :mod:`repro.obs.spill` — the windowed, memory-bounded JSONL writer
  streaming captures use;
* :mod:`repro.obs.topics` — the machine-readable trace-topic registry
  (the single source of truth ``repro lint``'s TRACE001 rule enforces).

Everything is off by default and payload-neutral: enabling capture
never changes simulation results, cache keys, or cached records.
"""

from .capture import CaptureConfig, RunCapture, config_from_env, current_bus
from .export import (
    JsonlTraceWriter,
    TopicFilter,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceMetrics,
    merge_snapshots,
)
from .profile import BatchProfile, SweepProfiler
from .report import (
    EmptyTraceError,
    MissingTraceError,
    ReportError,
    render_report,
    report_json,
    report_path,
)
from .spans import (
    Segment,
    Span,
    assign_records,
    blame_summary,
    build_span_tree,
    critical_path,
    write_span_trace,
)
from .spill import TraceSpiller
from .topics import REGISTERED_TOPICS, TOPIC_NAMES, TOPICS, TopicSpec, span_hint

__all__ = [
    "BatchProfile",
    "CaptureConfig",
    "Counter",
    "EmptyTraceError",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "MissingTraceError",
    "REGISTERED_TOPICS",
    "ReportError",
    "RunCapture",
    "Segment",
    "Span",
    "SweepProfiler",
    "TOPICS",
    "TOPIC_NAMES",
    "TopicFilter",
    "TopicSpec",
    "TraceMetrics",
    "TraceSpiller",
    "assign_records",
    "blame_summary",
    "build_span_tree",
    "config_from_env",
    "critical_path",
    "current_bus",
    "load_jsonl",
    "merge_snapshots",
    "render_report",
    "report_json",
    "report_path",
    "span_hint",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
