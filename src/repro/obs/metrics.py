"""Simulation-time metrics: counters, gauges, fixed-bucket histograms.

Everything here is driven by *simulated* time and trace records — no
wall clock, no host state — so two runs of the same seed produce
byte-identical snapshots.  :class:`TraceMetrics` is the bridge from the
trace bus: it knows the repo's topic taxonomy (DESIGN.md
"Observability") and folds each record into a :class:`MetricsRegistry`,
either live (subscribed to a :class:`~repro.sim.tracing.TraceBus`) or
offline (replaying records loaded from a JSONL trace file).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim.tracing import TraceBus, TraceRecord
from .topics import TOPIC_NAMES

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceMetrics",
    "DEFAULT_LATENCY_BUCKETS",
    "JOB_LATENCY_BUCKETS",
    "merge_snapshots",
]

#: Request-latency histogram edges in seconds (upper bounds; the last
#: implicit bucket is +inf).  Spans anticipation holds (~ms) through
#: switch-stall convoys (~s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)

#: Whole-job latency histogram edges in seconds — jobs live for tens of
#: seconds to an hour of simulated time, far above request latencies.
JOB_LATENCY_BUCKETS: Tuple[float, ...] = (
    5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 3600.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value; tracks its high-water mark too."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket histogram (cumulative-style, Prometheus flavoured).

    ``buckets`` are sorted upper bounds; observations above the last
    bound land in the implicit +inf bucket.  Bucket counts are
    *per-bucket* (not cumulative) so snapshots stay human-readable.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": [list(pair) for pair in zip(self.buckets, self.counts)],
            "overflow": self.counts[-1],
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for named metrics with flat label rendering.

    Keys render Prometheus-style (``disk.completed{device=h0.sda}``) and
    snapshots sort them, so the JSON form is deterministic.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: Any) -> Histogram:
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(buckets)
        return hist

    def gauges(self, prefix: str) -> Dict[str, Gauge]:
        """Live gauges whose rendered key starts with ``prefix``, keyed
        by rendered name, in sorted order.  This is the read path the
        online controller uses (summing ``disk.queue_depth{...}``)."""
        return {key: self._gauges[key]
                for key in sorted(self._gauges) if key.startswith(prefix)}

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able, deterministically ordered dump of every metric."""
        return {
            "counters": {k: self._counters[k].snapshot()
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].snapshot()
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].snapshot()
                           for k in sorted(self._histograms)},
        }


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-run snapshots: counters/histogram tallies sum,
    gauges keep the max of their high-water marks (the only cross-run
    reduction that stays meaningful for queue depths and end times)."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    hist_totals: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, g in snap.get("gauges", {}).items():
            agg = gauges.setdefault(key, {"value": g["value"], "max": g["max"]})
            agg["value"] = max(agg["value"], g["value"])
            agg["max"] = max(agg["max"], g["max"])
        for key, h in snap.get("histograms", {}).items():
            agg = hist_totals.setdefault(key, {"count": 0, "sum": 0.0})
            agg["count"] += h["count"]
            agg["sum"] += h["sum"]
    for agg in hist_totals.values():
        agg["mean"] = agg["sum"] / agg["count"] if agg["count"] else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(hist_totals.items())),
    }


class TraceMetrics:
    """Populates a :class:`MetricsRegistry` from the trace-topic taxonomy.

    Live use (during a simulation)::

        tm = TraceMetrics()
        tm.attach(bus)          # subscribes to the topics it understands
        ... run the simulation ...
        snapshot = tm.registry.snapshot()

    Offline use (on records loaded from a trace file)::

        tm = TraceMetrics()
        tm.replay(records)
    """

    #: Topics this bridge understands: the full registry from
    #: :mod:`repro.obs.topics` (disk/fs topics carry per-device/per-VM
    #: labels in their payloads).
    TOPICS = TOPIC_NAMES

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        #: Submit time per (device, rid), for dispatch-latency histograms.
        self._pending: Dict[Tuple[str, int], float] = {}

    # -- wiring -------------------------------------------------------------------
    def attach(self, bus: TraceBus,
               topics: Optional[Iterable[str]] = None) -> None:
        """Subscribe to ``topics`` (default: every registered topic).

        Passing a subset keeps hot-path publishes cheap when only a few
        signals matter — e.g. the online controller folds just
        ``disk.submit``/``disk.complete`` for queue depths.
        """
        for topic in (self.TOPICS if topics is None else topics):
            bus.subscribe(topic, self.handle)

    def detach(self, bus: TraceBus,
               topics: Optional[Iterable[str]] = None) -> None:
        for topic in (self.TOPICS if topics is None else topics):
            bus.unsubscribe(topic, self.handle)

    def replay(self, records: Iterable[TraceRecord]) -> "TraceMetrics":
        for record in records:
            self.handle(record)
        return self

    # -- the taxonomy --------------------------------------------------------------
    def handle(self, record: TraceRecord) -> None:
        topic, p, reg = record.topic, record.payload, self.registry
        if topic == "disk.submit":
            device = p["device"]
            reg.counter("disk.submitted", device=device).inc()
            reg.gauge("disk.queue_depth", device=device).add(1)
            self._pending[(device, p["rid"])] = record.time
        elif topic == "disk.complete":
            device = p["device"]
            merged = list(p.get("merged_rids", ()))
            served = 1 + len(merged)
            reg.counter("disk.completed", device=device).inc(served)
            reg.counter("disk.merged", device=device).inc(len(merged))
            reg.counter("disk.bytes", device=device).inc(p.get("nbytes", 0))
            reg.gauge("disk.queue_depth", device=device).add(-served)
            hist = reg.histogram("disk.latency", device=device)
            for rid in [p["rid"], *merged]:
                submitted = self._pending.pop((device, rid), None)
                if submitted is not None:
                    hist.observe(record.time - submitted)
        elif topic == "disk.service":
            device = p["device"]
            reg.counter("disk.busy_seconds", device=device).inc(p["service"])
            reg.counter("disk.seek_seconds", device=device).inc(p["seek"])
            reg.counter("disk.rotation_seconds", device=device).inc(p["rotation"])
            reg.counter("disk.transfer_seconds", device=device).inc(p["transfer"])
        elif topic == "disk.switched":
            device = p["device"]
            reg.counter("sched.switches", device=device).inc()
            reg.counter("sched.switch_stall_seconds", device=device).inc(p["stall"])
            reg.counter("sched.switch_stall_seconds_total").inc(p["stall"])
        elif topic == "ssd.gc":
            device = p["device"]
            reg.counter("ssd.gc_cycles", device=device).inc()
            reg.counter("ssd.moved_pages", device=device).inc(p.get("moved", 0))
            reg.gauge("ssd.write_amp", device=device).set(p["write_amp"])
        elif topic == "ssd.writeback":
            device = p["device"]
            reg.counter("ssd.flushed_pages", device=device).inc(p.get("pages", 0))
        elif topic == "ssd.channel":
            reg.gauge("ssd.channel_depth", device=p["device"],
                      channel=p["channel"]).set(p["depth"])
        elif topic in ("fs.read", "fs.write"):
            op = "read" if topic == "fs.read" else "write"
            reg.counter("fs.ops", vm=p["vm"], op=op).inc()
            reg.counter("fs.bytes", vm=p["vm"], op=op).inc(p.get("length", 0))
        elif topic == "cluster.set_pair":
            reg.counter("cluster.pair_switches").inc()
        elif topic == "job.start":
            reg.gauge("job.start_time").set(record.time)
        elif topic == "job.map_finished":
            reg.counter("job.maps_finished").inc()
            if p.get("total"):
                reg.gauge("job.map_progress").set(p["done"] / p["total"])
        elif topic == "job.maps_done":
            reg.gauge("job.maps_done_time").set(record.time)
        elif topic == "job.shuffle_done":
            reg.gauge("job.shuffle_done_time").set(record.time)
        elif topic == "shuffle.fetch":
            reg.counter("shuffle.fetches").inc()
            reg.counter("shuffle.bytes").inc(p.get("nbytes", 0))
            reg.gauge("shuffle.fetches_remaining").set(p.get("remaining", 0))
        elif topic == "ctrl.phase":
            reg.counter("ctrl.boundaries", boundary=p["boundary"]).inc()
        elif topic == "ctrl.decision":
            action = "hold" if p.get("target") is None else "switch"
            reg.counter("ctrl.decisions", policy=p["policy"],
                        action=action).inc()
        elif topic == "ctrl.switch":
            reg.counter("ctrl.switches").inc()
            reg.counter("ctrl.switch_stall_seconds").inc(p["stall"])
        elif topic == "job.reduce_finished":
            reg.counter("job.reduces_finished").inc()
        elif topic == "job.done":
            reg.gauge("job.end_time").set(record.time)
        elif topic == "sched.job_admitted":
            reg.counter("sched.jobs_admitted", tenant=p["tenant"]).inc()
            reg.gauge("sched.jobs_live").add(1)
        elif topic == "sched.task_assigned":
            reg.counter("sched.tasks_assigned", kind=p["kind"]).inc()
        elif topic == "sched.job_done":
            reg.counter("sched.jobs_done", tenant=p["tenant"]).inc()
            reg.gauge("sched.jobs_live").add(-1)
        elif topic == "tenant.job_latency":
            reg.histogram("tenant.job_latency", buckets=JOB_LATENCY_BUCKETS,
                          tenant=p["tenant"]).observe(p["latency"])
        elif topic == "task.retry":
            reg.counter("task.retries", kind=p.get("kind", "unknown")).inc()
        elif topic == "task.speculative":
            reg.counter("task.speculative").inc()
        elif topic.startswith("fault."):
            reg.counter("faults", type=topic[len("fault."):]).inc()
