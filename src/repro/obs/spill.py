"""Windowed, memory-bounded spilling of trace records to JSONL files.

:class:`TraceSpiller` is the streaming replacement for buffering a whole
run's trace in memory: it holds at most ``window`` records (or ``cap``
records when a ring-buffer cap is set) and appends canonical JSONL to
its target file whenever the window fills.  The concatenated output is
byte-identical to what the buffered path
(:func:`repro.obs.export.write_jsonl` over the full record list) would
have written — same records, same order, same canonical encoding —
which is the equivalence ``tests/obs/test_spill.py`` pins across seeds.

Two retention modes, matching :class:`~repro.obs.capture.CaptureConfig`:

* ``cap is None`` (the default) — every record survives; memory is
  bounded by ``window`` and the file grows incrementally as windows
  flush.
* ``cap`` set — only the *last* ``cap`` records survive (the ring
  semantics of :class:`~repro.obs.export.JsonlTraceWriter`); memory is
  bounded by ``cap`` and the file is written once at :meth:`close`,
  because records at the head of the ring can still be evicted by
  later arrivals.

The spiller writes to ``<path>.partial`` and renames on :meth:`close`,
so a crashed run never leaves a file that looks like a complete trace.
"""

from __future__ import annotations

import os
from collections import deque
from pathlib import Path
from typing import Deque, Optional, Sequence

from ..sim.tracing import TraceRecord
from .export import TopicFilter, encode_record

__all__ = ["TraceSpiller", "DEFAULT_WINDOW"]

#: Records buffered between appends when no ring cap is set.  Small
#: enough that a multi-hour sweep never holds more than a few hundred
#: KB of trace per worker, large enough to amortise the write syscalls.
DEFAULT_WINDOW = 4096


class TraceSpiller:
    """Streaming JSONL sink with bounded memory.

    Usable directly as a :meth:`TraceBus.add_sink <repro.sim.tracing.TraceBus.add_sink>`
    callback (it is callable).  Typical life cycle::

        spiller = TraceSpiller(path, window=4096)
        bus.add_sink(spiller)
        bus.retain_records = False      # the bus stays O(1) in run length
        ... run the simulation ...
        n = spiller.close()             # flush + rename .partial -> path
    """

    def __init__(self, path: Path | str, window: int = DEFAULT_WINDOW,
                 cap: Optional[int] = None,
                 topics: Optional[Sequence[str]] = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive (or None for unbounded)")
        self.path = Path(path)
        self.window = window
        self.cap = cap
        self.filter = TopicFilter(topics)
        #: Records written to the file so far (excludes the open window).
        self.spilled = 0
        #: Records evicted by the ring cap (mirrors JsonlTraceWriter).
        self.dropped = 0
        #: Windows flushed to disk (1 at close even for short runs).
        self.flushes = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=cap)
        self._partial = self.path.with_name(self.path.name + ".partial")
        self._fh = None
        self._closed = False

    # -- ingestion ------------------------------------------------------------------
    def __call__(self, record: TraceRecord) -> None:
        self.add(record)

    def add(self, record: TraceRecord) -> None:
        if self._closed:
            raise RuntimeError("spiller is closed")
        if not self.filter.matches(record.topic):
            return
        if self.cap is not None:
            if len(self._ring) == self.cap:
                self.dropped += 1
            self._ring.append(record)
            return
        self._ring.append(record)
        if len(self._ring) >= self.window:
            self._flush_window()

    @property
    def buffered(self) -> int:
        """Records currently held in memory (the open window or ring)."""
        return len(self._ring)

    # -- the disk path --------------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self._partial.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self._partial.open("w", encoding="utf-8")
        return self._fh

    def _flush_window(self) -> None:
        fh = self._open()
        while self._ring:
            fh.write(encode_record(self._ring.popleft()))
            fh.write("\n")
            self.spilled += 1
        self.flushes += 1

    def close(self) -> int:
        """Flush the remaining window and finalise the file.

        Returns the number of records written.  Idempotent: a second
        close is a no-op returning the same count.  Zero matching
        records still produce an (empty) trace file, exactly like the
        buffered path.
        """
        if self._closed:
            return self.spilled
        self._flush_window()
        assert self._fh is not None  # _flush_window always opens
        self._fh.close()
        os.replace(self._partial, self.path)
        self._closed = True
        return self.spilled

    def abort(self) -> None:
        """Drop the partial file without finalising (failed runs)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        try:
            self._partial.unlink()
        except OSError:
            pass
        self._ring.clear()
        self._closed = True
