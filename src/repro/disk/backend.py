"""Pluggable storage backends: pick a block device by name.

The virtual layer historically hard-wired ``DiskDevice`` — the paper's
single-spindle HDD — into every host.  This module turns the device
choice into a registry keyed by short names:

* ``"hdd"`` — the seek-curve spindle (:class:`~repro.disk.device.DiskDevice`);
* ``"ssd"`` — the FTL flash device (:class:`~repro.disk.ssd.SsdDevice`);
* ``"hybrid"`` — heterogeneous clusters: even-indexed hosts get HDDs,
  odd-indexed hosts get SSDs (overridable per host via
  ``ClusterConfig.storage_overrides``).

A backend factory takes ``(env, params, rng)`` — the simulation
environment, a :class:`StorageParams` bundle, and the host's dedicated
RNG stream — plus the queue-level keywords every
:class:`~repro.disk.device.ElevatorQueue` shares.  Register new
backends with :func:`register_storage`; unknown names raise
:class:`UnknownStorageError` listing what is registered (mirroring
:class:`~repro.iosched.registry.UnknownSchedulerError`).

Purity note: the registry dict is mutated at import time by the
``@register_storage`` decorators, so nothing reachable from a spec
``canonical()``/``to_spec`` path may read it.  Scenario constructors
validate names (they are outside that path); ``ClusterConfig`` itself
carries the name as a plain string and resolution happens only at
cluster *build* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Protocol, Tuple

import numpy as np

from ..iosched.base import IOScheduler
from ..sim.events import Event
from ..sim.rng import fallback_rng
from .cachetier import CacheTierParams
from .device import DiskDevice
from .geometry import DiskGeometry
from .model import DiskParameters, ServiceTimeModel
from .request import BlockRequest
from .ssd import SsdDevice, SsdParameters

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = [
    "StorageBackend",
    "StorageParams",
    "UnknownStorageError",
    "make_device",
    "register_storage",
    "resolve_storage",
    "storage_names",
]


class UnknownStorageError(KeyError, ValueError):
    """An unregistered storage-backend name.

    Subclasses both ``KeyError`` (it is a failed registry lookup) and
    ``ValueError`` (it is an invalid argument), so call sites guarding
    either way catch it — same contract as ``UnknownSchedulerError``.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class StorageBackend(Protocol):
    """What the virtual layer requires of a Dom0 block device.

    Every :class:`~repro.disk.device.ElevatorQueue` subclass satisfies
    this structurally; the protocol documents the contract a from-
    scratch backend must honour for guests, the elevator-switch
    control plane, and fault injection to work unchanged.
    """

    name: str
    scheduler: IOScheduler
    stats: object
    service_scale: float
    extra_latency: float

    def submit(self, request: BlockRequest) -> Event: ...

    def switch_scheduler(
        self, factory: Callable[[], IOScheduler]
    ) -> Event: ...

    def pause(self) -> None: ...

    def resume(self) -> None: ...

    @property
    def queue_depth(self) -> int: ...


@dataclass(frozen=True)
class StorageParams:
    """Everything a backend factory may need to build one host's device.

    One bundle covers every registered backend: HDD factories read the
    mechanical fields, SSD factories read ``ssd``, and ``host_index``
    lets heterogeneous backends differentiate hosts.  All fields are
    canonical-friendly, matching their lowering from
    :class:`~repro.virt.cluster.ClusterConfig`.
    """

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    disk_params: DiskParameters = field(default_factory=DiskParameters)
    ssd: SsdParameters = field(default_factory=SsdParameters)
    cache_tier: CacheTierParams = field(default_factory=CacheTierParams)
    host_index: int = 0


#: name -> factory(env, params, rng, *, scheduler, name, trace,
#:                 switch_control_latency)
_BACKENDS: Dict[str, Callable] = {}


def register_storage(name: str) -> Callable[[Callable], Callable]:
    """Class decorator-style registration of a storage backend factory."""

    def decorate(factory: Callable) -> Callable:
        _BACKENDS[name] = factory
        return factory

    return decorate


def storage_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_storage(name: str) -> str:
    """Validate a backend name; returns it unchanged.

    Raises :class:`UnknownStorageError` naming the registered backends
    when ``name`` is not one of them.
    """
    if name not in _BACKENDS:
        raise UnknownStorageError(
            f"unknown storage backend {name!r}; choose from "
            f"{', '.join(storage_names())}"
        )
    return name


def make_device(
    storage: str,
    env: "Environment",
    params: StorageParams,
    rng: Optional[np.random.Generator] = None,
    *,
    scheduler: IOScheduler,
    name: str,
    trace: Optional["TraceBus"] = None,
    switch_control_latency: float = 0.050,
):
    """Build the named backend's device for one host."""
    factory = _BACKENDS[resolve_storage(storage)]
    return factory(
        env, params, rng,
        scheduler=scheduler,
        name=name,
        trace=trace,
        switch_control_latency=switch_control_latency,
    )


@register_storage("hdd")
def _make_hdd(env, params, rng, *, scheduler, name, trace,
              switch_control_latency):
    # Construction order matches the historical PhysicalHost wiring
    # exactly (model first, rng fallback inside), keeping HDD runs
    # bit-identical to the pre-registry code.
    model = ServiceTimeModel(
        geometry=params.geometry,
        params=params.disk_params,
        rng=rng or fallback_rng(),
    )
    return DiskDevice(
        env,
        scheduler,
        model,
        name=name,
        trace=trace,
        switch_control_latency=switch_control_latency,
    )


@register_storage("ssd")
def _make_ssd(env, params, rng, *, scheduler, name, trace,
              switch_control_latency):
    # The FTL model is RNG-free; the stream is accepted (factory
    # contract) and deliberately unused, so hybrid clusters keep the
    # same per-host stream assignment as uniform ones.
    return SsdDevice(
        env,
        scheduler,
        params.ssd,
        name=name,
        trace=trace,
        switch_control_latency=switch_control_latency,
    )


@register_storage("hybrid")
def _make_hybrid(env, params, rng, *, scheduler, name, trace,
                 switch_control_latency):
    backend = _make_hdd if params.host_index % 2 == 0 else _make_ssd
    return backend(
        env, params, rng,
        scheduler=scheduler,
        name=name,
        trace=trace,
        switch_control_latency=switch_control_latency,
    )
