"""Block I/O request model.

Requests use the kernel's units: LBAs and lengths are in 512-byte
sectors.  A request carries the identity of the *issuing process* —
inside a guest that is the task (e.g. a map task's reader thread or the
writeback daemon); at the hypervisor level it is the VM id, because the
Dom0 elevator sees each guest as a single process (the paper's "VMM
treats all the VMs as process").
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.events import Event

__all__ = ["IoOp", "BlockRequest", "SECTOR_SIZE"]

#: Bytes per sector, fixed by the ATA heritage.
SECTOR_SIZE = 512

_rid_counter = itertools.count(1)


def reset_rids() -> None:
    """Restart request numbering at 1 (labels only — never scheduling
    input), so every run's trace carries the same rids as any other
    same-seed run, whatever ran earlier in this process."""
    global _rid_counter
    _rid_counter = itertools.count(1)


class IoOp(enum.Enum):
    """Direction of a block request."""

    READ = "read"
    WRITE = "write"


class BlockRequest:
    """One I/O request travelling down a block-device queue.

    ``sync`` distinguishes requests a task is actively waiting on (reads,
    fsync-driven writes) from background writeback; the anticipatory and
    CFQ schedulers treat the two classes very differently, which is the
    mechanism behind the paper's per-phase scheduler preferences.
    """

    __slots__ = (
        "rid",
        "lba",
        "nsectors",
        "op",
        "sync",
        "process_id",
        "submit_time",
        "queue_time",
        "dispatch_time",
        "complete_time",
        "completion",
        "merged_children",
        "deadline",
        "origin",
    )

    def __init__(
        self,
        lba: int,
        nsectors: int,
        op: IoOp,
        process_id: Any,
        sync: Optional[bool] = None,
        origin: Any = None,
    ):
        if nsectors <= 0:
            raise ValueError(f"request length must be positive, got {nsectors}")
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        self.rid = next(_rid_counter)
        self.lba = int(lba)
        self.nsectors = int(nsectors)
        self.op = op
        #: Reads default to synchronous, writes to asynchronous (writeback).
        self.sync = (op is IoOp.READ) if sync is None else bool(sync)
        self.process_id = process_id
        self.submit_time: Optional[float] = None
        self.queue_time: Optional[float] = None
        self.dispatch_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Completion event, bound lazily by the device that accepts the
        #: request (a request object is device-agnostic until submitted).
        self.completion: Optional["Event"] = None
        #: Requests merged into this one; their completions are triggered
        #: together with ours.
        self.merged_children: List["BlockRequest"] = []
        #: Expiry time used by the deadline/anticipatory FIFOs.
        self.deadline: Optional[float] = None
        #: Free-form provenance (e.g. the guest request a Dom0 request
        #: was created from).
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "S" if self.sync else "A"
        return (
            f"<BlockRequest #{self.rid} {self.op.value}{kind} "
            f"lba={self.lba}+{self.nsectors} proc={self.process_id!r}>"
        )

    @property
    def end_lba(self) -> int:
        """First sector *after* this request."""
        return self.lba + self.nsectors

    @property
    def nbytes(self) -> int:
        return self.nsectors * SECTOR_SIZE

    @property
    def latency(self) -> Optional[float]:
        """Queue-to-completion latency, if completed."""
        if self.complete_time is None or self.queue_time is None:
            return None
        return self.complete_time - self.queue_time

    # -- merging -----------------------------------------------------------
    def can_back_merge(self, other: "BlockRequest", max_sectors: int) -> bool:
        """Can ``other`` be appended to this request's tail?"""
        return (
            other.op is self.op
            and other.sync == self.sync
            and other.lba == self.end_lba
            and self.nsectors + other.nsectors <= max_sectors
        )

    def can_front_merge(self, other: "BlockRequest", max_sectors: int) -> bool:
        """Can ``other`` be prepended at this request's head?"""
        return (
            other.op is self.op
            and other.sync == self.sync
            and other.end_lba == self.lba
            and self.nsectors + other.nsectors <= max_sectors
        )

    def back_merge(self, other: "BlockRequest") -> None:
        """Absorb ``other`` at the tail."""
        self.nsectors += other.nsectors
        self.merged_children.append(other)

    def front_merge(self, other: "BlockRequest") -> None:
        """Absorb ``other`` at the head (the merged request starts earlier)."""
        self.lba = other.lba
        self.nsectors += other.nsectors
        self.merged_children.append(other)

    def all_completions(self) -> List["Event"]:
        """Completion events of this request and everything merged into it."""
        events = []
        if self.completion is not None:
            events.append(self.completion)
        for child in self.merged_children:
            events.extend(child.all_completions())
        return events

    def all_rids(self) -> List[int]:
        """This request's rid plus every (transitively) merged rid."""
        rids = [self.rid]
        for child in self.merged_children:
            rids.extend(child.all_rids())
        return rids
