"""Per-device statistics: throughput samplers, latencies, seek accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..sim.tracing import IntervalSampler
from .request import SECTOR_SIZE, BlockRequest, IoOp

__all__ = ["DeviceStats"]


@dataclass(slots=True)
class DeviceStats:
    """Rolling statistics for one block device.

    ``throughput`` accumulates completed bytes per wall-clock interval —
    the analogue of sampling ``iostat`` on the testbed, which is what
    the paper's Fig. 3 CDFs are built from.
    """

    sample_interval: float = 1.0
    throughput: IntervalSampler = field(init=False)
    read_bytes: int = 0
    write_bytes: int = 0
    read_count: int = 0
    write_count: int = 0
    merged_count: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: Set True to keep per-request latencies (memory vs detail).
    keep_latencies: bool = True

    def __post_init__(self) -> None:
        self.throughput = IntervalSampler(interval=self.sample_interval)

    def on_complete(self, request: BlockRequest, service_total: float,
                    seek: float, rotation: float, transfer: float) -> None:
        """Record a completed request (after merging, so one disk command)."""
        nbytes = request.nsectors * SECTOR_SIZE
        if request.op is IoOp.READ:
            self.read_bytes += nbytes
            self.read_count += 1
        else:
            self.write_bytes += nbytes
            self.write_count += 1
        if request.merged_children:
            self.merged_count += len(request.merged_children)
        self.busy_time += service_total
        self.seek_time += seek
        self.rotation_time += rotation
        self.transfer_time += transfer
        complete_time = request.complete_time
        self.throughput._events.append((complete_time, nbytes))
        if self.keep_latencies and request.queue_time is not None:
            self.latencies.append(complete_time - request.queue_time)

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_requests(self) -> int:
        return self.read_count + self.write_count

    def mean_throughput(self, duration: float) -> float:
        """Average bytes/second over ``duration``."""
        if duration <= 0:
            return 0.0
        return self.total_bytes / duration

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the spindle was busy."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.busy_time / duration)
