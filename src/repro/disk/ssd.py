"""FTL-based SSD device behind the :class:`ElevatorQueue` contract.

The paper's elevator effects are born from a single spindle whose
service time is dominated by seeks.  A flash device has no moving
parts; what it has instead is a *flash translation layer*: host writes
land in an on-device write cache, are coalesced, and are flushed
out-of-place onto NAND pages spread across parallel channels.  Erase
granularity (blocks) being much larger than write granularity (pages)
forces garbage collection — relocating still-valid pages out of a
victim block before erasing it — which multiplies every host write by
the measured *write amplification*.

The device keeps the queueing contract of :class:`DiskDevice` (same
``submit``/``switch_scheduler``/``pause`` surface, same ``disk.*``
trace topics, same fault knobs ``service_scale``/``extra_latency``)
so every layer above — guests, Dom0 elevators, the switch protocol,
fault injection — works unchanged.  What changes is the service path:

* requests dispatch NCQ-style (up to ``ncq_depth`` outstanding),
* page reads/programs queue FIFO on the owning NAND channel
  (channel = physical block id mod ``channels``),
* writes complete at cache latency and are flushed after a coalescing
  delay by a background writeback process,
* allocation failure triggers greedy GC: the sealed block with the
  most invalid pages is relocated and erased.

Everything is deterministic — no RNG is consumed; the ``rng`` the
storage-backend factory offers is accepted and unused, so hybrid
clusters keep per-host stream assignment identical to all-HDD ones.

Additional ``ssd.*`` trace topics (GC cycles, writeback flushes,
channel occupancy) are registered in :mod:`repro.obs.topics`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..iosched.base import IOScheduler
from ..sim.events import AllOf, Event, Timeout
from .device import ElevatorQueue
from .request import SECTOR_SIZE, BlockRequest, IoOp
from .stats import DeviceStats

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["SsdParameters", "SsdDevice"]


@dataclass(frozen=True)
class SsdParameters:
    """Timing and geometry of the modelled flash device.

    Defaults sketch a mid-range SATA SSD: 8 channels of NAND with
    ~60 µs page reads and ~200 µs page programs (≈0.5 GB/s read,
    ≈160 MB/s sustained program bandwidth), a 2 ms block erase, and a
    1 MiB on-device write cache flushed after a 10 ms coalescing
    window.  All fields are canonical-friendly scalars so the
    parameters can ride inside :class:`~repro.virt.cluster.ClusterConfig`
    and therefore inside sweep cache keys.
    """

    page_bytes: int = 4096
    pages_per_block: int = 64
    channels: int = 8
    #: NAND latencies (seconds): page read / page program / block erase.
    read_latency: float = 60e-6
    program_latency: float = 200e-6
    erase_latency: float = 2e-3
    #: Write-cache service latencies (seconds) for hits/absorbed writes.
    cache_read_latency: float = 15e-6
    cache_write_latency: float = 25e-6
    #: Write-cache capacity in pages; full = host writes backpressure.
    write_cache_pages: int = 256
    #: Coalescing window before dirty cache pages flush to NAND.
    writeback_delay: float = 0.010
    #: Greedy GC only fires on victims with at least this many invalid
    #: pages (reclaiming nearly-full blocks would thrash).
    gc_min_invalid: int = 16
    #: Native command queueing depth (outstanding requests).
    ncq_depth: int = 32

    def __post_init__(self) -> None:
        if self.page_bytes % SECTOR_SIZE != 0:
            raise ValueError("page_bytes must be a multiple of 512")
        if self.pages_per_block < 2:
            raise ValueError("pages_per_block must be >= 2")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.write_cache_pages < 1:
            raise ValueError("write_cache_pages must be >= 1")
        if not 1 <= self.gc_min_invalid <= self.pages_per_block:
            raise ValueError("gc_min_invalid must be in [1, pages_per_block]")
        if self.ncq_depth < 1:
            raise ValueError("ncq_depth must be >= 1")


class SsdDevice(ElevatorQueue):
    """A multi-channel FTL SSD with write cache and greedy GC."""

    kind = "ssd"

    def __init__(
        self,
        env: "Environment",
        scheduler: IOScheduler,
        params: Optional[SsdParameters] = None,
        name: str = "nvme0",
        trace: Optional["TraceBus"] = None,
        stats: Optional[DeviceStats] = None,
        switch_control_latency: float = 0.050,
        quiesce_holds_arrivals: bool = False,
    ):
        self.params = params or SsdParameters()
        self.stats = stats or DeviceStats()
        #: Fault-injection knobs, same semantics as :class:`DiskDevice`.
        self.service_scale = 1.0
        self.extra_latency = 0.0
        self._in_flight = 0

        # -- FTL state (all plain dicts/deques: deterministic iteration) --
        #: logical page -> (block id, slot in block)
        self._l2p: Dict[int, Tuple[int, int]] = {}
        #: block id -> {slot: logical page} (valid pages only)
        self._blocks: Dict[int, Dict[int, int]] = {}
        #: block id -> count of invalidated (overwritten/moved) slots
        self._invalid: Dict[int, int] = {}
        self._free: Deque[int] = deque()
        self._next_block = 0
        self._open: Optional[int] = None
        self._open_next = 0

        # -- write cache: insertion-ordered dirty page set ---------------
        self._dirty: Dict[int, None] = {}
        self._cache_waiters: List[Event] = []

        # -- counters ----------------------------------------------------
        self.host_pages = 0       # pages flushed from cache to NAND
        self.nand_programs = 0    # host flushes + GC relocations
        self.nand_reads = 0
        self.nand_erases = 0
        self.gc_cycles = 0
        self.gc_moved = 0
        self.flushed_pages = 0
        self.cache_coalesced = 0  # re-dirtied pages absorbed in cache
        self.cache_read_hits = 0

        super().__init__(env, scheduler, name, trace, switch_control_latency,
                         quiesce_holds_arrivals)

        self._chan_q: List[Deque[Tuple[float, Optional[Event]]]] = [
            deque() for _ in range(self.params.channels)
        ]
        self._chan_wake: List[Event] = [
            env.event() for _ in range(self.params.channels)
        ]
        for c in range(self.params.channels):
            env.process(self._channel_server(c))
        self._flush_wake: Event = env.event()
        env.process(self._flusher())

    # -- ElevatorQueue hooks -----------------------------------------------------
    def _outstanding(self) -> int:
        return self._in_flight

    @property
    def _can_dispatch(self) -> bool:
        return self._in_flight < self.params.ncq_depth

    def _serve(self, request: BlockRequest):
        """Admit NCQ-style; the per-request process does the real work."""
        self._in_flight += 1
        request.dispatch_time = self.env._now
        self.env.process(self._request_proc(request))
        return ()  # nothing to yield: dispatch continues immediately

    # -- request service ---------------------------------------------------------
    def _page_span(self, request: BlockRequest) -> range:
        first = (request.lba * SECTOR_SIZE) // self.params.page_bytes
        last = (request.end_lba * SECTOR_SIZE - 1) // self.params.page_bytes
        return range(first, last + 1)

    def _request_proc(self, request: BlockRequest):
        env = self.env
        t0 = env._now
        if request.op is IoOp.WRITE:
            yield from self._serve_write(request)
        else:
            yield from self._serve_read(request)
        if self.extra_latency > 0.0:
            yield Timeout(env, self.extra_latency)
        self._in_flight -= 1
        service_time = env._now - t0
        request.complete_time = env._now  # stats need it before _completed
        if self.trace is not None:
            # No mechanical split on flash: the whole service time is
            # "transfer" (cache + channel queueing + NAND latency).
            self.trace.publish(
                env.now,
                "disk.service",
                device=self.name,
                rid=request.rid,
                op=request.op.value,
                service=service_time,
                seek=0.0,
                rotation=0.0,
                transfer=service_time,
            )
        self.stats.on_complete(request, service_time, 0.0, 0.0, service_time)
        self._completed(request)

    def _serve_write(self, request: BlockRequest):
        """Absorb into the write cache (backpressure when full)."""
        env = self.env
        for lpn in self._page_span(request):
            while (lpn not in self._dirty
                   and len(self._dirty) >= self.params.write_cache_pages):
                waiter = Event(env)
                self._cache_waiters.append(waiter)
                yield waiter
            if lpn in self._dirty:
                # Re-written before flush: coalesced, no extra NAND work.
                self.cache_coalesced += 1
            else:
                self._dirty[lpn] = None
                self._kick_flusher()
        yield Timeout(env, self.params.cache_write_latency * self.service_scale)

    def _serve_read(self, request: BlockRequest):
        env = self.env
        nand_events: List[Event] = []
        hit_cache = False
        for lpn in self._page_span(request):
            if lpn in self._dirty:
                hit_cache = True
                self.cache_read_hits += 1
                continue
            mapped = self._l2p.get(lpn)
            channel = (mapped[0] if mapped is not None else lpn) \
                % self.params.channels
            done = Event(env)
            self._charge(channel, self.params.read_latency, done)
            self.nand_reads += 1
            nand_events.append(done)
        if hit_cache:
            yield Timeout(env,
                          self.params.cache_read_latency * self.service_scale)
        if nand_events:
            yield AllOf(env, nand_events)

    # -- NAND channels -----------------------------------------------------------
    def _charge(self, channel: int, latency: float,
                done: Optional[Event] = None) -> None:
        """Queue one NAND operation on ``channel`` (FIFO service)."""
        q = self._chan_q[channel]
        q.append((latency, done))
        if self.trace is not None:
            self.trace.publish(
                self.env._now,
                "ssd.channel",
                device=self.name,
                channel=channel,
                depth=len(q),
            )
        wake = self._chan_wake[channel]
        if not wake.triggered:
            wake.succeed()

    def _channel_server(self, channel: int):
        env = self.env
        q = self._chan_q[channel]
        while True:
            if not q:
                self._chan_wake[channel] = Event(env)
                yield self._chan_wake[channel]
                continue
            latency, done = q.popleft()
            yield Timeout(env, latency * self.service_scale)
            if done is not None:
                done.succeed()

    # -- write cache flushing ----------------------------------------------------
    def _kick_flusher(self) -> None:
        wake = self._flush_wake
        if not wake.triggered:
            wake.succeed()

    def _flusher(self):
        env = self.env
        while True:
            if not self._dirty:
                self._flush_wake = Event(env)
                yield self._flush_wake
                continue
            # Coalescing window: everything dirtied meanwhile flushes in
            # one pass, in first-dirtied order.
            yield Timeout(env, self.params.writeback_delay)
            self._flush_dirty()

    def _flush_dirty(self) -> None:
        drained = list(self._dirty)
        self._dirty.clear()
        for lpn in drained:
            self.host_pages += 1
            self._program(lpn)
        self.flushed_pages += len(drained)
        if drained and self.trace is not None:
            self.trace.publish(
                self.env._now,
                "ssd.writeback",
                device=self.name,
                pages=len(drained),
            )
        waiters, self._cache_waiters = self._cache_waiters, []
        for waiter in waiters:
            waiter.succeed()

    # -- FTL: mapping, allocation, GC --------------------------------------------
    def _program(self, lpn: int, during_gc: bool = False) -> None:
        """Write ``lpn`` out-of-place; invalidate any previous copy."""
        old = self._l2p.get(lpn)
        if old is not None:
            old_block, old_slot = old
            valid = self._blocks.get(old_block)
            if valid is not None and valid.get(old_slot) == lpn:
                del valid[old_slot]
                self._invalid[old_block] += 1
        if self._open is None or self._open_next >= self.params.pages_per_block:
            self._open = self._alloc_block(during_gc)
            self._open_next = 0
            self._blocks[self._open] = {}
            self._invalid[self._open] = 0
        block, slot = self._open, self._open_next
        self._open_next += 1
        self._blocks[block][slot] = lpn
        self._l2p[lpn] = (block, slot)
        self.nand_programs += 1
        self._charge(block % self.params.channels, self.params.program_latency)

    def _alloc_block(self, during_gc: bool) -> int:
        if not self._free and not during_gc:
            self._gc_if_worthwhile()
        if self._free:
            return self._free.popleft()
        block = self._next_block
        self._next_block += 1
        return block

    def _gc_if_worthwhile(self) -> None:
        """Greedy GC: erase the sealed block with the most invalid pages."""
        victim = None
        best = self.params.gc_min_invalid - 1
        for block, invalid in self._invalid.items():
            if block == self._open:
                continue
            if invalid > best:
                best = invalid
                victim = block
        if victim is None:
            return
        moved = list(self._blocks[victim].items())
        self.gc_cycles += 1
        victim_channel = victim % self.params.channels
        for _slot, lpn in moved:
            self._charge(victim_channel, self.params.read_latency)
            self.nand_reads += 1
            self._program(lpn, during_gc=True)
            self.gc_moved += 1
        self._charge(victim_channel, self.params.erase_latency)
        self.nand_erases += 1
        del self._blocks[victim]
        del self._invalid[victim]
        self._free.append(victim)
        if self.trace is not None:
            self.trace.publish(
                self.env._now,
                "ssd.gc",
                device=self.name,
                victim=victim,
                moved=len(moved),
                freed=self.params.pages_per_block - len(moved),
                write_amp=self.write_amp,
            )

    # -- accounting --------------------------------------------------------------
    @property
    def write_amp(self) -> float:
        """NAND programs per host page flushed (>= 1 once anything flushed)."""
        if self.host_pages == 0:
            return 1.0
        return self.nand_programs / self.host_pages

    def check_conservation(self) -> None:
        """Every mapped logical page lives in exactly one valid slot."""
        placed = 0
        for block, valid in self._blocks.items():
            for slot, lpn in valid.items():
                if self._l2p.get(lpn) != (block, slot):
                    raise AssertionError(
                        f"lpn {lpn} valid in block {block} slot {slot} but "
                        f"mapped to {self._l2p.get(lpn)}"
                    )
                placed += 1
        if placed != len(self._l2p):
            raise AssertionError(
                f"{len(self._l2p)} mapped pages but {placed} valid slots"
            )

    def storage_stats(self) -> Dict[str, object]:
        """JSON-able FTL counters for run payloads and reports."""
        return {
            "kind": self.kind,
            "host_pages": self.host_pages,
            "nand_programs": self.nand_programs,
            "nand_reads": self.nand_reads,
            "nand_erases": self.nand_erases,
            "gc_cycles": self.gc_cycles,
            "gc_moved_pages": self.gc_moved,
            "flushed_pages": self.flushed_pages,
            "cache_coalesced": self.cache_coalesced,
            "cache_read_hits": self.cache_read_hits,
            "write_amp": self.write_amp,
        }
