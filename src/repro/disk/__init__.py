"""Single-spindle disk substrate: requests, geometry, timing, device."""

from .device import DiskDevice
from .geometry import DiskGeometry
from .model import DiskParameters, ServiceBreakdown, ServiceTimeModel
from .request import SECTOR_SIZE, BlockRequest, IoOp
from .stats import DeviceStats

__all__ = [
    "SECTOR_SIZE",
    "BlockRequest",
    "DeviceStats",
    "DiskDevice",
    "DiskGeometry",
    "DiskParameters",
    "IoOp",
    "ServiceBreakdown",
    "ServiceTimeModel",
]
