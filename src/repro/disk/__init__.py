"""Block-storage substrate: requests, geometry, timing, pluggable devices.

Backends (HDD spindle, FTL SSD, hybrid) are picked by name through the
:mod:`repro.disk.backend` registry; an optional host buffer-cache tier
(:mod:`repro.disk.cachetier`) can front any of them.
"""

from .backend import (
    StorageBackend,
    StorageParams,
    UnknownStorageError,
    make_device,
    register_storage,
    resolve_storage,
    storage_names,
)
from .cachetier import CacheTier, CacheTierParams
from .device import DiskDevice
from .geometry import DiskGeometry
from .model import DiskParameters, ServiceBreakdown, ServiceTimeModel
from .request import SECTOR_SIZE, BlockRequest, IoOp
from .ssd import SsdDevice, SsdParameters
from .stats import DeviceStats

__all__ = [
    "SECTOR_SIZE",
    "BlockRequest",
    "CacheTier",
    "CacheTierParams",
    "DeviceStats",
    "DiskDevice",
    "DiskGeometry",
    "DiskParameters",
    "IoOp",
    "ServiceBreakdown",
    "ServiceTimeModel",
    "SsdDevice",
    "SsdParameters",
    "StorageBackend",
    "StorageParams",
    "UnknownStorageError",
    "make_device",
    "register_storage",
    "resolve_storage",
    "storage_names",
]
