"""Positional service-time model for a single-spindle disk.

Service time for a request is ``seek + rotational latency + transfer``:

* no seek and no rotational latency when the request starts exactly
  where the previous one ended (sequential streaming);
* seek time follows the classic ``settle + c*sqrt(distance)`` curve;
* rotational latency is drawn uniformly from one platter revolution
  whenever the head had to reposition (seeded stream → deterministic);
* transfer time is the request size over the zoned sequential rate.

This is deliberately a *mechanism* model, not a timing-accurate drive
emulator: the scheduler comparisons in the paper are driven by how each
policy changes the seek/sequentiality mix, which this captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt
from typing import Optional

import numpy as np

from ..sim.rng import fallback_rng
from .geometry import DiskGeometry
from .request import BlockRequest, IoOp

__all__ = ["DiskParameters", "ServiceTimeModel", "ServiceBreakdown"]


@dataclass(frozen=True)
class DiskParameters:
    """Timing constants for the drive mechanics (7200 RPM defaults)."""

    #: Seconds per platter revolution (7200 RPM → 8.33 ms).
    rotation_time: float = 60.0 / 7200.0
    #: Head settle time charged on every non-zero seek, seconds.
    seek_settle: float = 0.0008
    #: Coefficient of the sqrt(distance-in-cylinders) seek term, seconds.
    seek_sqrt_coeff: float = 4.45e-5
    #: Extra settle charged before a write after repositioning, seconds.
    write_settle: float = 0.0003
    #: Fixed per-command overhead (protocol + controller), seconds.
    command_overhead: float = 0.0001

    def seek_time(self, distance_cylinders: int) -> float:
        """Seconds to move the head across ``distance_cylinders``."""
        if distance_cylinders <= 0:
            return 0.0
        return self.seek_settle + self.seek_sqrt_coeff * sqrt(distance_cylinders)

    @property
    def average_rotational_latency(self) -> float:
        return self.rotation_time / 2.0


@dataclass
class ServiceBreakdown:
    """Component times for one serviced request (for tracing/ablation)."""

    seek: float = 0.0
    rotation: float = 0.0
    transfer: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.seek + self.rotation + self.transfer + self.overhead


@dataclass
class ServiceTimeModel:
    """Stateful head-position model producing per-request service times."""

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    params: DiskParameters = field(default_factory=DiskParameters)
    rng: Optional[np.random.Generator] = None
    #: LBA immediately after the last transferred sector (head position).
    head_lba: int = 0

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = fallback_rng()
        # Rotational-latency draws, fetched from the Generator in batches.
        # A batched ``uniform(lo, hi, n)`` yields the bit-identical
        # sequence the same Generator would produce via n single draws,
        # and this model owns its stream, so results are unchanged.
        self._rot_draws: list = []
        self._rot_idx = 0

    def service(self, request: BlockRequest) -> ServiceBreakdown:
        """Compute the service breakdown for ``request`` and move the head."""
        params = self.params
        b = ServiceBreakdown(overhead=params.command_overhead)

        if request.lba != self.head_lba:
            distance = self.geometry.seek_distance(self.head_lba, request.lba)
            b.seek = params.seek_time(distance)
            # Repositioned (possibly within the same cylinder): wait for
            # the target sector to come around.
            idx = self._rot_idx
            draws = self._rot_draws
            if idx == len(draws):
                draws = self._rot_draws = self.rng.uniform(
                    0.0, params.rotation_time, 512
                ).tolist()
                idx = 0
            b.rotation = draws[idx]
            self._rot_idx = idx + 1
            if request.op is IoOp.WRITE:
                b.seek += params.write_settle

        rate = self.geometry.rate_at(request.lba)
        b.transfer = request.nbytes / rate

        self.head_lba = request.end_lba
        return b
