"""Block-device queues: admission, dispatch loop, elevator switching.

Two concrete queues share the :class:`ElevatorQueue` machinery:

* :class:`DiskDevice` — the bottom of the stack; "serving" a request
  means occupying the (single) spindle for its modelled service time.
* :class:`repro.virt.vdisk.VirtualBlockDevice` — a guest's view; serving
  means forwarding through the bounded blkfront/blkback ring to Dom0.

Both implement the 2.6-era *elevator switch* protocol the paper
exploits: when the elevator is replaced, the old one is drained — its
queued requests move to a plain FIFO dispatch list and new arrivals
bypass scheduling entirely until the backlog clears.  During that
window the device effectively degrades to noop and the new elevator
starts cold; both effects contribute to the measured switching cost
(paper Fig. 5).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from ..iosched.base import DispatchDecision, IOScheduler
from ..sim.events import PENDING, AnyOf, Event, Timeout
from .model import ServiceTimeModel
from .request import BlockRequest
from .stats import DeviceStats

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus

__all__ = ["ElevatorQueue", "DiskDevice"]


class ElevatorQueue(abc.ABC):
    """Shared queue machinery: submit, dispatch loop, hot switch."""

    #: Backend kind label carried in ``disk.submit`` records so reports
    #: can tell HDDs, SSDs, and guest vdisks apart.
    kind = "disk"

    def __init__(
        self,
        env: "Environment",
        scheduler: IOScheduler,
        name: str,
        trace: Optional["TraceBus"] = None,
        switch_control_latency: float = 0.050,
        quiesce_holds_arrivals: bool = False,
    ):
        self.env = env
        self.scheduler = scheduler
        self.name = name
        self.trace = trace
        #: Fixed control-plane latency of one sysfs elevator write.
        self.switch_control_latency = switch_control_latency
        #: True → arrivals during a switch block at admission
        #: (``elv_may_queue`` semantics); False → they join the dispatch
        #: FIFO unscheduled (``ELVSWITCH`` bypass semantics, the 2.6
        #: default) and are served noop-style until the new elevator is
        #: in place.  Bypass is the default because holding arrivals
        #: turns the switch into a cluster-wide barrier whose convoy
        #: effect can *reward* switching — the opposite of the measured
        #: reality.
        self.quiesce_holds_arrivals = quiesce_holds_arrivals

        #: Old-elevator requests being drained during a switch (they are
        #: dispatched with priority, in the old policy's order).
        self._drain_fifo: Deque[BlockRequest] = deque()
        #: Requests submitted while a switch is in progress.  The 2.6
        #: kernel blocks submitters at ``elv_may_queue`` until the queue
        #: is un-quiesced, so these are *held*, not dispatched — the
        #: stall this causes under load is the bulk of the paper's
        #: switching cost.
        self._held: Deque[BlockRequest] = deque()
        #: rids of old-elevator requests the switch must see complete.
        self._drain_watch: set = set()
        self._switching = False
        self._switch_waiters: List[Event] = []
        self.switch_count = 0
        #: True while dispatch is administratively frozen (VM pause).
        self._paused = False

        self._wakeup: Event = env.event()
        self._proc = env.process(self._run())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<{self.__class__.__name__} {self.name} "
            f"sched={self.scheduler.name} queued={self.queue_depth}>"
        )

    # -- abstract service --------------------------------------------------------
    @abc.abstractmethod
    def _serve(self, request: BlockRequest):
        """Generator that performs (or forwards) the request."""

    @abc.abstractmethod
    def _outstanding(self) -> int:
        """Requests dispatched but not yet completed."""

    @property
    @abc.abstractmethod
    def _can_dispatch(self) -> bool:
        """Whether the service path can take another request now."""

    # -- public API ----------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests queued (scheduler + switch FIFOs), excluding outstanding."""
        return self.scheduler.pending + len(self._drain_fifo) + len(self._held)

    @property
    def idle(self) -> bool:
        return self._outstanding() == 0 and self.queue_depth == 0

    def submit(self, request: BlockRequest) -> Event:
        """Queue a request; returns its completion event."""
        now = self.env._now
        request.queue_time = now
        if request.submit_time is None:
            request.submit_time = now
        request.completion = Event(self.env)
        if self._switching:
            if self.quiesce_holds_arrivals:
                # Quiesced: the submitter blocks until the new elevator
                # is installed.
                self._held.append(request)
            else:
                # ELVSWITCH bypass: straight onto the dispatch FIFO,
                # unsorted and unmerged.
                self._drain_fifo.append(request)
        else:
            self.scheduler.add_request(request, now)
        if self.trace is not None:
            self.trace.publish(
                now,
                "disk.submit",
                device=self.name,
                kind=self.kind,
                rid=request.rid,
                op=request.op.value,
                lba=request.lba,
                nsectors=request.nsectors,
                process=request.process_id,
            )
        self._kick()
        return request.completion

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Stop dispatching new requests (fault injection: VM pause).

        Requests already in service (or in the backend ring) drain
        normally; arrivals keep queueing and are admitted on
        :meth:`resume`.  Idempotent.
        """
        self._paused = True

    def resume(self) -> None:
        """Restart the dispatch loop after :meth:`pause`."""
        if not self._paused:
            return
        self._paused = False
        self._kick()

    def switch_scheduler(self, factory: Callable[[], IOScheduler]) -> Event:
        """Replace the elevator; returns an event fired when installed.

        Follows the 2.6 protocol: mark the queue as switching, move the
        old elevator's requests to the FIFO dispatch list, wait for the
        whole backlog (plus anything outstanding) to drain, then build
        the new elevator.  A same-to-same switch pays the same price —
        the paper notes re-writing the current scheduler name is not
        free, and neither is it here.
        """
        done = self.env.event()
        self.env.process(self._switch_proc(factory, done))
        return done

    # -- switch internals --------------------------------------------------------------
    def _switch_proc(self, factory: Callable[[], IOScheduler], done: Event):
        # Switches serialize (sysfs store is locked in the kernel).
        while self._switching:
            waiter = self.env.event()
            self._switch_waiters.append(waiter)
            yield waiter

        self._switching = True
        self.switch_count += 1
        start = self.env.now
        # sysfs write + elevator teardown bookkeeping.
        yield self.env.timeout(self.switch_control_latency)

        # Drain: the old elevator's queue empties onto the FIFO list in
        # the old policy's dispatch order.
        drained = self._drain_scheduler_in_policy_order(self.env.now)
        self._drain_fifo.extend(drained)
        self._drain_watch = {r.rid for r in drained}
        self._kick()

        # Wait until the old elevator's backlog has cleared the device
        # (2.6 waits for the quiesced requests to finish; requests that
        # arrive meanwhile flow via the bypass FIFO and do not extend
        # the wait).
        while self._drain_watch:
            waiter = self.env.event()
            self._switch_waiters.append(waiter)
            yield waiter
        while self._outstanding() > 0 and self.quiesce_holds_arrivals:
            waiter = self.env.event()
            self._switch_waiters.append(waiter)
            yield waiter

        self.scheduler = factory()
        self._switching = False
        # Un-quiesce: requests that blocked during the switch enter the
        # fresh elevator (which starts cold: empty merge hash, no
        # anticipation history, fresh CFQ slices).
        now = self.env.now
        while self._held:
            self.scheduler.add_request(self._held.popleft(), now)
        if self.trace is not None:
            self.trace.publish(
                self.env.now,
                "disk.switched",
                device=self.name,
                scheduler=self.scheduler.name,
                stall=self.env.now - start,
            )
        done.succeed(self.env.now - start)
        self._notify_switch_waiters()
        self._kick()

    def _drain_scheduler_in_policy_order(self, now: float) -> List[BlockRequest]:
        """Pull everything out of the old elevator in its dispatch order.

        The drain preserves the old policy's ordering for requests it
        had already sorted, which is why draining a noop queue full of
        interleaved writes is slower end-to-end than draining a sorted
        one.  Idle holds (anticipation, slice idling) are skipped by
        advancing a pseudo-clock to the hold deadline — the drain does
        not wait.
        """
        ordered: List[BlockRequest] = []
        t = now
        guard = self.scheduler.pending * 8 + 64
        while self.scheduler.pending > 0 and guard > 0:
            guard -= 1
            decision = self.scheduler.next_request(t)
            if decision.request is not None:
                ordered.append(decision.request)
            elif decision.wait_until is not None and decision.wait_until > t:
                t = decision.wait_until
            else:
                break
        if self.scheduler.pending > 0:
            # Policy refused to dispatch (shouldn't happen) — force drain.
            ordered.extend(self.scheduler.drain())
        return ordered

    def _notify_switch_waiters(self) -> None:
        waiters, self._switch_waiters = self._switch_waiters, []
        for waiter in waiters:
            waiter.succeed()

    # -- dispatch loop ------------------------------------------------------------------
    def _kick(self) -> None:
        wakeup = self._wakeup
        if wakeup._value is PENDING:
            wakeup.succeed()

    def _run(self):
        env = self.env
        while True:
            if self._paused or not self._can_dispatch:
                # Paused, or service path saturated (spindle busy /
                # ring full).
                self._wakeup = Event(env)
                yield self._wakeup
                continue
            if self._drain_fifo:
                decision = DispatchDecision(request=self._drain_fifo.popleft())
            elif self._switching:
                decision = DispatchDecision()  # held requests wait out the switch
            else:
                decision = self.scheduler.next_request(env._now)
            request = decision.request
            wait_until = decision.wait_until
            if request is not None:
                yield from self._serve(request)
            elif wait_until is not None and wait_until > env._now:
                # Anticipation / slice idling: hold unless a new request
                # arrives first.
                self._wakeup = Event(env)
                hold = Timeout(env, wait_until - env._now)
                yield AnyOf(env, [self._wakeup, hold])
            elif wait_until is not None:
                continue  # hold already expired; ask again
            else:
                self._wakeup = Event(env)
                yield self._wakeup

    def _next_decision(self) -> DispatchDecision:
        if self._drain_fifo:
            return DispatchDecision(request=self._drain_fifo.popleft())
        if self._switching:
            return DispatchDecision()  # held requests wait out the switch
        return self.scheduler.next_request(self.env._now)

    def _completed(self, request: BlockRequest) -> None:
        """Common completion path: notify scheduler, waiters, tracing."""
        now = self.env._now
        request.complete_time = now
        if not self._switching:
            self.scheduler.on_complete(request, now)
        if self.trace is not None:
            self.trace.publish(
                now,
                "disk.complete",
                device=self.name,
                rid=request.rid,
                op=request.op.value,
                nbytes=request.nbytes,
                process=request.process_id,
                # Requests absorbed by elevator merging complete here
                # too; listing them lets auditors prove every submitted
                # rid completes exactly once.
                merged_rids=request.all_rids()[1:],
            )
        if request.merged_children:
            for event in request.all_completions():
                event.succeed(request)
        elif request.completion is not None:
            request.completion.succeed(request)
        if self._switching:
            self._drain_watch.discard(request.rid)
            self._notify_switch_waiters()
        self._kick()


class DiskDevice(ElevatorQueue):
    """A single-spindle block device with a pluggable elevator."""

    kind = "hdd"

    def __init__(
        self,
        env: "Environment",
        scheduler: IOScheduler,
        model: ServiceTimeModel,
        name: str = "sda",
        trace: Optional["TraceBus"] = None,
        stats: Optional[DeviceStats] = None,
        switch_control_latency: float = 0.050,
        quiesce_holds_arrivals: bool = False,
    ):
        self.model = model
        self.stats = stats or DeviceStats()
        self.in_flight: Optional[BlockRequest] = None
        #: Fault-injection knobs: multiplicative service-time slowdown
        #: and additive per-request latency.  The defaults (×1.0, +0.0)
        #: leave modelled service times bit-identical.
        self.service_scale = 1.0
        self.extra_latency = 0.0
        super().__init__(env, scheduler, name, trace, switch_control_latency,
                         quiesce_holds_arrivals)

    # -- ElevatorQueue hooks -----------------------------------------------------
    def _outstanding(self) -> int:
        return 0 if self.in_flight is None else 1

    @property
    def _can_dispatch(self) -> bool:
        return self.in_flight is None

    def _serve(self, request: BlockRequest):
        env = self.env
        self.in_flight = request
        request.dispatch_time = env._now
        breakdown = self.model.service(request)
        service_time = breakdown.total * self.service_scale + self.extra_latency
        yield Timeout(env, service_time)
        self.in_flight = None
        request.complete_time = env._now  # stats need it before _completed
        if self.trace is not None:
            # Service breakdown is only known at the spindle; vdisks
            # forward, so this topic is Dom0-device-only by design.
            self.trace.publish(
                env.now,
                "disk.service",
                device=self.name,
                rid=request.rid,
                op=request.op.value,
                service=service_time,
                seek=breakdown.seek,
                rotation=breakdown.rotation,
                transfer=breakdown.transfer,
            )
        self.stats.on_complete(
            request,
            service_time,
            breakdown.seek,
            breakdown.rotation,
            breakdown.transfer,
        )
        self._completed(request)
