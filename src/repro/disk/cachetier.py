"""Host-side buffer-cache / write-buffer tier fronting any block device.

An optional layer between the guests' virtual disks and the Dom0
device: reads that hit recently-touched pages complete at memory
latency without entering the Dom0 elevator at all; writes are absorbed
into a write buffer and flushed to the device later — coalesced into
contiguous runs — by a background writeback process.  Dirty pages
evicted under capacity pressure are synced to the backing device
first, so no acknowledged write is ever lost.

The tier is *not* an :class:`~repro.disk.device.ElevatorQueue`: it
exposes only the one method the guest ring needs
(``submit(request) -> Event``), forwarding misses and flushes to the
real device underneath.  The Dom0 elevator, the switch protocol, and
fault injection therefore keep operating on the device itself; the
tier just thins the request stream that reaches it.

Bookkeeping follows the classic buffer-cache shape (hit/miss counters
against a reference count, LRU recency, dirty sync on eviction); the
invariant ``hits + misses == references`` is part of the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.events import Event, Timeout
from .request import SECTOR_SIZE, BlockRequest, IoOp

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment

__all__ = ["CacheTierParams", "CacheTier"]


@dataclass(frozen=True)
class CacheTierParams:
    """Sizing and timing of the host buffer-cache tier.

    ``enabled=False`` (the default) builds no tier at all, keeping the
    stock request path — and therefore every existing payload —
    bit-identical.
    """

    enabled: bool = False
    capacity_pages: int = 4096
    page_bytes: int = 4096
    #: Service latency of a cache hit / write absorption (seconds).
    hit_latency: float = 20e-6
    #: Coalescing window before dirty pages flush to the device.
    writeback_delay: float = 0.050

    def __post_init__(self) -> None:
        if self.page_bytes % SECTOR_SIZE != 0:
            raise ValueError("page_bytes must be a multiple of 512")
        if self.capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if self.writeback_delay < 0:
            raise ValueError("writeback_delay must be >= 0")


class CacheTier:
    """LRU page cache + write buffer in front of a block device."""

    kind = "cache"

    def __init__(
        self,
        env: "Environment",
        device,
        params: Optional[CacheTierParams] = None,
        name: str = "bc",
    ):
        self.env = env
        self.device = device
        self.params = params or CacheTierParams(enabled=True)
        self.name = name
        #: page number -> dirty flag; insertion order is LRU order
        #: (re-references delete + re-insert).
        self._pages: Dict[int, bool] = {}
        self._flush_wake: Event = env.event()
        self.references = 0
        self.hits = 0
        self.misses = 0
        self.flushed_pages = 0
        self.evicted_dirty = 0
        env.process(self._flusher())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<CacheTier {self.name} pages={len(self._pages)} "
            f"hits={self.hits} misses={self.misses}>"
        )

    # -- the device-facing surface -----------------------------------------------
    def submit(self, request: BlockRequest) -> Event:
        """Serve (or forward) one request; returns its completion event."""
        done = Event(self.env)
        self.env.process(self._serve(request, done))
        return done

    # -- service -----------------------------------------------------------------
    def _page_span(self, request: BlockRequest) -> range:
        first = (request.lba * SECTOR_SIZE) // self.params.page_bytes
        last = (request.end_lba * SECTOR_SIZE - 1) // self.params.page_bytes
        return range(first, last + 1)

    def _serve(self, request: BlockRequest, done: Event):
        env = self.env
        if request.op is IoOp.READ:
            missing = False
            for pn in self._page_span(request):
                self.references += 1
                if pn in self._pages:
                    self.hits += 1
                    self._touch(pn)
                else:
                    self.misses += 1
                    missing = True
            if missing:
                forward = BlockRequest(
                    lba=request.lba,
                    nsectors=request.nsectors,
                    op=IoOp.READ,
                    process_id=request.process_id,
                    sync=request.sync,
                    origin=request,
                )
                yield self.device.submit(forward)
                for pn in self._page_span(request):
                    self._insert(pn, dirty=False)
            elif self.params.hit_latency > 0:
                yield Timeout(env, self.params.hit_latency)
        else:
            for pn in self._page_span(request):
                self.references += 1
                if pn in self._pages:
                    self.hits += 1
                else:
                    self.misses += 1
                self._insert(pn, dirty=True)
            self._kick_flusher()
            if self.params.hit_latency > 0:
                yield Timeout(env, self.params.hit_latency)
        request.complete_time = env._now
        done.succeed(request)

    # -- LRU ---------------------------------------------------------------------
    def _touch(self, pn: int) -> None:
        dirty = self._pages.pop(pn)
        self._pages[pn] = dirty

    def _insert(self, pn: int, dirty: bool) -> None:
        was_dirty = self._pages.pop(pn, False)
        self._pages[pn] = dirty or was_dirty
        while len(self._pages) > self.params.capacity_pages:
            victim = next(iter(self._pages))
            victim_dirty = self._pages.pop(victim)
            if victim_dirty:
                # Sync the victim to the device before dropping it.
                self.evicted_dirty += 1
                self._write_back([victim])

    # -- writeback ---------------------------------------------------------------
    def _kick_flusher(self) -> None:
        wake = self._flush_wake
        if not wake.triggered:
            wake.succeed()

    def _flusher(self):
        env = self.env
        while True:
            if not any(self._pages.values()):
                self._flush_wake = Event(env)
                yield self._flush_wake
                continue
            yield Timeout(env, self.params.writeback_delay)
            dirty = [pn for pn, is_dirty in self._pages.items() if is_dirty]
            for pn in dirty:
                self._pages[pn] = False
            self._write_back(dirty)

    def _write_back(self, page_numbers: List[int]) -> None:
        """Flush pages to the device, coalesced into contiguous runs."""
        if not page_numbers:
            return
        sectors_per_page = self.params.page_bytes // SECTOR_SIZE
        for start, count in self._runs(sorted(page_numbers)):
            self.device.submit(BlockRequest(
                lba=start * sectors_per_page,
                nsectors=count * sectors_per_page,
                op=IoOp.WRITE,
                process_id=self.name,
                sync=False,
            ))
        self.flushed_pages += len(page_numbers)

    @staticmethod
    def _runs(page_numbers: List[int]) -> List[Tuple[int, int]]:
        """Collapse a sorted page list into (start, length) runs."""
        runs: List[Tuple[int, int]] = []
        start = prev = page_numbers[0]
        for pn in page_numbers[1:]:
            if pn == prev + 1:
                prev = pn
                continue
            runs.append((start, prev - start + 1))
            start = prev = pn
        runs.append((start, prev - start + 1))
        return runs

    # -- accounting --------------------------------------------------------------
    def storage_stats(self) -> Dict[str, object]:
        """JSON-able counters for run payloads and reports."""
        return {
            "kind": self.kind,
            "references": self.references,
            "hits": self.hits,
            "misses": self.misses,
            "flushed_pages": self.flushed_pages,
            "evicted_dirty": self.evicted_dirty,
        }
