"""Disk geometry: LBA-to-cylinder mapping and zoned transfer rates.

A single-spindle SATA disk circa 2010: data density (and therefore the
sequential transfer rate) falls roughly linearly from the outer to the
inner cylinders, and seeking between cylinders costs time that grows
with the square root of the distance plus a fixed settle component.
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import SECTOR_SIZE

__all__ = ["DiskGeometry"]


@dataclass(frozen=True)
class DiskGeometry:
    """Static layout of the platter stack.

    The defaults model a 1 TB 7200 RPM SATA disk like the paper's
    testbed drives.
    """

    #: Total capacity in 512-byte sectors (1 TB default).
    total_sectors: int = 2_000_000_000
    #: Number of logical cylinders used for seek-distance accounting.
    cylinders: int = 150_000
    #: Sequential transfer rate at the outermost cylinder, bytes/second.
    outer_rate: float = 130e6
    #: Sequential transfer rate at the innermost cylinder, bytes/second.
    inner_rate: float = 65e6

    def __post_init__(self) -> None:
        if self.total_sectors <= 0 or self.cylinders <= 0:
            raise ValueError("geometry dimensions must be positive")
        if self.inner_rate <= 0 or self.outer_rate < self.inner_rate:
            raise ValueError("rates must satisfy 0 < inner_rate <= outer_rate")
        # Derived values cached outside the dataclass fields (the class
        # is frozen, so set via object.__setattr__); every serviced
        # request maps LBAs to cylinders, so these are hot.
        object.__setattr__(self, "_spc", max(1, self.total_sectors // self.cylinders))
        object.__setattr__(self, "_last_cyl", self.cylinders - 1)
        object.__setattr__(self, "_cyl_denom", max(1, self.cylinders - 1))
        object.__setattr__(self, "_rate_span", self.outer_rate - self.inner_rate)

    @property
    def sectors_per_cylinder(self) -> int:
        return self._spc

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * SECTOR_SIZE

    def cylinder_of(self, lba: int) -> int:
        """Cylinder containing ``lba`` (clamped to the last cylinder)."""
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        cyl = lba // self._spc
        return cyl if cyl < self._last_cyl else self._last_cyl

    def rate_at(self, lba: int) -> float:
        """Sequential transfer rate (bytes/s) at ``lba``.

        Outer cylinders (low LBAs) are fastest, falling linearly to the
        inner rate — the standard zoned-bit-recording approximation.
        """
        frac = self.cylinder_of(lba) / self._cyl_denom
        return self.outer_rate - frac * self._rate_span

    def seek_distance(self, from_lba: int, to_lba: int) -> int:
        """Seek distance in cylinders between two LBAs."""
        return abs(self.cylinder_of(to_lba) - self.cylinder_of(from_lba))
