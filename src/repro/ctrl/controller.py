"""The online adaptive controller: live signals → boundaries → switches.

Unlike the offline path (:class:`~repro.core.experiment.JobRunner`'s
``_switcher``), which is handed the job's own phase-boundary events,
this controller learns the boundaries the way a real daemon would —
from the trace topics the simulation already publishes:

* ``job.map_finished`` — map progress; ``done == total`` marks the
  map→tail boundary (published *before* the job's internal
  ``maps_done_event`` fires, so detection lands at the same simulated
  instant as the oracle event);
* ``shuffle.fetch`` — live shuffle residual; ``remaining == 0`` marks
  the shuffle→reduce boundary on three-phase plans;
* ``disk.submit``/``disk.complete`` — folded into per-device
  queue-depth gauges by :class:`~repro.obs.metrics.TraceMetrics`, the
  state the switch-cost estimate reads.

Trace subscription is schedule-neutral (no simulated time, no RNG), so
attaching the controller without ever switching leaves the job's
payload bit-identical to an uncontrolled run — the anchor property of
``tests/ctrl``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from ..virt.pair import SchedulerPair
from .config import CtrlConfig
from .policies import ControllerPolicy, Observation

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus, TraceRecord
    from ..virt.cluster import VirtualCluster

__all__ = ["OnlineAdaptiveController", "BOUNDARY_NAMES", "SIGNAL_TOPICS"]

#: Boundary names in firing order (index = phase the boundary opens - 1).
BOUNDARY_NAMES = ("maps_done", "shuffle_done")

#: Topics the controller's metrics bridge must fold (queue depth).
SIGNAL_TOPICS = ("disk.submit", "disk.complete")


class OnlineAdaptiveController:
    """Detects phase boundaries from the trace bus and switches pairs.

    One controller serves one single-job run.  Construction subscribes
    the boundary detectors and launches the decision process; after
    ``env.run`` completes, :meth:`report` returns the JSON-able record
    of everything the controller saw and did.
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        bus: "TraceBus",
        registry: "MetricsRegistry",
        policy: ControllerPolicy,
        config: CtrlConfig,
        n_phases: int = 2,
    ):
        self.env = env
        self.cluster = cluster
        self.bus = bus
        self.registry = registry
        self.policy = policy
        self.config = config
        self.n_phases = n_phases
        self.switch_stall = 0.0
        self.detections: List[Dict[str, Any]] = []
        self.decisions: List[Dict[str, Any]] = []
        self.switches: List[Dict[str, Any]] = []
        #: Effective pair label per phase, grown as phases open.
        self.plan: List[str] = [config.initial]
        self._current = config.initial
        self._boundaries = [env.event() for _ in range(n_phases - 1)]
        bus.subscribe("job.map_finished", self._on_map_finished)
        if n_phases >= 3:
            bus.subscribe("shuffle.fetch", self._on_shuffle_fetch)
        self._proc = env.process(self._run())

    # -- live signal handlers -----------------------------------------------------
    def _on_map_finished(self, record: "TraceRecord") -> None:
        p = record.payload
        if p.get("total") and p.get("done", 0) >= p["total"]:
            self._boundary(0, record.time)

    def _on_shuffle_fetch(self, record: "TraceRecord") -> None:
        if record.payload.get("remaining") == 0:
            self._boundary(1, record.time)

    def _boundary(self, index: int, time: float) -> None:
        if index >= len(self._boundaries):
            return
        event = self._boundaries[index]
        if event.triggered:
            return
        self.detections.append({
            "boundary": BOUNDARY_NAMES[index],
            "phase": index + 1,
            "time": time,
        })
        self.bus.publish(time, "ctrl.phase",
                         boundary=BOUNDARY_NAMES[index], phase=index + 1)
        event.succeed(time)

    # -- state reads --------------------------------------------------------------
    def queue_depth(self) -> float:
        """Outstanding requests summed over every physical disk queue."""
        gauges = self.registry.gauges("disk.queue_depth")
        return float(sum(g.value for g in gauges.values()))

    def estimate_switch_cost(self) -> float:
        """Cost of switching *now*: control latency + queue drain.

        The drain term makes the estimate state-dependent, mirroring the
        measured Fig. 5 behaviour (switching under a deep queue stalls
        until in-flight requests complete).
        """
        return (self.cluster.config.switch_control_latency
                + self.queue_depth() * self.config.drain_cost_per_request)

    # -- the decision loop --------------------------------------------------------
    def _run(self):
        for index in range(self.n_phases - 1):
            yield self._boundaries[index]
            if self.config.dwell > 0:
                yield self.env.timeout(self.config.dwell)
            phase = index + 1
            obs = Observation(
                time=self.env.now,
                phase=phase,
                current=self._current,
                queue_depth=self.queue_depth(),
                est_cost=self.estimate_switch_cost(),
            )
            decision = self.policy.decide(obs)
            self.decisions.append({
                "phase": phase,
                "time": obs.time,
                "current": obs.current,
                "target": decision.target,
                "reason": decision.reason,
                "queue_depth": obs.queue_depth,
                "est_cost": decision.est_cost,
                "explore": decision.explore,
            })
            self.bus.publish(self.env.now, "ctrl.decision",
                             policy=self.policy.name, phase=phase,
                             target=decision.target,
                             est_cost=decision.est_cost,
                             explore=decision.explore)
            if decision.target is not None and decision.target != self._current:
                pair = SchedulerPair.parse(decision.target)
                start = self.env.now
                yield self.cluster.set_pair(pair)
                stall = self.env.now - start
                self.switch_stall += stall
                self._current = decision.target
                self.switches.append({
                    "phase": phase,
                    "pair": decision.target,
                    "time": start,
                    "stall": stall,
                })
                self.bus.publish(self.env.now, "ctrl.switch", phase=phase,
                                 pair=decision.target, stall=stall)
            self.plan.append(self._current)

    def report(self) -> Dict[str, Any]:
        """JSON-able record of this run's control activity."""
        plan = list(self.plan)
        # Boundaries that never fired (e.g. the job ended first) leave
        # the plan short; the installed pair simply carried through.
        while len(plan) < self.n_phases:
            plan.append(self._current)
        return {
            "policy": self.policy.name,
            "initial": self.config.initial,
            "plan": plan,
            "detections": list(self.detections),
            "decisions": list(self.decisions),
            "switches": list(self.switches),
            "n_switches": len(self.switches),
            "switch_stall": self.switch_stall,
        }
