"""The offline-optimal regret oracle — the controller's correctness spec.

Regret is defined against exhaustive enumeration: run every distinct
static per-phase plan (``enumerate_solutions`` over a pair set) through
the *same* ``controlled_job`` kind a policy uses, take the best
duration as the offline optimum, and charge each policy

    ``regret(policy) = duration(policy) - duration(optimum)``.

Because static plans execute as greedy-controlled runs with identical
specs, the optimum lower-bounds every policy by construction — a
policy's trajectory for plan *P* IS the static run of *P*.  That makes
the oracle a test harness, not just a metric: any policy whose regret
goes negative has broken determinism somewhere.

This module is pure bookkeeping (no simulation, no runner imports);
experiments and tests supply the durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.bruteforce import enumerate_solutions
from ..core.solution import Solution
from ..virt.pair import SchedulerPair
from .config import CtrlConfig

__all__ = [
    "OracleResult",
    "plan_labels",
    "enumerate_static_plans",
    "static_ctrl_config",
    "payload_duration",
    "build_oracle",
]


def plan_labels(solution: Solution) -> Tuple[str, ...]:
    """A solution's effective pair labels, one per phase."""
    return tuple(pair.label for pair in solution.effective())


def enumerate_static_plans(
    pairs: Sequence[SchedulerPair], n_phases: int
) -> List[Tuple[str, ...]]:
    """Every distinct effective plan over ``pairs``, as label tuples."""
    return [plan_labels(sol) for sol in enumerate_solutions(pairs, n_phases)]


def static_ctrl_config(plan: Sequence[str],
                       base: CtrlConfig = CtrlConfig()) -> CtrlConfig:
    """A greedy config that executes ``plan`` through the controller.

    Static oracle entries run as greedy-controlled jobs (initial pair =
    phase 0, plan followed verbatim, no dwell) so their specs — and
    trajectories — are identical to what the greedy policy produces for
    the same plan.
    """
    plan = tuple(plan)
    if not plan:
        raise ValueError("plan must name at least one phase")
    return base.with_(policy="greedy", initial=plan[0], phase_pairs=plan,
                      dwell=0.0)


def payload_duration(payload: Dict) -> float:
    """Job duration from a ``controlled_job``/``job`` payload."""
    phases = payload["phases"]
    return phases["end"] - phases["start"]


@dataclass(frozen=True)
class OracleResult:
    """The enumerated static landscape and its optimum."""

    #: Enumerated plans, as label tuples, in enumeration order.
    plans: Tuple[Tuple[str, ...], ...]
    #: Mean duration per plan (same order).
    durations: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.plans) != len(self.durations) or not self.plans:
            raise ValueError("plans and durations must align and be non-empty")

    @property
    def optimum_index(self) -> int:
        """Index of the best plan (first wins ties, deterministically)."""
        best = 0
        for i, duration in enumerate(self.durations):
            if duration < self.durations[best]:
                best = i
        return best

    @property
    def optimum_plan(self) -> Tuple[str, ...]:
        return self.plans[self.optimum_index]

    @property
    def optimum_duration(self) -> float:
        return self.durations[self.optimum_index]

    def regret(self, duration: float) -> float:
        """Seconds worse than the offline optimum."""
        return duration - self.optimum_duration

    def rows(self) -> List[Dict[str, object]]:
        """JSON-able table rows: plan label, duration, regret."""
        return [
            {
                "plan": "→".join(plan),
                "duration": duration,
                "regret": self.regret(duration),
            }
            for plan, duration in zip(self.plans, self.durations)
        ]


def build_oracle(
    plans: Sequence[Tuple[str, ...]], durations: Sequence[float]
) -> OracleResult:
    """Package measured static durations into an :class:`OracleResult`."""
    return OracleResult(plans=tuple(tuple(p) for p in plans),
                        durations=tuple(float(d) for d in durations))
