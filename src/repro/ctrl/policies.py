"""Controller policies behind the ``@register_policy`` registry.

A policy is the pure decision core of the online controller: given an
:class:`Observation` at a detected phase boundary it returns a
:class:`Decision` (switch to a target pair, or hold).  The controller
owns everything stateful around it — signal plumbing, dwell, the actual
switch — so policies stay unit-testable without a simulation.

Three policies ship:

* ``greedy`` — executes the offline (Algorithm 1) plan verbatim,
  cost-blind: the paper's heuristic as an online baseline;
* ``hysteresis`` — same plan, but charges the state-dependent switch
  cost (scaled by ``cost_factor``) against ``cost_budget`` and holds
  when switching is too expensive right now;
* ``bandit`` — contextual ε-greedy over tail-phase pairs, keyed by the
  workload/fault/scale features the sweep runner fans out; its learned
  state threads through :class:`~repro.ctrl.config.CtrlConfig` so runs
  stay pure functions of ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from .config import CtrlConfig

__all__ = [
    "Observation",
    "Decision",
    "ControllerPolicy",
    "GreedyPolicy",
    "HysteresisPolicy",
    "BanditPolicy",
    "POLICIES",
    "register_policy",
    "policy_names",
    "resolve_policy",
    "make_policy",
]

#: Classes collected by :func:`register_policy`, in decoration order.
#: Private: read once, below, to build the immutable ``POLICIES`` map.
_REGISTERED: List[Type["ControllerPolicy"]] = []


def register_policy(name: str):
    """Register a :class:`ControllerPolicy` subclass under ``name``.

    Registration happens at module import: the public ``POLICIES`` map
    is built exactly once, after the decorated classes below, and never
    mutated afterwards — so cache-key validation
    (:class:`~repro.ctrl.config.CtrlConfig` runs on the
    ``spec_key``/``to_spec`` path) may read it without tripping the
    CACHE001 purity lint.
    """

    def deco(cls):
        cls.name = name
        _REGISTERED.append(cls)
        return cls

    return deco


def policy_names() -> List[str]:
    """Registered policy names, sorted (for error messages and help)."""
    return sorted(POLICIES)


def resolve_policy(name: str) -> Type["ControllerPolicy"]:
    """Look up a policy class; unknown names fail with the full menu."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown controller policy {name!r}; choose from "
            f"{policy_names()}"
        ) from None


def make_policy(config: CtrlConfig, rng=None) -> "ControllerPolicy":
    """Instantiate the policy ``config`` names."""
    if config.policy is None:
        raise ValueError("config.policy is None (no controller configured)")
    return resolve_policy(config.policy)(config, rng=rng)


@dataclass(frozen=True)
class Observation:
    """What the controller knows at one detected phase boundary."""

    #: Simulated time of the decision point.
    time: float
    #: Index of the phase now starting (1 = post-map tail).
    phase: int
    #: Two-letter label of the currently installed pair.
    current: str
    #: Total outstanding requests across every physical disk queue.
    queue_depth: float
    #: Estimated cost of switching *now* (seconds): control latency
    #: plus a per-queued-request drain charge.  Unscaled — policies
    #: apply ``cost_factor`` themselves.
    est_cost: float


@dataclass(frozen=True)
class Decision:
    """A policy's verdict at one boundary."""

    #: Pair label to switch to, or ``None`` to hold.
    target: Optional[str]
    #: Human-readable rationale (stable strings; lands in payloads).
    reason: str
    #: The unscaled cost estimate the policy saw (finite; payload-safe).
    est_cost: float = 0.0
    #: True when the choice was exploratory (bandit only).
    explore: bool = False


class ControllerPolicy:
    """Base class: one decision per detected boundary, optional learning."""

    name = "?"

    def __init__(self, config: CtrlConfig, rng=None):
        self.config = config
        self.rng = rng

    def decide(self, obs: Observation) -> Decision:
        raise NotImplementedError

    def learn(self, duration: float) -> None:
        """Fold the finished job's duration into learned state (no-op
        for stateless policies)."""

    def export_state(self) -> Tuple[Tuple[str, str, int, float], ...]:
        """Learned state rows to thread into the next run's config."""
        return ()

    def _plan_target(self, obs: Observation) -> Optional[str]:
        plan = self.config.phase_pairs
        if obs.phase >= len(plan):
            return None
        target = plan[obs.phase]
        return None if target == obs.current else target


@register_policy("greedy")
class GreedyPolicy(ControllerPolicy):
    """Execute the offline plan verbatim, ignoring switch costs.

    This is the paper's Algorithm 1 pick replayed online: whatever pair
    the plan names for the phase being entered, switch to it.  Serves
    as the regret baseline every cost-aware policy must at least tie on
    the fault-free single-job case.
    """

    def decide(self, obs: Observation) -> Decision:
        target = self._plan_target(obs)
        if target is None:
            return Decision(None, "plan keeps the current pair",
                            est_cost=obs.est_cost)
        return Decision(target, "offline plan", est_cost=obs.est_cost)


@register_policy("hysteresis")
class HysteresisPolicy(ControllerPolicy):
    """Cost-aware plan follower: switch only when it is cheap enough.

    The charged cost is ``est_cost * cost_factor``; the switch happens
    iff the charge fits within ``cost_budget``.  ``cost_factor=inf``
    therefore degenerates to the static baseline — the anchor of the
    metamorphic tests — and inflating the factor can only ever *remove*
    switches.
    """

    def decide(self, obs: Observation) -> Decision:
        target = self._plan_target(obs)
        if target is None:
            return Decision(None, "plan keeps the current pair",
                            est_cost=obs.est_cost)
        charged = obs.est_cost * self.config.cost_factor
        if charged > self.config.cost_budget:
            return Decision(None, "charged switch cost exceeds budget",
                            est_cost=obs.est_cost)
        return Decision(target, "charged switch cost within budget",
                        est_cost=obs.est_cost)


@register_policy("bandit")
class BanditPolicy(ControllerPolicy):
    """Contextual ε-greedy over tail-phase pairs.

    One decision per job, at the map→tail boundary: pick an arm (a pair
    label) for the rest of the job.  The context key is rendered from
    ``config.features``; per-``(context, arm)`` pull counts and mean
    durations arrive via ``config.state`` and leave via
    :meth:`export_state`, so learning happens *between* runs and each
    run stays pure.

    With ``epsilon > 0`` (training) untried arms are pulled first, then
    ε-greedy exploration kicks in.  With ``epsilon == 0`` (evaluation)
    the policy exploits the best *sampled* mean only — since per-seed
    runs are deterministic, the evaluation regret is the minimum over
    sampled arms and can only shrink as training covers more arms.
    """

    def __init__(self, config: CtrlConfig, rng=None):
        super().__init__(config, rng=rng)
        self.context = config.context
        self._values: Dict[Tuple[str, str], Tuple[int, float]] = {
            (ctx, arm): (count, mean)
            for ctx, arm, count, mean in config.state
        }
        #: Arm chosen this run (set by the first tail-boundary decide).
        self.chosen: Optional[str] = None

    def decide(self, obs: Observation) -> Decision:
        if obs.phase != 1 or self.chosen is not None:
            return Decision(None, "bandit acts at the map boundary only",
                            est_cost=obs.est_cost)
        arms = self.config.arms
        tried = [a for a in arms if (self.context, a) in self._values]
        untried = [a for a in arms if (self.context, a) not in self._values]
        explore = False
        if self.config.epsilon > 0 and self.rng is not None \
                and float(self.rng.random()) < self.config.epsilon:
            arm = arms[int(self.rng.integers(len(arms)))]
            explore = True
            reason = "epsilon exploration"
        elif self.config.epsilon > 0 and untried:
            arm = untried[0]
            explore = True
            reason = "first pull of an untried arm"
        elif tried:
            arm = min(tried,
                      key=lambda a: self._values[(self.context, a)][1])
            reason = "exploit lowest sampled mean duration"
        else:
            arm = arms[0]
            reason = "no samples for this context; default arm"
        self.chosen = arm
        if arm == obs.current:
            return Decision(None, reason + " (already installed)",
                            est_cost=obs.est_cost, explore=explore)
        return Decision(arm, reason, est_cost=obs.est_cost, explore=explore)

    def learn(self, duration: float) -> None:
        if self.chosen is None:
            return
        key = (self.context, self.chosen)
        count, mean = self._values.get(key, (0, 0.0))
        count += 1
        mean += (duration - mean) / count
        self._values[key] = (count, mean)

    def export_state(self) -> Tuple[Tuple[str, str, int, float], ...]:
        return tuple(sorted(
            (ctx, arm, count, mean)
            for (ctx, arm), (count, mean) in self._values.items()
        ))


#: Registry: policy name -> policy class.  Built once from the
#: decorated classes above; immutable after module load.
POLICIES: Dict[str, Type[ControllerPolicy]] = {
    cls.name: cls for cls in _REGISTERED
}
