"""Controller configuration: pure data, safe inside cache keys.

:class:`CtrlConfig` is the frozen description of one online-control
setup — which policy runs, what plan it targets, how switch costs are
charged, and the bandit's learned state.  Every field is a primitive or
a tuple of primitives so :func:`repro.runner.spec.canonical` hashes it
without surprises, and equal configs share sweep cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..virt.pair import SchedulerPair

__all__ = ["CtrlConfig", "DEFAULT_ARMS"]

#: Candidate tail pairs the bandit chooses between, by two-letter label.
#: ``ad`` is the paper's shuffle/reduce pick; the rest span the
#: anticipatory/CFQ/deadline corners Algorithm 1 searches over.
DEFAULT_ARMS: Tuple[str, ...] = ("ad", "cc", "dd", "ac")


def _check_label(label: str, source: str) -> str:
    """Validate a two-letter pair label and return its canonical form."""
    try:
        return SchedulerPair.parse(label).label
    except (ValueError, KeyError) as exc:
        raise ValueError(f"{source}: {exc}") from None


@dataclass(frozen=True)
class CtrlConfig:
    """One online-control setup (policy + knobs + learned state).

    ``policy=None`` means *no controller*: the run executes the static
    ``initial`` pair end to end, giving the bit-exact baseline the
    metamorphic tests compare against.
    """

    #: Registered policy name (greedy/hysteresis/bandit) or ``None``.
    policy: Optional[str] = None
    #: Pair installed at job start, as a two-letter label.
    initial: str = "cc"
    #: Target pair label per phase (index 0 = the map phase).  Greedy
    #: and hysteresis follow this plan; the bandit ignores it.
    phase_pairs: Tuple[str, ...] = ()
    #: Seconds to keep observing after a detected boundary before
    #: deciding (hysteresis dwell; 0 = decide at the boundary).
    dwell: float = 0.0
    #: Multiplier on the estimated switch cost before it is compared to
    #: ``cost_budget``.  ``float("inf")`` forbids switching outright.
    cost_factor: float = 1.0
    #: Maximum charged switch cost (seconds) hysteresis will accept.
    cost_budget: float = 5.0
    #: Estimated drain cost per queued request (seconds) — the
    #: state-dependent part of the switch-cost model (paper Fig. 5:
    #: switching under a deep queue stalls longer).
    drain_cost_per_request: float = 0.004
    #: Bandit exploration rate in [0, 1]; 0 = pure exploitation.
    epsilon: float = 0.1
    #: Bandit arms: candidate tail-phase pair labels.
    arms: Tuple[str, ...] = DEFAULT_ARMS
    #: Context features as sorted ``(key, value)`` pairs — the
    #: workload/fault/scale coordinates the sweep runner fans out.
    features: Tuple[Tuple[str, str], ...] = ()
    #: Learned bandit state threaded between runs: rows of
    #: ``(context, arm, pull_count, mean_duration)``.
    state: Tuple[Tuple[str, str, int, float], ...] = ()
    #: Background co-tenant sequential-write volume (bytes; 0 = none) —
    #: the multi-job interference condition of fig-ctrl.
    interference_bytes: int = 0

    def __post_init__(self) -> None:
        if self.policy is not None:
            # Imported here: policies.py imports this module for types.
            from .policies import resolve_policy

            resolve_policy(self.policy)
        object.__setattr__(self, "initial",
                           _check_label(self.initial, "initial"))
        object.__setattr__(self, "phase_pairs", tuple(
            _check_label(p, "phase_pairs") for p in self.phase_pairs))
        object.__setattr__(self, "arms", tuple(
            _check_label(a, "arms") for a in self.arms))
        if self.dwell < 0:
            raise ValueError(f"dwell must be >= 0, got {self.dwell}")
        if self.cost_factor < 0:
            raise ValueError(
                f"cost_factor must be >= 0, got {self.cost_factor}")
        if self.cost_budget < 0:
            raise ValueError(
                f"cost_budget must be >= 0, got {self.cost_budget}")
        if not 0 <= self.epsilon <= 1:
            raise ValueError(
                f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.interference_bytes < 0:
            raise ValueError("interference_bytes must be >= 0")
        object.__setattr__(self, "features",
                           tuple(sorted(tuple(map(str, kv))
                                        for kv in self.features)))
        object.__setattr__(self, "state", tuple(
            (str(ctx), str(arm), int(count), float(mean))
            for ctx, arm, count, mean in self.state))

    def with_(self, **changes) -> "CtrlConfig":
        return replace(self, **changes)

    @property
    def context(self) -> str:
        """The bandit context key rendered from ``features``."""
        if not self.features:
            return "default"
        return "|".join(f"{k}={v}" for k, v in self.features)
