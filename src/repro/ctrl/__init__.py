"""Online adaptive I/O control (DESIGN.md "Online adaptive control").

The offline pipeline (Algorithm 1) picks a per-phase scheduler plan
from pre-measured tables; this package closes the loop online: a
controller subscribes to live trace topics, detects phase boundaries
itself, and issues switches through the same per-VM/elevator machinery,
charging the measured state-dependent switch cost.  Policies live
behind a ``@register_policy`` registry; the regret oracle defines what
"good" means and doubles as the test harness in ``tests/ctrl``.
"""

from .config import DEFAULT_ARMS, CtrlConfig
from .controller import BOUNDARY_NAMES, SIGNAL_TOPICS, OnlineAdaptiveController
from .oracle import (
    OracleResult,
    build_oracle,
    enumerate_static_plans,
    payload_duration,
    plan_labels,
    static_ctrl_config,
)
from .policies import (
    POLICIES,
    BanditPolicy,
    ControllerPolicy,
    Decision,
    GreedyPolicy,
    HysteresisPolicy,
    Observation,
    make_policy,
    policy_names,
    register_policy,
    resolve_policy,
)

__all__ = [
    "BOUNDARY_NAMES",
    "BanditPolicy",
    "ControllerPolicy",
    "CtrlConfig",
    "DEFAULT_ARMS",
    "Decision",
    "GreedyPolicy",
    "HysteresisPolicy",
    "Observation",
    "OnlineAdaptiveController",
    "OracleResult",
    "POLICIES",
    "SIGNAL_TOPICS",
    "build_oracle",
    "enumerate_static_plans",
    "make_policy",
    "payload_duration",
    "plan_labels",
    "policy_names",
    "register_policy",
    "resolve_policy",
    "static_ctrl_config",
]
