"""Fig. 2 — Hadoop execution time per scheduler pair, three benchmarks.

Paper claims: (CFQ, CFQ) is optimal for none of the benchmarks; the
variation across pairs is ~1.5% for wordcount, 29% for wordcount w/o
combiner (4.5% excluding Noop-in-VMM), 45% for sort (10% excluding
Noop); the best pair differs per application ((AS, CFQ)-ish for
wordcount, (AS/DL, NP) for wordcount w/o combiner, (AS, DL) for sort).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.experiment import JobRunner
from ..mapreduce.job import JobSpec
from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import DEFAULT_PAIR, SchedulerPair, all_pairs
from ..workloads.profiles import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run", "run_one_benchmark", "DEFAULT_BENCHMARKS"]

DEFAULT_BENCHMARKS = (WORDCOUNT, WORDCOUNT_NO_COMBINER, SORT)


def run_one_benchmark(
    spec: JobSpec,
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    runner: Optional[JobRunner] = None,
    sweep: Optional[SweepRunner] = None,
) -> Dict[SchedulerPair, float]:
    """Mean duration per pair for one benchmark."""
    pairs = list(pairs) if pairs is not None else all_pairs()
    if runner is None:
        runner = SweepJobRunner(
            scaled_testbed(spec, scale=scale, seeds=seeds),
            sweep if sweep is not None else default_runner(),
            label=spec.name,
        )
        runner.prefetch_uniform(pairs)
    return {pair: runner.run_uniform(pair).mean_duration for pair in pairs}


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    benchmarks: Sequence[JobSpec] = DEFAULT_BENCHMARKS,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    pairs = list(pairs) if pairs is not None else all_pairs()
    # One parallel wave over the full (benchmark × pair × seed) matrix.
    runners = {
        spec.name: SweepJobRunner(
            scaled_testbed(spec, scale=scale, seeds=seeds), sweep,
            label=spec.name,
        )
        for spec in benchmarks
    }
    sweep.run_specs(
        [s for r in runners.values() for s in r.uniform_specs(pairs)]
    )
    durations = {
        name: {
            pair: runner.run_uniform(pair).mean_duration for pair in pairs
        }
        for name, runner in runners.items()
    }
    return ExperimentResult(
        experiment_id="fig2",
        title="MapReduce execution time per disk pair scheduler",
        data={
            "durations": durations,
            "pairs": pairs,
            "scale": scale,
            "benchmarks": [s.name for s in benchmarks],
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    durations = result.data["durations"]
    pairs = result.data["pairs"]
    names = result.data["benchmarks"]
    rows = [
        [str(pair)] + [durations[name][pair] for name in names]
        for pair in pairs
    ]
    return format_table(
        ["pair"] + list(names),
        rows,
        title=f"execution seconds (scale={result.data['scale']})",
    )


def variation(durations: Dict[SchedulerPair, float],
              exclude_noop_vmm: bool = False) -> float:
    values = [
        d
        for p, d in durations.items()
        if not (exclude_noop_vmm and p.vmm == "noop")
    ]
    return (max(values) - min(values)) / min(values)


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    durations = result.data["durations"]
    names = result.data["benchmarks"]
    checks = []

    for name in names:
        d = durations[name]
        if DEFAULT_PAIR in d:
            best = min(d.values())
            runner_up = min(v for p, v in d.items() if p != DEFAULT_PAIR)
            # Q1: the default must not be the *clear* optimum.  On a
            # CPU-bound benchmark every pair lands within the noise
            # floor, so "clearly optimal" means beating the best
            # non-default pair by more than 1%.
            clearly_optimal = d[DEFAULT_PAIR] < runner_up * 0.99
            checks.append(
                ShapeCheck(
                    f"{name}: default (CFQ, CFQ) is not clearly optimal",
                    not clearly_optimal,
                    f"default {d[DEFAULT_PAIR]:.1f}s vs best {best:.1f}s",
                )
            )

    # Variation ordering: wordcount << wordcount-nocombiner <= sort.
    if set(names) >= {"wordcount", "wordcount-nocombiner", "sort"}:
        v = {name: variation(durations[name]) for name in names}
        checks.append(
            ShapeCheck(
                "variation grows with disk weight (wc < wc-nc <= sort)",
                v["wordcount"] < v["wordcount-nocombiner"]
                and v["wordcount"] < v["sort"],
                ", ".join(f"{n}={100 * x:.0f}%" for n, x in v.items())
                + " (paper: 1.5/29/45%)",
            )
        )
        # Sort: the Anticipatory column should win.
        sort_d = durations["sort"]
        best_pair = min(sort_d, key=sort_d.get)
        checks.append(
            ShapeCheck(
                "sort: best pair has Anticipatory in the VMM",
                best_pair.vmm == "anticipatory",
                f"best={best_pair}",
            )
        )
        # Noop in the VMM is catastrophic for the disk-heavy benchmarks.
        for name in ("wordcount-nocombiner", "sort"):
            d = durations[name]
            noop_worst = min(x for p, x in d.items() if p.vmm == "noop")
            others_best = min(x for p, x in d.items() if p.vmm != "noop")
            checks.append(
                ShapeCheck(
                    f"{name}: Noop-in-VMM clearly penalised",
                    noop_worst > others_best * 1.1,
                    f"best-noop {noop_worst:.1f}s vs best-other {others_best:.1f}s",
                )
            )
    return checks
