"""Common shape for experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult`` where
the result carries the raw rows, a ``render()`` producing the ASCII
table/series matching the paper artifact, and a ``checks()`` mapping of
named shape assertions (used by the benchmark harness to verify the
reproduction qualitatively, never against absolute seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ExperimentResult", "ShapeCheck"]


@dataclass
class ShapeCheck:
    """One qualitative assertion about an experiment's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Raw data plus rendering and shape checks for one experiment."""

    experiment_id: str
    title: str
    data: Dict[str, Any] = field(default_factory=dict)
    renderer: Callable[["ExperimentResult"], str] = None  # type: ignore[assignment]
    checker: Callable[["ExperimentResult"], List[ShapeCheck]] = None  # type: ignore[assignment]
    _checks: Optional[List[ShapeCheck]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def render(self) -> str:
        header = f"### {self.experiment_id}: {self.title}"
        body = self.renderer(self) if self.renderer else ""
        check_lines = "\n".join(str(c) for c in self.checks())
        return "\n".join(part for part in (header, body, check_lines) if part)

    def checks(self) -> List[ShapeCheck]:
        # Checkers can be expensive (they walk the result data), and both
        # render() and all_checks_pass need them — compute once.
        if self._checks is None:
            self._checks = self.checker(self) if self.checker else []
        return self._checks

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks())
