"""Common shape for experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult`` where
the result carries the raw rows, a ``render()`` producing the ASCII
table/series matching the paper artifact, and a ``checks()`` mapping of
named shape assertions (used by the benchmark harness to verify the
reproduction qualitatively, never against absolute seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ExperimentResult", "ShapeCheck", "render_obs_blame"]


@dataclass
class ShapeCheck:
    """One qualitative assertion about an experiment's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Raw data plus rendering and shape checks for one experiment."""

    experiment_id: str
    title: str
    data: Dict[str, Any] = field(default_factory=dict)
    renderer: Callable[["ExperimentResult"], str] = None  # type: ignore[assignment]
    checker: Callable[["ExperimentResult"], List[ShapeCheck]] = None  # type: ignore[assignment]
    _checks: Optional[List[ShapeCheck]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def render(self) -> str:
        header = f"### {self.experiment_id}: {self.title}"
        body = self.renderer(self) if self.renderer else ""
        check_lines = "\n".join(str(c) for c in self.checks())
        return "\n".join(part for part in (header, body, check_lines) if part)

    def checks(self) -> List[ShapeCheck]:
        # Checkers can be expensive (they walk the result data), and both
        # render() and all_checks_pass need them — compute once.
        if self._checks is None:
            self._checks = self.checker(self) if self.checker else []
        return self._checks

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks())


def render_obs_blame(result: ExperimentResult) -> str:
    """Critical-path blame tables for a traced run, or ``""``.

    ``repro <experiment> --trace-out DIR`` folds per-trace-file
    :func:`repro.obs.spans.blame_summary` documents into
    ``result.data["obs"]["critical_path"]``; renderers append this
    section so headline numbers (regret, SLO misses) come with an
    explanation of *where* the critical path spent its time.  Untraced
    runs carry no ``obs`` key and render unchanged.
    """
    obs = result.data.get("obs") or {}
    blame = obs.get("critical_path") or {}
    if not blame:
        return ""
    # Imported lazily: experiments must stay loadable without pulling
    # the observability stack in at module-import time.
    from ..metrics.summary import format_table
    from ..obs.spans import blame_rows

    parts = []
    for name in sorted(blame):
        summary = blame[name]
        parts.append(format_table(
            ["phase", "dur s", "task", "fault", "switch", "idle",
             "io wait", "service"],
            blame_rows(summary),
            title=f"critical-path blame: {name}",
            floatfmt=".3f",
        ))
        owners = ", ".join(
            f"{o['owner']} ({o['seconds']:.3f}s)"
            for o in summary.get("top_owners", [])
        )
        if owners:
            parts.append(f"top owners: {owners}")
    return "\n\n".join(parts)
