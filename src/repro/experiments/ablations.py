"""Ablations of the design choices DESIGN.md calls out, plus the
future-work extensions measured against the paper's baselines.

* ``run_mechanisms`` — turn individual mechanisms off and measure sort:
  anticipation window (AS with a zero window degenerates towards
  deadline), ring depth (ring=1 blinds the Dom0 elevator).
* ``run_online`` — the reactive controller (no profiling runs) vs the
  default pair and the offline adaptive plan.
* ``run_chain`` — a two-pass sort chain (each pass consumes the
  previous pass's full-size output, like a Pig pipeline): the ``P × S``
  heuristic against the ``S^P`` brute-force space it avoids enumerating.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..core.chains import ChainConfig
from ..core.heuristic import HeuristicSearch, profile_single_pairs
from ..core.metasched import AdaptiveMetaScheduler
from ..metrics.summary import format_table
from ..runner import (
    RunSpec,
    SweepChainRunner,
    SweepJobRunner,
    SweepRunner,
    default_runner,
)
from ..virt.pair import DEFAULT_PAIR, SchedulerPair, all_pairs
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_cluster, scaled_job, scaled_testbed

__all__ = ["run_mechanisms", "run_online", "run_chain", "run_phase_count"]


def run_mechanisms(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Mechanism knockouts on sort."""
    sweep = sweep if sweep is not None else default_runner()
    as_pair = SchedulerPair("anticipatory", "cfq")
    job_config = scaled_job(SORT, scale)

    # (row label, Dom0 ring depth, zero-anticipation knockout)
    variants = (
        ("AS/CFQ, full anticipation", 32, False),
        ("AS/CFQ, anticipation window ~0", 32, True),
        ("AS/CFQ, ring depth 4", 4, False),
        ("AS/CFQ, ring depth 1", 1, False),
    )
    payloads = sweep.run_specs(
        [
            RunSpec(
                kind="sort_custom",
                seed=seed,
                config=(
                    scaled_cluster(scale).with_(
                        initial_pair=as_pair, ring_slots=ring
                    ),
                    job_config,
                    zero_antic,
                ),
                label=f"{name} seed={seed}",
            )
            for name, ring, zero_antic in variants
            for seed in seeds
        ]
    )
    it = iter(payloads)
    measured = {
        name: mean(next(it)["duration"] for _ in seeds)
        for name, _, _ in variants
    }
    rows: Dict[str, float] = {}
    rows["AS/CFQ, full anticipation"] = measured["AS/CFQ, full anticipation"]
    rows["AS/CFQ, anticipation window ~0"] = measured[
        "AS/CFQ, anticipation window ~0"
    ]
    rows["AS/CFQ, ring depth 32"] = rows["AS/CFQ, full anticipation"]
    rows["AS/CFQ, ring depth 4"] = measured["AS/CFQ, ring depth 4"]
    rows["AS/CFQ, ring depth 1"] = measured["AS/CFQ, ring depth 1"]
    return ExperimentResult(
        experiment_id="ablation-mechanisms",
        title="Mechanism knockouts (sort)",
        data={"rows": rows, "scale": scale},
        renderer=lambda r: format_table(
            ["configuration", "sort seconds"],
            [[k, v] for k, v in r.data["rows"].items()],
            title=f"scale={r.data['scale']}",
        ),
        checker=_check_mechanisms,
    )


def _check_mechanisms(result: ExperimentResult) -> List[ShapeCheck]:
    rows = result.data["rows"]
    return [
        ShapeCheck(
            "anticipation carries real value",
            rows["AS/CFQ, anticipation window ~0"]
            > rows["AS/CFQ, full anticipation"] * 1.01,
            f"{rows['AS/CFQ, anticipation window ~0']:.1f}s without vs "
            f"{rows['AS/CFQ, full anticipation']:.1f}s with",
        ),
        ShapeCheck(
            "starving the ring hurts (elevator loses lookahead)",
            rows["AS/CFQ, ring depth 1"] > rows["AS/CFQ, ring depth 32"] * 1.01,
            f"{rows['AS/CFQ, ring depth 1']:.1f}s at ring=1 vs "
            f"{rows['AS/CFQ, ring depth 32']:.1f}s at ring=32",
        ),
    ]


def run_online(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Reactive controller vs default and offline adaptive (sort)."""
    sweep = sweep if sweep is not None else default_runner()
    job_config = scaled_job(SORT, scale)
    online_cluster = scaled_cluster(scale).with_(initial_pair=DEFAULT_PAIR)
    online_specs = [
        RunSpec(
            kind="online_sort",
            seed=seed,
            config=(online_cluster, job_config),
            label=f"online sort seed={seed}",
        )
        for seed in seeds
    ]

    config = scaled_testbed(SORT, scale=scale, seeds=tuple(seeds))
    runner = SweepJobRunner(config, sweep, label="ablation-online")
    # One wave covers the reactive runs and the profiling matrix; the
    # meta-scheduler's sequential search then reads profiles from the
    # memo and only its own heuristic evaluations still simulate.
    payloads = sweep.run_specs(
        online_specs + runner.uniform_specs(all_pairs())
    )
    online_time = mean(
        p["duration"] for p in payloads[: len(online_specs)]
    )
    report = AdaptiveMetaScheduler(config, runner=runner).report()

    rows = {
        f"default {DEFAULT_PAIR} (no tuning)": report.default_time,
        "online reactive controller (no profiling)": online_time,
        f"offline adaptive [{report.adaptive_solution}]": report.adaptive_time,
    }
    return ExperimentResult(
        experiment_id="ablation-online",
        title="Online reactive switching vs offline adaptive (sort)",
        data={"rows": rows, "scale": scale},
        renderer=lambda r: format_table(
            ["method", "sort seconds"],
            [[k, v] for k, v in r.data["rows"].items()],
            title=f"scale={r.data['scale']}",
        ),
        checker=_check_online,
    )


def _check_online(result: ExperimentResult) -> List[ShapeCheck]:
    rows = result.data["rows"]
    values = list(rows.values())
    default, online, offline = values[0], values[1], values[2]
    return [
        ShapeCheck(
            "online controller never meaningfully loses to the default",
            online <= default * 1.015,
            f"{online:.1f}s vs {default:.1f}s (a profiling-free "
            "prototype: it must not hurt; gains need the pair spreads "
            "that grow with scale)",
        ),
        ShapeCheck(
            "offline adaptive remains the reference",
            offline <= online * 1.05,
            f"{offline:.1f}s vs {online:.1f}s online",
        ),
    ]


def run_chain(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Heuristic on a two-pass sort chain (4 phases)."""
    if pairs is None:
        pairs = [
            SchedulerPair.parse(s) for s in ("cc", "ac", "ad", "dd", "dc", "nc")
        ]
    config = ChainConfig(
        cluster=scaled_cluster(scale),
        jobs=(
            scaled_job(SORT, scale),
            scaled_job(SORT, scale),
        ),
        seeds=tuple(seeds),
    )
    runner = SweepChainRunner(
        config,
        sweep if sweep is not None else default_runner(),
        label="ablation-chain",
    )
    scores = profile_single_pairs(runner, pairs)
    search = HeuristicSearch(runner, scores, pairs).search()
    best_pair, best_single = scores.best_single()
    default = scores.totals.get(DEFAULT_PAIR, max(scores.totals.values()))
    space = len(pairs) ** config.n_phases
    data = {
        "default": default,
        "best_single": best_single,
        "best_pair": best_pair,
        "heuristic": search.score,
        "solution": search.solution,
        "evaluations": search.evaluations + len(pairs),
        "space": space,
        "scale": scale,
        "n_phases": config.n_phases,
    }
    return ExperimentResult(
        experiment_id="ablation-chain",
        title="Heuristic on a two-pass sort chain (P=4 phases)",
        data=data,
        renderer=_render_chain,
        checker=_check_chain,
    )


def _render_chain(result: ExperimentResult) -> str:
    d = result.data
    rows = [
        ["default (CFQ, CFQ)", d["default"]],
        [f"best single {d['best_pair']}", d["best_single"]],
        [f"heuristic [{d['solution']}]", d["heuristic"]],
    ]
    table = format_table(
        ["plan", "chain seconds"], rows, title=f"scale={d['scale']}"
    )
    return table + (
        f"\nsearch space S^P = {d['space']} plans; heuristic used "
        f"{d['evaluations']} job executions"
    )


def _check_chain(result: ExperimentResult) -> List[ShapeCheck]:
    d = result.data
    return [
        ShapeCheck(
            "heuristic stays within the P x S budget",
            d["evaluations"] <= d["n_phases"] * 6 + 6,
            f"{d['evaluations']} evaluations vs {d['space']}-plan space",
        ),
        ShapeCheck(
            "heuristic chain plan at least matches the best single pair",
            d["heuristic"] <= d["best_single"] * 1.03,
            f"{d['heuristic']:.1f}s vs {d['best_single']:.1f}s",
        ),
    ]


def run_phase_count(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """P=2 vs P=3 phase plans at a one-wave configuration.

    The paper folds Ph2 into Ph3 at its 4-wave operating point because
    the non-concurrent shuffle is short there (Table II); at one wave
    Ph2 is long and a third switching point has something to work with.
    """
    if pairs is None:
        pairs = [
            SchedulerPair.parse(s) for s in ("cc", "ac", "ad", "dd", "dc", "cd")
        ]
    # One wave: 2 blocks per VM at 2 map slots.
    base = scaled_testbed(SORT, scale=scale, seeds=tuple(seeds))
    one_wave_job = base.job.with_(
        block_size=base.job.bytes_per_vm // 2,
        bytes_per_vm=(base.job.bytes_per_vm // 2) * 2,
    )
    results = {}
    evals = {}
    for n_phases in (2, 3):
        config = base.with_(job=one_wave_job, n_phases=n_phases)
        runner = SweepJobRunner(
            config,
            sweep if sweep is not None else default_runner(),
            label=f"ablation-phases P={n_phases}",
        )
        scores = profile_single_pairs(runner, pairs)
        search = HeuristicSearch(runner, scores, pairs).search()
        results[f"P={n_phases} heuristic plan"] = search.score
        evals[n_phases] = search.evaluations + len(pairs)
        if n_phases == 2:
            best_pair, best_single = scores.best_single()
            results[f"best single {best_pair}"] = best_single
            default = scores.totals.get(DEFAULT_PAIR)
            if default is not None:
                results[f"default {DEFAULT_PAIR}"] = default
    return ExperimentResult(
        experiment_id="ablation-phases",
        title="Two vs three switching phases (sort, one map wave)",
        data={"rows": results, "evals": evals, "scale": scale},
        renderer=lambda r: format_table(
            ["plan", "sort seconds"],
            [[k, v] for k, v in r.data["rows"].items()],
            title=(
                f"scale={r.data['scale']}; evaluations: "
                f"P=2 {r.data['evals'][2]}, P=3 {r.data['evals'][3]}"
            ),
        ),
        checker=_check_phase_count,
    )


def _check_phase_count(result: ExperimentResult) -> List[ShapeCheck]:
    rows = result.data["rows"]
    p2 = rows["P=2 heuristic plan"]
    p3 = rows["P=3 heuristic plan"]
    best_single = min(v for k, v in rows.items() if k.startswith("best single"))
    return [
        ShapeCheck(
            "extra granularity does not hurt (P=3 within noise of P=2)",
            p3 <= p2 * 1.05,
            f"P=3 {p3:.1f}s vs P=2 {p2:.1f}s",
        ),
        ShapeCheck(
            "both plan sizes beat the untuned default",
            max(p2, p3)
            < rows.get(f"default {DEFAULT_PAIR}", float("inf")),
            f"default {rows.get(f'default {DEFAULT_PAIR}', float('nan')):.1f}s, "
            f"best single {best_single:.1f}s (the greedy does not "
            "guarantee optimality — paper §IV-C)",
        ),
    ]
