"""Fig. 9 — scheduler plans under injected faults (extension).

The paper evaluates the adaptive plan on a healthy cluster.  This
extension asks how its advantage holds up when the virtualized testbed
misbehaves: per-host disk slow-downs, Xen-style VM pauses, TaskTracker
crashes, and task-attempt failures, with the JobTracker recovering via
bounded retries and speculative execution (see :mod:`repro.faults`).

Expected shape: fault injection degrades every plan (heavier plans
degrade more), the fault-free column shows zero recovery activity, and
the faulted columns show real retries/speculative attempts while every
job still completes with its full map count.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence, Union

from ..core.solution import Solution
from ..faults import PRESETS
from ..metrics.summary import format_table
from ..runner import RunSpec, SweepRunner, default_runner
from ..runner.kinds import decode_job_result
from ..virt.pair import DEFAULT_PAIR, SchedulerPair
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run", "SOLUTIONS", "DEFAULT_PRESETS"]

#: The contenders: the Hadoop default, the paper's best static pair for
#: sort, and the adaptive 2-phase plan (map phase under (AS, DL), the
#: shuffle/reduce tail under the default).
SOLUTIONS = {
    "default (cfq, cfq)": Solution.uniform(DEFAULT_PAIR, 2),
    "static (as, dl)": Solution.uniform(
        SchedulerPair("anticipatory", "deadline"), 2
    ),
    "adaptive plan": Solution(
        (SchedulerPair("anticipatory", "deadline"), SchedulerPair("cfq", "cfq"))
    ),
}

DEFAULT_PRESETS = ("none", "light", "heavy")

#: Counters surfaced in the rendered summary.
_ACTIVITY_KEYS = ("map_retries", "reduce_retries", "map_speculative",
                  "vm_pauses", "vm_crashes", "disk_slow_episodes")


def _normalise_presets(faults) -> List[str]:
    if faults is None:
        names = list(DEFAULT_PRESETS)
    elif isinstance(faults, str):
        names = ["none", faults] if faults != "none" else ["none"]
    else:
        names = list(faults)
    for name in names:
        if name not in PRESETS:
            raise ValueError(
                f"unknown fault preset {name!r}; choose from "
                f"{sorted(PRESETS)}"
            )
    return names


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
    faults: Union[None, str, Sequence[str]] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    presets = _normalise_presets(faults)
    testbed = scaled_testbed(SORT, scale=scale, seeds=tuple(seeds))

    specs = [
        RunSpec(
            kind="faulty_job",
            seed=seed,
            config=(testbed.with_(seeds=(seed,)), solution, PRESETS[preset]),
            label=f"fig9 {label} faults={preset} seed={seed}",
        )
        for preset in presets
        for label, solution in SOLUTIONS.items()
        for seed in seeds
    ]
    payloads = sweep.run_specs(specs)

    durations: Dict[str, Dict[str, float]] = {}
    n_maps: Dict[str, Dict[str, List[int]]] = {}
    activity: Dict[str, Dict[str, int]] = {}
    i = 0
    for preset in presets:
        activity.setdefault(preset, {key: 0 for key in _ACTIVITY_KEYS})
        for label in SOLUTIONS:
            results = []
            for _ in seeds:
                result, _stall = decode_job_result(payloads[i])
                results.append(result)
                i += 1
            durations.setdefault(label, {})[preset] = mean(
                r.duration for r in results
            )
            n_maps.setdefault(label, {})[preset] = [r.n_maps for r in results]
            for r in results:
                for key in _ACTIVITY_KEYS:
                    activity[preset][key] += r.fault_stats.get(key, 0)

    return ExperimentResult(
        experiment_id="fig9-faults",
        title="Scheduler plans under injected faults (extension)",
        data={
            "durations": durations,
            "activity": activity,
            "n_maps": n_maps,
            "presets": presets,
            "scale": scale,
            "seeds": list(seeds),
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    durations = result.data["durations"]
    activity = result.data["activity"]
    presets = result.data["presets"]
    rows = [
        [label] + [durations[label][preset] for preset in presets]
        for label in durations
    ]
    table = format_table(
        ["plan"] + list(presets),
        rows,
        title=f"execution seconds under fault presets "
        f"(scale={result.data['scale']})",
    )
    lines = [table, "", "recovery activity (all plans, all seeds):"]
    for preset in presets:
        acts = activity[preset]
        described = ", ".join(
            f"{key}={acts[key]}" for key in _ACTIVITY_KEYS if acts[key]
        )
        lines.append(f"  {preset:<6} {described or 'clean run'}")
    return "\n".join(lines)


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    durations = result.data["durations"]
    activity = result.data["activity"]
    n_maps = result.data["n_maps"]
    presets = result.data["presets"]
    checks = []

    if "none" in presets:
        clean = activity["none"]
        checks.append(
            ShapeCheck(
                "fault-free preset shows zero recovery activity",
                all(v == 0 for v in clean.values()),
                ", ".join(f"{k}={v}" for k, v in clean.items() if v)
                or "clean",
            )
        )
        for preset in presets:
            if preset == "none":
                continue
            degraded = all(
                durations[label][preset] > durations[label]["none"]
                for label in durations
            )
            checks.append(
                ShapeCheck(
                    f"{preset} faults slow every plan down",
                    degraded,
                    ", ".join(
                        f"{label}: {durations[label]['none']:.1f}s -> "
                        f"{durations[label][preset]:.1f}s"
                        for label in durations
                    ),
                )
            )

    for preset in presets:
        if preset == "none":
            continue
        acts = activity[preset]
        checks.append(
            ShapeCheck(
                f"{preset}: recovery machinery exercised (retries observed)",
                acts["map_retries"] + acts["reduce_retries"] > 0,
                f"map_retries={acts['map_retries']}, "
                f"reduce_retries={acts['reduce_retries']}",
            )
        )

    # Every run, however faulty, finished with its full complement of
    # maps — retries and speculation never lose or duplicate a task.
    counts = {
        c for by_preset in n_maps.values() for runs in by_preset.values()
        for c in runs
    }
    checks.append(
        ShapeCheck(
            "every run completes the same full map count",
            len(counts) == 1,
            f"n_maps seen: {sorted(counts)}",
        )
    )
    return checks
