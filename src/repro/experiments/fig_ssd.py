"""fig-ssd — the pair study re-run on flash: SSD and hybrid clusters.

The paper's testbed is four SATA spindles, and its central claim —
that the right (VMM, VM) elevator pair depends on the phase's I/O
shape — is a claim about *seek-dominated* devices.  This figure
re-runs the 16-pair sort study on the FTL-based SSD backend (and on a
``hybrid`` cluster, spindles and flash interleaved per host) to show
what survives the move to flash: pair spread collapses when seek and
rotation vanish, while the write-amplification column reports what the
FTL itself cost.  The adaptive two-phase plan (AD then CC, the paper's
sort pick) rides along as the final row of each table.

MapReduce sort is append-heavy — every spill and shuffle output lands
in a fresh extent and the device never sees a TRIM — so greedy GC has
nothing worth collecting and write amplification sits at 1.0.  That is
the physically honest answer for this workload, not a bug; the GC path
is exercised by overwrite-heavy unit tests instead
(``tests/disk/test_ssd.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.solution import Solution
from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import SchedulerPair, all_pairs
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run", "DEFAULT_BACKENDS", "HOSTS", "VMS_PER_HOST"]

#: Backends the figure compares (``--storage`` restricts to one).
DEFAULT_BACKENDS = ("ssd", "hybrid")

#: A small cluster keeps the 2 × 16-pair × seeds matrix tractable at
#: the default scale while still exercising cross-host striping.
HOSTS = 2
VMS_PER_HOST = 2

#: The paper's sort plan, re-evaluated on flash as the adaptive row.
ADAPTIVE_PLAN = ("ad", "cc")


def _ssd_write_amps(outcome) -> List[float]:
    """Every per-device write-amp sample across the outcome's runs."""
    samples: List[float] = []
    for result in outcome.results:
        for stats in result.storage.values():
            if stats.get("kind") == "ssd":
                samples.append(float(stats["write_amp"]))
    return samples


def _ssd_device_count(outcome) -> int:
    """Distinct SSD devices reporting stats across the outcome's runs."""
    devices: Dict[str, None] = {}
    for result in outcome.results:
        for name, stats in result.storage.items():
            if stats.get("kind") == "ssd":
                devices[name] = None
    return len(devices)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    storage: Optional[str] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    pairs = list(pairs) if pairs is not None else all_pairs()
    backends = (storage,) if storage is not None else DEFAULT_BACKENDS
    adaptive = Solution.of([SchedulerPair.parse(lbl) for lbl in ADAPTIVE_PLAN])

    runners = {
        backend: SweepJobRunner(
            scaled_testbed(SORT, scale=scale, hosts=HOSTS,
                           vms_per_host=VMS_PER_HOST, seeds=seeds,
                           storage=backend),
            sweep,
            label=f"fig-ssd {backend}",
        )
        for backend in backends
    }
    # One parallel wave over the full (backend × plan × seed) matrix.
    sweep.run_specs([
        spec
        for runner in runners.values()
        for spec in runner.uniform_specs(pairs) + runner.specs_for(adaptive)
    ])

    durations: Dict[str, Dict[SchedulerPair, float]] = {}
    write_amp: Dict[str, Dict[SchedulerPair, float]] = {}
    adaptive_rows: Dict[str, Dict[str, float]] = {}
    ssd_devices: Dict[str, int] = {}
    for backend, runner in runners.items():
        durations[backend] = {}
        write_amp[backend] = {}
        devices = 0
        for pair in pairs:
            outcome = runner.run_uniform(pair)
            durations[backend][pair] = outcome.mean_duration
            samples = _ssd_write_amps(outcome)
            write_amp[backend][pair] = (
                sum(samples) / len(samples) if samples else 0.0
            )
            devices = max(devices, _ssd_device_count(outcome))
        outcome = runner.run_plan(adaptive)
        samples = _ssd_write_amps(outcome)
        adaptive_rows[backend] = {
            "duration": outcome.mean_duration,
            "write_amp": sum(samples) / len(samples) if samples else 0.0,
        }
        ssd_devices[backend] = max(devices, _ssd_device_count(outcome))

    return ExperimentResult(
        experiment_id="fig-ssd",
        title="Pair study on flash: SSD and hybrid clusters",
        data={
            "durations": durations,
            "write_amp": write_amp,
            "adaptive": adaptive_rows,
            "adaptive_plan": ADAPTIVE_PLAN,
            "ssd_devices": ssd_devices,
            "pairs": pairs,
            "backends": list(backends),
            "hosts": HOSTS,
            "scale": scale,
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    durations = result.data["durations"]
    write_amp = result.data["write_amp"]
    adaptive = result.data["adaptive"]
    plan = "->".join(result.data["adaptive_plan"])
    parts = []
    for backend in result.data["backends"]:
        rows = [
            [str(pair), durations[backend][pair], write_amp[backend][pair]]
            for pair in result.data["pairs"]
        ]
        rows.append([f"adaptive {plan}", adaptive[backend]["duration"],
                     adaptive[backend]["write_amp"]])
        parts.append(format_table(
            ["pair", "seconds", "write amp"],
            rows,
            title=f"{backend} cluster (scale={result.data['scale']})",
        ))
    return "\n\n".join(parts)


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    durations = result.data["durations"]
    write_amp = result.data["write_amp"]
    adaptive = result.data["adaptive"]
    pairs = result.data["pairs"]
    hosts = result.data["hosts"]
    checks: List[ShapeCheck] = []
    for backend in result.data["backends"]:
        d = durations[backend]
        checks.append(ShapeCheck(
            f"{backend}: all {len(pairs)} pairs ran",
            len(d) == len(pairs)
            and all(v > 0 for v in d.values())
            and adaptive[backend]["duration"] > 0,
            f"{len(d)} pairs, durations "
            f"{min(d.values()):.1f}..{max(d.values()):.1f}s",
        ))
        # Write amplification is bounded below by 1: the FTL can defer
        # and coalesce host writes but every page must land on NAND.
        samples = [wa for wa in write_amp[backend].values() if wa > 0.0]
        samples += [adaptive[backend]["write_amp"]] \
            if adaptive[backend]["write_amp"] > 0.0 else []
        checks.append(ShapeCheck(
            f"{backend}: write amplification >= 1 on every SSD",
            bool(samples) and all(wa >= 1.0 for wa in samples),
            f"range {min(samples):.3f}..{max(samples):.3f}"
            if samples else "no SSD samples",
        ))
        # All-flash clusters report FTL stats on every host; hybrid
        # puts flash on odd hosts only.
        expected = hosts if backend == "ssd" else hosts // 2
        if backend in ("ssd", "hybrid"):
            checks.append(ShapeCheck(
                f"{backend}: FTL stats from {expected} of {hosts} hosts",
                result.data["ssd_devices"][backend] == expected,
                f"saw {result.data['ssd_devices'][backend]}",
            ))
    return checks
