"""Table II — percentage of non-concurrent shuffle vs number of waves.

    waves  = blocks / (data nodes × slots per node)
    paper: 1→29.5%, 1.5→17%, 2→10.9%, 2.5→6.4%, 3→5.3%, 3.5→3.4%,
           4→2.1%, 4.5→2.3%, 5→1.4%

Shape: the non-concurrent-shuffle share falls steeply and monotonically
(modulo noise) as waves increase — the justification for folding Ph2
into Ph3 at the paper's 4-wave operating point.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed
from ..mapreduce.job import MB

__all__ = ["run", "PAPER_TABLE_II", "DEFAULT_WAVES"]

PAPER_TABLE_II = {
    1: 29.5, 1.5: 17.0, 2: 10.9, 2.5: 6.4, 3: 5.3,
    3.5: 3.4, 4: 2.1, 4.5: 2.3, 5: 1.4,
}

DEFAULT_WAVES = (1, 2, 3, 4, 5)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    waves: Sequence[float] = DEFAULT_WAVES,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Vary the wave count by varying the number of blocks per VM.

    Input volume per VM is held constant; the block size shrinks as the
    block count grows, exactly like re-chunking a fixed dataset.
    """
    sweep = sweep if sweep is not None else default_runner()
    bytes_per_vm = int(512 * MB * scale)
    base = scaled_testbed(SORT, scale=scale, seeds=seeds)
    runners: Dict[float, SweepJobRunner] = {}
    for w in waves:
        blocks_per_vm = max(1, round(w * 2))  # 2 map slots per VM
        block_size = max(1 * MB, bytes_per_vm // blocks_per_vm)
        config = base.with_(
            job=base.job.with_(
                bytes_per_vm=blocks_per_vm * block_size,
                block_size=block_size,
            )
        )
        runners[w] = SweepJobRunner(config, sweep, label=f"table2 waves={w}")
    sweep.run_specs(
        [
            s
            for r in runners.values()
            for s in r.uniform_specs([r.config.cluster.initial_pair])
        ]
    )
    pct: Dict[float, float] = {}
    for w, runner in runners.items():
        outcome = runner.run_uniform(runner.config.cluster.initial_pair)
        pct[w] = mean(
            r.phases.non_concurrent_shuffle_pct for r in outcome.results
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Non-concurrent shuffle share vs map waves (sort)",
        data={"pct": pct, "scale": scale},
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    pct = result.data["pct"]
    rows = [
        [w, pct[w], PAPER_TABLE_II.get(w, float("nan"))] for w in sorted(pct)
    ]
    return format_table(
        ["waves", "measured %", "paper %"],
        rows,
        title=f"scale={result.data['scale']}",
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    pct = result.data["pct"]
    ws = sorted(pct)
    first, last = pct[ws[0]], pct[ws[-1]]
    checks = [
        ShapeCheck(
            "non-concurrent shuffle shrinks with waves",
            last < first,
            f"{first:.1f}% at {ws[0]} waves -> {last:.1f}% at {ws[-1]} waves",
        ),
        ShapeCheck(
            "steep early drop (>=30% relative by mid-table)",
            pct[ws[len(ws) // 2]] < first * 0.7 + 1e-9,
            "",
        ),
    ]
    return checks
