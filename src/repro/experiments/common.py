"""Shared experiment configuration: the calibrated testbed profile.

All experiments run on one calibrated testbed matching the paper's:
4 hosts × 4 VMs, 1 TB SATA per host, 1 Gb/s NICs, Hadoop 0.19 slot
layout.  Because a Python discrete-event simulation of the full 512 MB
per-node dataset costs minutes per job run, experiments support a
``scale`` factor that shrinks every *data* quantity (input per node,
block size, sort/shuffle buffers, page-cache sizes) by the same ratio —
preserving the structure that drives the paper's effects (number of
map waves, spill counts, cache-hit behaviour, dirty-throttle pressure)
while cutting the event count.  ``scale=1.0`` is the paper's exact
sizing; the default ``DEFAULT_SCALE`` is read from the
``REPRO_SCALE`` environment variable (falling back to 0.25).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

from ..core.experiment import TestbedConfig
from ..mapreduce.job import MB, JobConfig, JobSpec
from ..virt.cluster import ClusterConfig
from ..virt.pagecache import PageCacheParams

__all__ = [
    "DEFAULT_SCALE",
    "default_seeds",
    "scaled_cluster",
    "scaled_job",
    "scaled_testbed",
    "validate_scale",
]


def validate_scale(value: float, source: str = "scale") -> float:
    """Check a data-size scale factor is usable; returns it unchanged."""
    if not 0 < value <= 1:
        raise ValueError(f"{source} must be in (0, 1], got {value}")
    return value


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "0.25")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    return validate_scale(value, source="REPRO_SCALE")


#: Global data-size scale for experiments (1.0 = paper-exact sizes).
DEFAULT_SCALE = _env_scale()

#: Seeds for the paper's "average of three consecutive runs".
PAPER_SEEDS: Tuple[int, ...] = (0, 1, 2)


def default_seeds(n: int = 3) -> Tuple[int, ...]:
    """The first ``n`` experiment seeds.

    Starts with the paper's three consecutive runs and keeps counting
    upward past them, so asking for more seeds than the paper used
    extends the set deterministically instead of silently truncating
    to three.
    """
    if n <= len(PAPER_SEEDS):
        return PAPER_SEEDS[:n]
    return PAPER_SEEDS + tuple(range(len(PAPER_SEEDS), n))


def scaled_pagecache(scale: float) -> PageCacheParams:
    """Guest page-cache sizing, scaled with the dataset."""
    return PageCacheParams(
        capacity_bytes=max(8 * MB, int(600 * MB * scale)),
        dirty_background_bytes=max(2 * MB, int(32 * MB * scale)),
        dirty_limit_bytes=max(4 * MB, int(128 * MB * scale)),
    )


def scaled_cluster(
    scale: float = DEFAULT_SCALE,
    hosts: int = 4,
    vms_per_host: int = 4,
    seed: int = 0,
) -> ClusterConfig:
    """The paper's testbed shape with scaled guest memory sizing."""
    return ClusterConfig(
        hosts=hosts,
        vms_per_host=vms_per_host,
        pagecache=scaled_pagecache(scale),
        seed=seed,
    )


def scaled_job(
    spec: JobSpec,
    scale: float = DEFAULT_SCALE,
    bytes_per_vm: Optional[int] = None,
    **overrides,
) -> JobConfig:
    """Paper job sizing × ``scale``.

    Defaults keep the paper's 8 blocks per VM (4 map waves at 2 slots)
    whatever the scale, because the wave count — not the absolute bytes —
    controls the phase structure (paper Table II).
    """
    if bytes_per_vm is None:
        bytes_per_vm = int(512 * MB * scale)
    block_size = max(1 * MB, bytes_per_vm // 8)
    # Keep the input an exact multiple of the block size so the wave
    # count stays exactly 8/slots (a remainder byte would add a block).
    bytes_per_vm = block_size * max(1, bytes_per_vm // block_size)
    return JobConfig(
        spec=spec,
        bytes_per_vm=bytes_per_vm,
        block_size=block_size,
        sort_buffer_bytes=max(2 * MB, int(100 * MB * scale)),
        shuffle_buffer_bytes=max(2 * MB, int(128 * MB * scale)),
        **overrides,
    )


def scaled_testbed(
    spec: JobSpec,
    scale: float = DEFAULT_SCALE,
    hosts: int = 4,
    vms_per_host: int = 4,
    seeds: Sequence[int] = PAPER_SEEDS,
    n_phases: int = 2,
    bytes_per_vm: Optional[int] = None,
    **job_overrides,
) -> TestbedConfig:
    """One-stop testbed for experiments and examples."""
    return TestbedConfig(
        cluster=scaled_cluster(scale, hosts=hosts, vms_per_host=vms_per_host),
        job=scaled_job(spec, scale, bytes_per_vm=bytes_per_vm, **job_overrides),
        seeds=tuple(seeds),
        n_phases=n_phases,
    )
