"""Deprecated: the calibrated-testbed helpers moved to :mod:`repro.api`.

This module used to own ``scaled_testbed`` and friends; they are now
part of the stable public facade.  Importing them from here still works
but raises a :class:`DeprecationWarning` — update imports to::

    from repro.api import scaled_testbed, scaled_cluster, ...
"""

from __future__ import annotations

import warnings

from .. import api as _api

__all__ = [
    "DEFAULT_SCALE",
    "default_seeds",
    "scaled_cluster",
    "scaled_job",
    "scaled_testbed",
    "validate_scale",
]

#: Names forwarded (with a deprecation warning) to :mod:`repro.api`.
_MOVED = frozenset(__all__) | {"PAPER_SEEDS", "scaled_pagecache"}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.experiments.common.{name} moved to repro.api.{name}; "
            "the repro.experiments.common alias will be removed in a "
            "future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_api, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(set(globals()) | _MOVED)
