"""Experiment harness: one module per paper table/figure.

Each module's ``run(...)`` returns an
:class:`~repro.experiments.base.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports plus PASS/FAIL shape
checks.  ``repro.cli`` and ``benchmarks/`` drive these.
"""

from . import (
    ablations,
    fig1_sysbench,
    fig2_pairs,
    fig3_cdf,
    fig4_points,
    fig5_switchcost,
    fig6_phase_scores,
    fig7_adaptive,
    fig8_phases,
    fig9_faults,
    fig_ctrl,
    fig_multijob,
    fig_ssd,
    table1_sort,
    table2_waves,
)
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_cluster, scaled_job, scaled_testbed

#: Registry for the CLI: experiment id -> zero-config callable.
EXPERIMENTS = {
    "fig1": fig1_sysbench.run,
    "fig2": fig2_pairs.run,
    "fig3": fig3_cdf.run,
    "fig4": fig4_points.run,
    "fig5": fig5_switchcost.run,
    "fig6": fig6_phase_scores.run,
    "fig7a": fig7_adaptive.run_workloads,
    "fig7b": fig7_adaptive.run_consolidation,
    "fig7c": fig7_adaptive.run_datasize,
    "fig7d": fig7_adaptive.run_cluster_scale,
    "fig8": fig8_phases.run,
    "fig9-faults": fig9_faults.run,
    "fig-ctrl": fig_ctrl.run,
    "fig-multijob": fig_multijob.run,
    "fig-ssd": fig_ssd.run,
    "table1": table1_sort.run,
    "table2": table2_waves.run,
    "ablation-mechanisms": ablations.run_mechanisms,
    "ablation-online": ablations.run_online,
    "ablation-chain": ablations.run_chain,
    "ablation-phases": ablations.run_phase_count,
}

__all__ = [
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "ExperimentResult",
    "ShapeCheck",
    "scaled_cluster",
    "scaled_job",
    "scaled_testbed",
]
