"""Fig. 4 — performance at different points of the sort job per pair.

The paper plots the running time at successive points of the job for
several pairs against the (CFQ, CFQ) baseline and concludes that the
pair that wins overall — (AS, DL) — is not the best at every point; an
oracle choosing the best pair per sub-phase would gain ~26% over the
default and ~15% over (AS, DL).

We report the time each pair takes to reach map-progress checkpoints
plus the phase boundaries, and compute the same oracle bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.experiment import JobRunner
from ..metrics.summary import format_table
from ..metrics.timeline import ProgressTimeline
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import DEFAULT_PAIR, SchedulerPair
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run", "DEFAULT_POINT_PAIRS", "CHECKPOINTS"]

#: The pairs the paper's Fig. 4 tracks (one per VMM scheduler).
DEFAULT_POINT_PAIRS = (
    SchedulerPair("cfq", "cfq"),
    SchedulerPair("deadline", "deadline"),
    SchedulerPair("anticipatory", "deadline"),
    SchedulerPair("noop", "noop"),
)

#: Map-progress checkpoints, then the job end.
CHECKPOINTS = (0.25, 0.5, 0.75, 1.0)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Sequence[SchedulerPair] = DEFAULT_POINT_PAIRS,
    runner: Optional[JobRunner] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    if runner is None:
        runner = SweepJobRunner(
            scaled_testbed(SORT, scale=scale, seeds=seeds),
            sweep if sweep is not None else default_runner(),
            label="fig4 sort",
        )
        runner.prefetch_uniform(pairs)
    points: Dict[SchedulerPair, List[float]] = {}
    totals: Dict[SchedulerPair, float] = {}
    segments: Dict[SchedulerPair, List[float]] = {}
    for pair in pairs:
        outcome = runner.run_uniform(pair)
        result = outcome.results[0]
        timeline = ProgressTimeline.of(result.map_progress)
        marks = [timeline.time_at_fraction(f) for f in CHECKPOINTS]
        marks.append(result.duration)
        points[pair] = marks
        totals[pair] = outcome.mean_duration
        segments[pair] = [marks[0]] + [
            b - a for a, b in zip(marks, marks[1:])
        ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Running time at successive points of the sort job",
        data={
            "points": points,
            "segments": segments,
            "totals": totals,
            "pairs": list(pairs),
            "scale": scale,
        },
        renderer=_render,
        checker=_check,
    )


def _headers() -> List[str]:
    return [f"maps {int(f * 100)}%" for f in CHECKPOINTS] + ["job done"]


def _render(result: ExperimentResult) -> str:
    rows = [
        [str(pair)] + marks for pair, marks in result.data["points"].items()
    ]
    return format_table(
        ["pair"] + _headers(),
        rows,
        title=f"seconds to reach each point (scale={result.data['scale']})",
    )


def oracle_time(segments: Dict[SchedulerPair, List[float]]) -> float:
    """Best per-segment pair stitched together (no switch cost)."""
    n = len(next(iter(segments.values())))
    return sum(min(seg[i] for seg in segments.values()) for i in range(n))


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    totals = result.data["totals"]
    segments = result.data["segments"]
    checks = []
    best_pair = min(totals, key=totals.get)
    per_segment_winners = set()
    n = len(next(iter(segments.values())))
    for i in range(n):
        per_segment_winners.add(
            min(segments, key=lambda p: segments[p][i])
        )
    checks.append(
        ShapeCheck(
            "no single pair optimal at every point",
            len(per_segment_winners) > 1 or best_pair not in per_segment_winners,
            f"segment winners: {', '.join(str(p) for p in per_segment_winners)}",
        )
    )
    oracle = oracle_time(segments)
    if DEFAULT_PAIR in totals:
        gain_default = 1 - oracle / totals[DEFAULT_PAIR]
        checks.append(
            ShapeCheck(
                "oracle per-subphase beats default",
                gain_default > 0.03,
                f"{100 * gain_default:.1f}% (paper ~26%)",
            )
        )
    gain_best = 1 - oracle / totals[best_pair]
    checks.append(
        ShapeCheck(
            "oracle per-subphase beats the best single pair",
            gain_best > 0.0,
            f"{100 * gain_best:.1f}% (paper ~15%)",
        )
    )
    return checks
