"""Fig. 3 — CDFs of I/O throughput in the VMM and the VMs during sort,
comparing (CFQ, CFQ) against (Anticipatory, Deadline).

Paper claims: (AS, DL) achieves higher Dom0 throughput (max 184 MB/s,
mean 52.3 vs CFQ's 159/47.1) while (CFQ, CFQ) achieves better
*fairness* across the four VMs (their per-VM means are closer).
"""

from __future__ import annotations

from statistics import mean, pstdev
from typing import Dict, List, Optional, Sequence

from ..metrics.cdf import Cdf
from ..metrics.summary import format_series, format_table
from ..runner import RunSpec, SweepRunner, default_runner
from ..virt.pair import SchedulerPair
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_job, scaled_cluster

__all__ = ["run", "COMPARED_PAIRS"]

MB = 1024 * 1024

COMPARED_PAIRS = (
    SchedulerPair("cfq", "cfq"),
    SchedulerPair("anticipatory", "deadline"),
)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    grid = [(pair, seed) for pair in COMPARED_PAIRS for seed in seeds]
    specs = [
        RunSpec(
            kind="instrumented_job",
            seed=seed,
            config=(
                scaled_cluster(scale).with_(initial_pair=pair),
                scaled_job(SORT, scale),
            ),
            label=f"fig3 sort {pair} seed={seed}",
        )
        for pair, seed in grid
    ]
    payloads = sweep.run_specs(specs)
    dom0_samples: Dict[SchedulerPair, List[float]] = {p: [] for p in COMPARED_PAIRS}
    vm_means: Dict[SchedulerPair, List[float]] = {p: [] for p in COMPARED_PAIRS}
    vm_samples: Dict[SchedulerPair, List[float]] = {p: [] for p in COMPARED_PAIRS}
    for (pair, _seed), payload in zip(grid, payloads):
        dom0_samples[pair].extend(payload["dom0"])
        for series in payload["vms"].values():
            vm_means[pair].append(mean(series) if series else 0.0)
            vm_samples[pair].extend(series)
    return ExperimentResult(
        experiment_id="fig3",
        title="I/O throughput CDFs in VMM and VMs (sort)",
        data={
            "dom0": {p: Cdf.of(s) for p, s in dom0_samples.items()},
            "vm": {p: Cdf.of(s) for p, s in vm_samples.items()},
            "vm_means": vm_means,
            "scale": scale,
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    parts = []
    rows = []
    for level in ("dom0", "vm"):
        for pair, cdf in result.data[level].items():
            rows.append(
                [level, str(pair), cdf.mean, cdf.percentile(50),
                 cdf.percentile(90), cdf.maximum]
            )
    parts.append(
        format_table(
            ["level", "pair", "mean MB/s", "p50", "p90", "max"],
            rows,
            title="throughput distribution summaries",
        )
    )
    for pair, cdf in result.data["dom0"].items():
        parts.append(format_series(f"dom0 CDF {pair}", cdf.points(12)))
    return "\n".join(parts)


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    cfq, asdl = COMPARED_PAIRS
    dom0 = result.data["dom0"]
    vm_means = result.data["vm_means"]
    checks = [
        ShapeCheck(
            "(AS, DL) better mean Dom0 throughput",
            dom0[asdl].mean > dom0[cfq].mean,
            f"{dom0[asdl].mean:.1f} vs {dom0[cfq].mean:.1f} MB/s "
            "(paper 52.3 vs 47.1)",
        ),
        ShapeCheck(
            "(AS, DL) better peak Dom0 throughput",
            dom0[asdl].maximum >= dom0[cfq].maximum,
            f"{dom0[asdl].maximum:.0f} vs {dom0[cfq].maximum:.0f} MB/s "
            "(paper 184 vs 159)",
        ),
        ShapeCheck(
            "(CFQ, CFQ) fairer across VMs",
            pstdev(vm_means[cfq]) <= pstdev(vm_means[asdl]) + 1e-9,
            f"per-VM mean stdev {pstdev(vm_means[cfq]):.2f} vs "
            f"{pstdev(vm_means[asdl]):.2f} MB/s",
        ),
    ]
    return checks
