"""Fig. 1 — Sysbench sequential-write elapsed time per scheduler pair,
at three VM consolidation levels (1, 2, 3 VMs per physical machine).

Paper claims the experiment supports: elapsed time grows far
super-linearly with consolidation (×3.5 at 2 VMs, ×8.5 at 3 VMs on
average); pair choice moves the score ~16% on average; the default
(CFQ, CFQ) is not the best pair.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.summary import format_table
from ..runner import RunSpec, SweepRunner, default_runner
from ..virt.pair import DEFAULT_PAIR, SchedulerPair, all_pairs
from ..workloads.sysbench import MB
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_cluster

__all__ = ["run"]

CONSOLIDATIONS = (1, 2, 3)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    pairs = list(pairs) if pairs is not None else all_pairs()
    base = scaled_cluster(scale, hosts=1, vms_per_host=max(CONSOLIDATIONS))
    grid = [
        (n_vms, pair, seed)
        for n_vms in CONSOLIDATIONS
        for pair in pairs
        for seed in seeds
    ]
    specs = [
        RunSpec(
            kind="sysbench",
            seed=seed,
            config=(
                base.with_(initial_pair=pair),
                int(1024 * MB * scale),
                16,
                n_vms,
            ),
            label=f"fig1 {pair} {n_vms}vm seed={seed}",
        )
        for n_vms, pair, seed in grid
    ]
    payloads = sweep.run_specs(specs)
    elapsed: Dict[Tuple[SchedulerPair, int], List[float]] = {}
    for (n_vms, pair, _seed), payload in zip(grid, payloads):
        elapsed.setdefault((pair, n_vms), []).append(payload["elapsed"])
    times = {key: mean(values) for key, values in elapsed.items()}

    result = ExperimentResult(
        experiment_id="fig1",
        title="Sysbench seqwr elapsed time vs pair and VM consolidation",
        data={"times": times, "pairs": pairs, "scale": scale},
        renderer=_render,
        checker=_check,
    )
    return result


def _render(result: ExperimentResult) -> str:
    times = result.data["times"]
    pairs = result.data["pairs"]
    rows = [
        [str(pair)] + [times[(pair, n)] for n in CONSOLIDATIONS]
        for pair in pairs
    ]
    return format_table(
        ["pair"] + [f"{n} VM(s)" for n in CONSOLIDATIONS],
        rows,
        title=f"elapsed seconds (scale={result.data['scale']})",
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    times = result.data["times"]
    pairs = result.data["pairs"]
    checks = []

    def col(n):
        return [times[(p, n)] for p in pairs]

    slow2 = mean(col(2)) / mean(col(1))
    slow3 = mean(col(3)) / mean(col(1))
    checks.append(
        ShapeCheck(
            "consolidation superlinear slowdown",
            slow2 > 2.0 and slow3 > slow2,
            f"x{slow2:.1f} at 2 VMs, x{slow3:.1f} at 3 VMs (paper: 3.5/8.5)",
        )
    )
    variations = []
    for n in CONSOLIDATIONS:
        c = col(n)
        variations.append((max(c) - min(c)) / min(c))
    checks.append(
        ShapeCheck(
            "pair choice matters once VMs contend",
            all(v > 0.03 for n, v in zip(CONSOLIDATIONS, variations) if n >= 2),
            "variation " + ", ".join(f"{100 * v:.0f}%" for v in variations)
            + " (paper avg 16%; a single uncontended VM is insensitive)",
        )
    )
    if DEFAULT_PAIR in pairs:
        default_best = all(
            times[(DEFAULT_PAIR, n)] <= min(col(n)) + 1e-9 for n in CONSOLIDATIONS
        )
        checks.append(
            ShapeCheck(
                "(CFQ, CFQ) is not universally best",
                not default_best,
                "",
            )
        )
    return checks
