"""Fig. 5 — the switch-cost matrix between scheduler-pair states.

The paper measures Cost_switch = T_two − (T₁ + T₂)/2 over a parallel
dd workload for all 16×16 transitions and finds costs that vary with
the endpoints (4 s to 142 s there), are non-commutative, and are
positive even for same-to-same transitions.

The full 16×16 grid costs 272 simulated dd runs; by default we measure
a representative 6-state subset (36 transitions) covering every VMM
elevator — set ``full=True`` for the complete grid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.switch_cost import SwitchCostMatrix, SwitchCostMeter
from ..metrics.summary import format_matrix
from ..runner import SweepRunner, default_runner
from ..virt.pair import SchedulerPair, all_pairs
from ..workloads.ddwrite import MB
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_cluster

__all__ = ["run", "DEFAULT_STATES"]

#: Representative states: every VMM elevator appears, plus guest variety.
DEFAULT_STATES = tuple(
    SchedulerPair.parse(s) for s in ("cc", "cd", "ad", "aa", "dd", "nn")
)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    states: Optional[Sequence[SchedulerPair]] = None,
    full: bool = False,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    if states is None:
        states = all_pairs() if full else DEFAULT_STATES
    meter = SwitchCostMeter(
        scaled_cluster(scale, hosts=1),
        nbytes=int(600 * MB * scale),
        seeds=seeds,
        sweep=sweep if sweep is not None else default_runner(),
    )
    matrix = meter.matrix(list(states))
    return ExperimentResult(
        experiment_id="fig5",
        title="Switch cost between scheduler-pair states (dd workload)",
        data={"matrix": matrix, "states": list(states), "scale": scale},
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    matrix: SwitchCostMatrix = result.data["matrix"]
    states = result.data["states"]
    labels = [p.label for p in states]
    values = {
        (src.label, dst.label): cost
        for (src, dst), cost in matrix.costs.items()
    }
    grid = format_matrix(
        labels,
        labels,
        values,
        title=(
            "Cost_switch seconds (rows=from, cols=to; labels are "
            f"vmm+vm initials; scale={result.data['scale']})"
        ),
        floatfmt=".2f",
    )
    pures = ", ".join(
        f"{p.label}={matrix.pure_times[p]:.1f}s" for p in states
    )
    return grid + f"\npure dd times: {pures}"


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    matrix: SwitchCostMatrix = result.data["matrix"]
    states = result.data["states"]
    checks = []
    span = matrix.max_cost - matrix.min_cost
    checks.append(
        ShapeCheck(
            "cost varies with the transition",
            span > 0.01,
            f"range [{matrix.min_cost:.2f}, {matrix.max_cost:.2f}] s",
        )
    )
    asym = max(
        matrix.asymmetry(a, b)
        for i, a in enumerate(states)
        for b in states[i + 1:]
    )
    checks.append(
        ShapeCheck(
            "cost is non-commutative",
            asym > 0.005,
            f"max |cost(a->b)-cost(b->a)| = {asym:.2f} s",
        )
    )
    same = [matrix.cost(s, s) for s in states]
    checks.append(
        ShapeCheck(
            "same-to-same switches are not free",
            all(c > 0 for c in same),
            ", ".join(f"{s.label}={c:.2f}s" for s, c in zip(states, same)),
        )
    )
    return checks
