"""Fig. 7 — the adaptive meta-scheduler against the two baselines, in
four scenarios:

* (a) the three workloads (paper: adaptive beats default / best-single
  by 6.5%/2% for wordcount, 13%/7% w/o combiner, 16%/7% for sort);
* (b) VM consolidation 2/4/6 per host (gains grow with consolidation:
  11%/15%/22% vs default);
* (c) data size 256 MB–2 GB per node (gains grow with data size);
* (d) cluster scale 3–6 physical nodes (gains grow with scale).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.metasched import AdaptiveMetaScheduler, AdaptiveReport
from ..mapreduce.job import MB, JobSpec
from ..metrics.summary import format_table
from ..virt.pair import SchedulerPair
from ..workloads.profiles import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER
from .base import ExperimentResult, ShapeCheck
from .common import DEFAULT_SCALE, scaled_testbed

__all__ = [
    "run_workloads",
    "run_consolidation",
    "run_datasize",
    "run_cluster_scale",
    "SWEEP_PAIRS",
]

#: Candidate subset used by the sweeps (b)–(d): covers every VMM
#: elevator and the guest choices that matter; keeps each sweep point
#: at ~8 profiling runs instead of 16.
SWEEP_PAIRS = tuple(
    SchedulerPair.parse(s)
    for s in ("cc", "cd", "ac", "ad", "dd", "dc", "nc", "an")
)


def _report(
    spec: JobSpec,
    scale: float,
    seeds: Sequence[int],
    pairs: Optional[Sequence[SchedulerPair]],
    **testbed_overrides,
) -> AdaptiveReport:
    config = scaled_testbed(spec, scale=scale, seeds=seeds, **testbed_overrides)
    meta = AdaptiveMetaScheduler(config, pairs=list(pairs) if pairs else None)
    return meta.report()


def _rows(reports: Dict[str, AdaptiveReport]) -> List[List]:
    rows = []
    for label, rep in reports.items():
        rows.append(
            [
                label,
                rep.default_time,
                f"{rep.best_single_pair}",
                rep.best_single_time,
                f"{rep.adaptive_solution}",
                rep.adaptive_time,
                100 * rep.gain_vs_default,
                100 * rep.gain_vs_best_single,
            ]
        )
    return rows


_HEADERS = [
    "scenario",
    "default s",
    "best single",
    "single s",
    "adaptive plan",
    "adaptive s",
    "gain vs default %",
    "gain vs single %",
]


def _result(exp_id: str, title: str, reports: Dict[str, AdaptiveReport],
            scale: float, trend_check: bool = False) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=exp_id,
        title=title,
        data={"reports": reports, "scale": scale, "trend_check": trend_check},
        renderer=lambda r: format_table(
            _HEADERS, _rows(r.data["reports"]),
            title=f"scale={r.data['scale']}",
        ),
        checker=_check,
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    reports: Dict[str, AdaptiveReport] = result.data["reports"]
    checks = []
    for label, rep in reports.items():
        checks.append(
            ShapeCheck(
                f"{label}: adaptive never loses to default",
                rep.gain_vs_default > -0.005,
                f"{100 * rep.gain_vs_default:.1f}% (0% on CPU-bound "
                "workloads where elevators cannot matter)"
                if rep.gain_vs_default <= 0.001
                else f"{100 * rep.gain_vs_default:.1f}%",
            )
        )
        checks.append(
            ShapeCheck(
                f"{label}: adaptive >= best single (within noise)",
                rep.adaptive_time <= rep.best_single_time * 1.03,
                f"adaptive {rep.adaptive_time:.1f}s vs single "
                f"{rep.best_single_time:.1f}s",
            )
        )
    if result.data["trend_check"] and len(reports) >= 3:
        gains = [rep.gain_vs_default for rep in reports.values()]
        checks.append(
            ShapeCheck(
                "gain trends upward across the sweep",
                gains[-1] > gains[0],
                ", ".join(f"{100 * g:.1f}%" for g in gains),
            )
        )
    return checks


# -- the four panels --------------------------------------------------------------


def run_workloads(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
) -> ExperimentResult:
    """(a) adaptive vs baselines on the three benchmarks (full 16 pairs)."""
    reports = {
        spec.name: _report(spec, scale, seeds, pairs)
        for spec in (WORDCOUNT, WORDCOUNT_NO_COMBINER, SORT)
    }
    return _result("fig7a", "Adaptive tuning across workloads", reports, scale)


def run_consolidation(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    consolidations: Sequence[int] = (2, 4, 6),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
) -> ExperimentResult:
    """(b) sort with 2/4/6 VMs per physical host."""
    reports = {
        f"{n} VMs/host": _report(
            SORT, scale, seeds, pairs, vms_per_host=n
        )
        for n in consolidations
    }
    return _result(
        "fig7b", "Adaptive tuning vs VM consolidation (sort)", reports, scale,
        trend_check=True,
    )


def run_datasize(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sizes_mb: Sequence[int] = (256, 512, 1024, 2048),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
) -> ExperimentResult:
    """(c) sort with growing data per node (scaled)."""
    reports = {}
    for size in sizes_mb:
        bytes_per_vm = int(size * MB * scale)
        reports[f"{size} MB/node"] = _report(
            SORT, scale, seeds, pairs, bytes_per_vm=bytes_per_vm
        )
    return _result(
        "fig7c", "Adaptive tuning vs data size (sort)", reports, scale,
        trend_check=True,
    )


def run_cluster_scale(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    host_counts: Sequence[int] = (3, 4, 5, 6),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
) -> ExperimentResult:
    """(d) sort on 3–6 physical hosts (4 VMs each)."""
    reports = {
        f"{n} hosts": _report(SORT, scale, seeds, pairs, hosts=n)
        for n in host_counts
    }
    # No monotone-trend assertion here: per-node improvement is roughly
    # constant (as the paper itself notes, "the improvement in each
    # physical node is nearly the same") and the aggregate trend is
    # within single-seed noise; the per-scale positive-gain checks carry
    # the claim.
    return _result(
        "fig7d", "Adaptive tuning vs cluster scale (sort)", reports, scale,
        trend_check=False,
    )
