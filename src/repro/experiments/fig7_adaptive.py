"""Fig. 7 — the adaptive meta-scheduler against the two baselines, in
four scenarios:

* (a) the three workloads (paper: adaptive beats default / best-single
  by 6.5%/2% for wordcount, 13%/7% w/o combiner, 16%/7% for sort);
* (b) VM consolidation 2/4/6 per host (gains grow with consolidation:
  11%/15%/22% vs default);
* (c) data size 256 MB–2 GB per node (gains grow with data size);
* (d) cluster scale 3–6 physical nodes (gains grow with scale).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.experiment import TestbedConfig
from ..core.metasched import AdaptiveMetaScheduler, AdaptiveReport
from ..mapreduce.job import MB, JobSpec
from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import SchedulerPair, all_pairs
from ..workloads.profiles import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = [
    "run_workloads",
    "run_consolidation",
    "run_datasize",
    "run_cluster_scale",
    "SWEEP_PAIRS",
]

#: Candidate subset used by the sweeps (b)–(d): covers every VMM
#: elevator and the guest choices that matter; keeps each sweep point
#: at ~8 profiling runs instead of 16.
SWEEP_PAIRS = tuple(
    SchedulerPair.parse(s)
    for s in ("cc", "cd", "ac", "ad", "dd", "dc", "nc", "an")
)


def _batch_reports(
    configs: Dict[str, TestbedConfig],
    pairs: Optional[Sequence[SchedulerPair]],
    sweep: Optional[SweepRunner],
) -> Dict[str, AdaptiveReport]:
    """Adaptive reports for several testbed points.

    The profiling matrix (point × pair × seed) is embarrassingly
    parallel, so it goes through the sweep in one wave; the sequential
    Algorithm 1 per point then reads profiled runs back from the memo
    and only the heuristic's own evaluations still simulate.
    """
    sweep = sweep if sweep is not None else default_runner()
    pairs = list(pairs) if pairs is not None else all_pairs()
    runners = {
        label: SweepJobRunner(config, sweep, label=label)
        for label, config in configs.items()
    }
    sweep.run_specs(
        [s for r in runners.values() for s in r.uniform_specs(pairs)]
    )
    return {
        label: AdaptiveMetaScheduler(
            configs[label], pairs=pairs, runner=runners[label]
        ).report()
        for label in configs
    }


def _rows(reports: Dict[str, AdaptiveReport]) -> List[List]:
    rows = []
    for label, rep in reports.items():
        rows.append(
            [
                label,
                rep.default_time,
                f"{rep.best_single_pair}",
                rep.best_single_time,
                f"{rep.adaptive_solution}",
                rep.adaptive_time,
                100 * rep.gain_vs_default,
                100 * rep.gain_vs_best_single,
            ]
        )
    return rows


_HEADERS = [
    "scenario",
    "default s",
    "best single",
    "single s",
    "adaptive plan",
    "adaptive s",
    "gain vs default %",
    "gain vs single %",
]


def _result(exp_id: str, title: str, reports: Dict[str, AdaptiveReport],
            scale: float, trend_check: bool = False) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=exp_id,
        title=title,
        data={"reports": reports, "scale": scale, "trend_check": trend_check},
        renderer=lambda r: format_table(
            _HEADERS, _rows(r.data["reports"]),
            title=f"scale={r.data['scale']}",
        ),
        checker=_check,
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    reports: Dict[str, AdaptiveReport] = result.data["reports"]
    checks = []
    for label, rep in reports.items():
        checks.append(
            ShapeCheck(
                f"{label}: adaptive never loses to default",
                rep.gain_vs_default > -0.005,
                f"{100 * rep.gain_vs_default:.1f}% (0% on CPU-bound "
                "workloads where elevators cannot matter)"
                if rep.gain_vs_default <= 0.001
                else f"{100 * rep.gain_vs_default:.1f}%",
            )
        )
        checks.append(
            ShapeCheck(
                f"{label}: adaptive >= best single (within noise)",
                rep.adaptive_time <= rep.best_single_time * 1.03,
                f"adaptive {rep.adaptive_time:.1f}s vs single "
                f"{rep.best_single_time:.1f}s",
            )
        )
    if result.data["trend_check"] and len(reports) >= 3:
        gains = [rep.gain_vs_default for rep in reports.values()]
        checks.append(
            ShapeCheck(
                "gain trends upward across the sweep",
                gains[-1] > gains[0],
                ", ".join(f"{100 * g:.1f}%" for g in gains),
            )
        )
    return checks


# -- the four panels --------------------------------------------------------------


def run_workloads(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """(a) adaptive vs baselines on the three benchmarks (full 16 pairs)."""
    configs = {
        spec.name: scaled_testbed(spec, scale=scale, seeds=seeds)
        for spec in (WORDCOUNT, WORDCOUNT_NO_COMBINER, SORT)
    }
    reports = _batch_reports(configs, pairs, sweep)
    return _result("fig7a", "Adaptive tuning across workloads", reports, scale)


def run_consolidation(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    consolidations: Sequence[int] = (2, 4, 6),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """(b) sort with 2/4/6 VMs per physical host."""
    configs = {
        f"{n} VMs/host": scaled_testbed(
            SORT, scale=scale, seeds=seeds, vms_per_host=n
        )
        for n in consolidations
    }
    reports = _batch_reports(configs, pairs, sweep)
    return _result(
        "fig7b", "Adaptive tuning vs VM consolidation (sort)", reports, scale,
        trend_check=True,
    )


def run_datasize(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sizes_mb: Sequence[int] = (256, 512, 1024, 2048),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """(c) sort with growing data per node (scaled)."""
    configs = {
        f"{size} MB/node": scaled_testbed(
            SORT, scale=scale, seeds=seeds,
            bytes_per_vm=int(size * MB * scale),
        )
        for size in sizes_mb
    }
    reports = _batch_reports(configs, pairs, sweep)
    return _result(
        "fig7c", "Adaptive tuning vs data size (sort)", reports, scale,
        trend_check=True,
    )


def run_cluster_scale(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    host_counts: Sequence[int] = (3, 4, 5, 6),
    pairs: Sequence[SchedulerPair] = SWEEP_PAIRS,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """(d) sort on 3–6 physical hosts (4 VMs each)."""
    configs = {
        f"{n} hosts": scaled_testbed(SORT, scale=scale, seeds=seeds, hosts=n)
        for n in host_counts
    }
    reports = _batch_reports(configs, pairs, sweep)
    # No monotone-trend assertion here: per-node improvement is roughly
    # constant (as the paper itself notes, "the improvement in each
    # physical node is nearly the same") and the aggregate trend is
    # within single-seed noise; the per-scale positive-gain checks carry
    # the claim.
    return _result(
        "fig7d", "Adaptive tuning vs cluster scale (sort)", reports, scale,
        trend_check=False,
    )
