"""Fig. 8 — phase duration breakdown per benchmark.

The paper shows the relative lengths of the phases for each benchmark:
wordcount's first phase dominates (tiny reduce output), wordcount w/o
combiner has a long first phase with a visible second, and sort's two
phases are the closest to balanced — which is why sort benefits most
from per-phase tuning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import DEFAULT_PAIR
from ..workloads.profiles import SORT, WORDCOUNT, WORDCOUNT_NO_COMBINER
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run"]

BENCHMARKS = (WORDCOUNT, WORDCOUNT_NO_COMBINER, SORT)


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    runners = {
        spec.name: SweepJobRunner(
            scaled_testbed(spec, scale=scale, seeds=seeds), sweep,
            label=spec.name,
        )
        for spec in BENCHMARKS
    }
    sweep.run_specs(
        [s for r in runners.values() for s in r.uniform_specs([DEFAULT_PAIR])]
    )
    phases: Dict[str, Tuple[float, float]] = {
        name: runner.run_uniform(DEFAULT_PAIR).mean_phases
        for name, runner in runners.items()
    }
    return ExperimentResult(
        experiment_id="fig8",
        title="Phase durations per benchmark (default pair)",
        data={"phases": phases, "scale": scale},
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    rows = []
    for name, (ph1, ph2) in result.data["phases"].items():
        total = ph1 + ph2
        rows.append([name, ph1, ph2, total, 100 * ph1 / total])
    return format_table(
        ["benchmark", "phase1 s", "phase2 s", "total s", "phase1 %"],
        rows,
        title=f"scale={result.data['scale']}",
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    phases = result.data["phases"]
    checks = []

    def share(name):
        ph1, ph2 = phases[name]
        return ph1 / (ph1 + ph2)

    checks.append(
        ShapeCheck(
            "wordcount dominated by phase 1",
            share("wordcount") > 0.7,
            f"{100 * share('wordcount'):.0f}% of the job",
        )
    )
    checks.append(
        ShapeCheck(
            "sort phases the most balanced of the three",
            abs(share("sort") - 0.5)
            <= min(
                abs(share("wordcount") - 0.5),
                abs(share("wordcount-nocombiner") - 0.5),
            )
            + 1e-9,
            ", ".join(
                f"{n}={100 * share(n):.0f}%" for n in phases
            ),
        )
    )
    return checks
