"""Fig. M — elevator pairs and job schedulers under multi-tenancy (extension).

The paper picks elevator pairs for *one* job at a time; a consolidated
cluster runs many.  When job A's map wave overlaps job B's shuffle
tail, no single-phase intuition applies: the disk sees both access
patterns at once.  This extension sweeps a Poisson stream of sort jobs
from several tenants over a small shared cluster and asks two
questions the paper could not:

* which *elevator* configuration wins under overlap — the stock
  (CFQ, CFQ), the paper's static map-phase favourite (AS, DL), or a
  cluster-scope phase-majority switch plan (AS, DL while most live
  jobs map, back to (CFQ, CFQ) for the tails); and
* which *job-level scheduler* (FIFO / fair-share / SJF) best trades
  cluster makespan against per-tenant latency percentiles.

Expected shape: every job of every run completes; the stream really
overlaps (peak concurrency >= 2); per-tenant percentiles are ordered
(p50 <= p95 <= p99); and goodput is positive everywhere.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..api import DEFAULT_SCALE, MultiJobScenario
from ..mapreduce.multijob import JOB_SCHEDULERS
from ..metrics.summary import format_table
from ..runner import SweepRunner, default_runner
from .base import ExperimentResult, ShapeCheck, render_obs_blame

__all__ = ["run", "PLANS", "DEFAULT_SCHEDULERS"]

#: The elevator contenders (None = keep the stock (cfq, cfq)).
PLANS = {
    "default (cfq, cfq)": {},
    "static (as, dl)": {"pair": "ad"},
    "switch map->tail": {"switch": ("ad", "cc")},
}

DEFAULT_SCHEDULERS = ("fifo", "fair", "sjf")

#: Mean Poisson arrival rate (jobs per simulated second).  High enough
#: that the stream piles up on the 2x2 testbed at every supported
#: scale, which is the point: scheduling only matters under contention.
ARRIVAL_RATE = 0.2


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
    arrivals: Optional[int] = None,
    scheduler: Optional[str] = None,
    tenants: Optional[int] = None,
) -> ExperimentResult:
    """``arrivals`` = number of jobs in the stream (default 4);
    ``scheduler`` restricts the comparison to one policy;
    ``tenants`` = number of tenants sharing the cluster (default 2)."""
    sweep = sweep if sweep is not None else default_runner()
    n_jobs = 4 if arrivals is None else arrivals
    if n_jobs < 1:
        raise ValueError("arrivals must be >= 1")
    if scheduler is not None and scheduler not in JOB_SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from "
            f"{sorted(JOB_SCHEDULERS)}"
        )
    schedulers = (scheduler,) if scheduler else DEFAULT_SCHEDULERS
    n_tenants = 2 if tenants is None else tenants
    if n_tenants < 1:
        raise ValueError("tenants must be >= 1")
    tenant_names = tuple(f"tenant-{chr(ord('a') + i)}" for i in range(n_tenants))

    def scenario(plan_kwargs, sched) -> MultiJobScenario:
        return MultiJobScenario(
            workload="sort",
            scale=scale,
            hosts=2,
            vms_per_host=2,
            scheduler=sched,
            n_jobs=n_jobs,
            arrival_rate=ARRIVAL_RATE,
            tenants=tenant_names,
            **plan_kwargs,
        )

    specs = [
        scenario(plan_kwargs, sched).to_spec(seed)
        for plan_kwargs in PLANS.values()
        for sched in schedulers
        for seed in seeds
    ]
    payloads = sweep.run_specs(specs)

    makespan: Dict[str, Dict[str, float]] = {}
    goodput: Dict[str, Dict[str, float]] = {}
    i = 0
    first_payloads: Dict[str, dict] = {}  # (plan, sched) seed-0 payloads
    all_payloads: List[dict] = []
    for plan in PLANS:
        for sched in schedulers:
            rows = []
            for _ in seeds:
                payload = payloads[i]
                rows.append(payload)
                all_payloads.append(payload)
                i += 1
            first_payloads[f"{plan}|{sched}"] = rows[0]
            makespan.setdefault(plan, {})[sched] = mean(
                p["makespan"] for p in rows
            )
            goodput.setdefault(plan, {})[sched] = mean(
                p["goodput_bytes_per_s"] for p in rows
            )

    return ExperimentResult(
        experiment_id="fig-multijob",
        title="Multi-tenant streams: elevator plans x job schedulers "
        "(extension)",
        data={
            "makespan": makespan,
            "goodput": goodput,
            "payloads": all_payloads,
            "reference": first_payloads[f"default (cfq, cfq)|{schedulers[0]}"],
            "schedulers": list(schedulers),
            "n_jobs": n_jobs,
            "tenants": list(tenant_names),
            "scale": scale,
            "seeds": list(seeds),
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    makespan = result.data["makespan"]
    schedulers = result.data["schedulers"]
    rows = [
        [plan] + [makespan[plan][sched] for sched in schedulers]
        for plan in makespan
    ]
    parts = [
        format_table(
            ["elevator plan"] + list(schedulers),
            rows,
            title=f"stream makespan, seconds "
            f"({result.data['n_jobs']} jobs, scale={result.data['scale']})",
        )
    ]
    reference = result.data["reference"]
    tenant_rows = [
        [tenant, stats["jobs"], stats["p50"], stats["p95"], stats["p99"]]
        for tenant, stats in reference["tenants"].items()
    ]
    parts.append(
        format_table(
            ["tenant", "jobs", "p50", "p95", "p99"],
            tenant_rows,
            title=f"per-tenant job latency under default/"
            f"{result.data['schedulers'][0]} (seed {result.data['seeds'][0]})",
        )
    )
    parts.append(
        f"peak concurrency (reference run): "
        f"{reference['max_concurrency']} of {reference['n_jobs']} jobs"
    )
    blame = render_obs_blame(result)
    if blame:
        parts.append(blame)
    return "\n\n".join(parts)


def _check(result: ExperimentResult):
    payloads = result.data["payloads"]
    n_jobs = result.data["n_jobs"]
    checks = []

    incomplete = [p for p in payloads if p["n_jobs"] != n_jobs
                  or len(p["jobs"]) != n_jobs]
    checks.append(ShapeCheck(
        name="every job of every run completes",
        passed=not incomplete,
        detail=f"{len(payloads)} runs x {n_jobs} jobs",
    ))

    disordered = []
    for p in payloads:
        for tenant, stats in p["tenants"].items():
            if not stats["p50"] <= stats["p95"] <= stats["p99"]:
                disordered.append(tenant)
    checks.append(ShapeCheck(
        name="tenant percentiles ordered (p50 <= p95 <= p99)",
        passed=not disordered,
        detail=f"violations: {disordered}" if disordered else "",
    ))

    peak = max(p["max_concurrency"] for p in payloads)
    checks.append(ShapeCheck(
        name="the stream actually overlaps (peak concurrency >= 2)",
        passed=peak >= 2 or n_jobs == 1,
        detail=f"peak {peak} of {n_jobs}",
    ))

    non_positive = [p["goodput_bytes_per_s"] for p in payloads
                    if p["goodput_bytes_per_s"] <= 0]
    checks.append(ShapeCheck(
        name="goodput positive in every run",
        passed=not non_positive,
    ))
    return checks
