"""Fig. 6 — per-phase performance score of every pair (sort, 2 phases).

This is the profiling pass the heuristic sorts its candidates by: one
single-pair run per pair, split at the maps-done boundary.  The paper's
point: the per-phase ranking differs from the whole-job ranking, which
is what makes multi-pair plans winnable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.experiment import JobRunner
from ..core.heuristic import ProfiledScores, profile_single_pairs
from ..metrics.summary import format_table
from ..runner import SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import SchedulerPair, all_pairs
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run"]


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    pairs: Optional[Sequence[SchedulerPair]] = None,
    runner: Optional[JobRunner] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    pairs = list(pairs) if pairs is not None else all_pairs()
    if runner is None:
        runner = SweepJobRunner(
            scaled_testbed(SORT, scale=scale, seeds=seeds),
            sweep if sweep is not None else default_runner(),
            label="fig6 sort",
        )
    scores = profile_single_pairs(runner, pairs)
    # One multi-pair evaluation: the paper's point is that plans mixing
    # pairs across phases can beat every uniform plan; the profile
    # orders the candidates, full job runs decide (Algorithm 1's
    # evaluation step).  Pair the default with the best-single tail.
    from ..core.solution import Solution
    from ..virt.pair import DEFAULT_PAIR

    best_single = min(scores.totals, key=scores.totals.get)
    mixed_plan = Solution.of([DEFAULT_PAIR, best_single])
    mixed_score = (
        runner.score(mixed_plan) if mixed_plan.n_switches > 0 else None
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Per-phase performance score of each pair (sort)",
        data={
            "scores": scores,
            "scale": scale,
            "mixed_plan": mixed_plan,
            "mixed_score": mixed_score,
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    scores: ProfiledScores = result.data["scores"]
    rows = [
        [str(pair)] + list(scores.per_phase[pair]) + [scores.totals[pair]]
        for pair in scores.per_phase
    ]
    n = scores.n_phases
    return format_table(
        ["pair"] + [f"phase {i + 1} s" for i in range(n)] + ["total s"],
        rows,
        title=f"single-pair runs split at phase boundaries (scale={result.data['scale']})",
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    scores: ProfiledScores = result.data["scores"]
    checks = []
    best_total = min(scores.totals, key=scores.totals.get)

    # The per-phase rankings must carry information beyond the total
    # ranking — otherwise sorting candidates per phase (Algorithm 1's
    # input) would be pointless.
    k = min(6, len(scores.totals))
    rankings = [
        tuple(scores.ranked_for_phase(i)[:k]) for i in range(scores.n_phases)
    ]
    total_ranking = tuple(
        sorted(scores.totals, key=scores.totals.get)[:k]
    )
    checks.append(
        ShapeCheck(
            "per-phase rankings differ from the whole-job ranking",
            any(r != total_ranking for r in rankings)
            or len(set(rankings)) > 1,
            f"phase-1 top: {', '.join(str(p) for p in rankings[0][:3])}; "
            f"last phase top: {', '.join(str(p) for p in rankings[-1][:3])}",
        )
    )
    # The adaptive opportunity itself: a plan mixing two pairs across
    # the phases, evaluated with a real job run, beats every uniform
    # plan (this is what the profile cannot show and the heuristic's
    # full-run evaluations can).
    mixed_score = result.data.get("mixed_score")
    if mixed_score is not None:
        checks.append(
            ShapeCheck(
                "a mixed-pair plan beats the best single pair",
                mixed_score < scores.totals[best_total] + 1e-9,
                f"[{result.data['mixed_plan']}] {mixed_score:.1f}s vs "
                f"uniform {best_total} {scores.totals[best_total]:.1f}s",
            )
        )
    return checks
