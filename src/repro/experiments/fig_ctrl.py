"""fig-ctrl — online controller regret vs. the offline-optimal plan.

Not a figure from the paper: the paper's Algorithm 1 is offline (it
picks a plan from pre-measured tables).  This experiment closes the
loop — the :mod:`repro.ctrl` controller detects phase boundaries from
live trace topics and switches schedulers mid-job — and scores each
policy by *regret* against exhaustive plan enumeration under three
conditions: fault-free, fault-injected, and with a background
co-tenant write stream (multi-job interference).

Per condition, every distinct static plan over the restricted pair set
{ad, cc} runs as a greedy-controlled job (so policies and oracle
entries share specs, trajectories, and cache keys); the best static
duration is the offline optimum and ``regret = duration − optimum``.
The greedy policy replays Algorithm 1's plan (searched fault-free, as
the paper would); hysteresis charges the measured switch cost; the
bandit trains ε-greedy over the same arms, threading its learned state
between runs, then evaluates with ε=0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.heuristic import HeuristicSearch, profile_single_pairs
from ..ctrl import (
    CtrlConfig,
    build_oracle,
    enumerate_static_plans,
    payload_duration,
    plan_labels,
    static_ctrl_config,
)
from ..faults import PRESETS
from ..mapreduce.job import MB
from ..metrics.summary import format_table
from ..runner import RunSpec, SweepJobRunner, SweepRunner, default_runner
from ..virt.pair import SchedulerPair
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck, render_obs_blame
from ..api import DEFAULT_SCALE, scaled_testbed

__all__ = ["run", "CTRL_PAIRS", "DEFAULT_POLICIES"]

#: Restricted pair set: the paper's sort picks (AS, DL) for the map
#: phase and the stock (CFQ, CFQ) for the tail — 4 static plans at
#: n_phases=2, cheap enough to enumerate exhaustively.
CTRL_PAIRS = ("ad", "cc")

DEFAULT_POLICIES = ("greedy", "hysteresis", "bandit")

#: Bandit training rounds (= arm count: untried-first covers each arm).
TRAIN_ROUNDS = len(CTRL_PAIRS)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _spec(testbed, ctrl: CtrlConfig, fault_plan, seed: int,
          label: str) -> RunSpec:
    return RunSpec(
        kind="controlled_job", seed=seed,
        config=(testbed.with_(seeds=(seed,)), ctrl, fault_plan),
        label=f"{label} seed={seed}",
    )


def _run_mean(sweep: SweepRunner, testbed, ctrl: CtrlConfig, fault_plan,
              seeds: Sequence[int], label: str) -> Dict:
    """Mean duration (plus control report) over ``seeds``."""
    payloads = sweep.run_specs(
        [_spec(testbed, ctrl, fault_plan, s, label) for s in seeds]
    )
    return {
        "duration": _mean([payload_duration(p) for p in payloads]),
        "plan": payloads[0]["ctrl"]["plan"],
        "switches": payloads[0]["ctrl"]["n_switches"],
        "stall": _mean([p["ctrl"]["switch_stall"] for p in payloads]),
        "payloads": payloads,
    }


def _offline_plan(scale: float, seeds: Sequence[int],
                  sweep: SweepRunner) -> List[str]:
    """Algorithm 1's fault-free pick over the restricted pair set."""
    pairs = [SchedulerPair.parse(p) for p in CTRL_PAIRS]
    runner = SweepJobRunner(
        scaled_testbed(SORT, scale=scale, seeds=seeds), sweep,
        label="fig-ctrl offline",
    )
    runner.prefetch_uniform(pairs)
    scores = profile_single_pairs(runner, pairs)
    result = HeuristicSearch(runner, scores, pairs).search()
    return list(plan_labels(result.solution))


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0,),
    sweep: Optional[SweepRunner] = None,
    controller: Optional[str] = None,
    faults: Optional[str] = "light",
) -> ExperimentResult:
    sweep = sweep if sweep is not None else default_runner()
    policies = ((controller,) if controller is not None
                else DEFAULT_POLICIES)
    testbed = scaled_testbed(SORT, scale=scale, seeds=seeds)
    n_phases = testbed.n_phases
    plans = enumerate_static_plans(
        [SchedulerPair.parse(p) for p in CTRL_PAIRS], n_phases
    )
    offline = _offline_plan(scale, seeds, sweep)
    fault_plan = PRESETS[faults or "light"]
    interference = int(128 * MB * scale)
    conditions = (
        ("fault-free", None, 0),
        ("faults", fault_plan, 0),
        ("interference", None, interference),
    )

    results: Dict[str, Dict] = {}
    for name, plan, noise_bytes in conditions:
        base = CtrlConfig(interference_bytes=noise_bytes)
        # The static landscape: every plan as a greedy-controlled run.
        statics = {}
        specs = []
        for static in plans:
            ctrl = static_ctrl_config(static, base=base)
            specs.extend(_spec(testbed, ctrl, plan, s,
                               f"static {'→'.join(static)} [{name}]")
                         for s in seeds)
        sweep.run_specs(specs)  # one parallel wave; reads below hit cache
        for static in plans:
            ctrl = static_ctrl_config(static, base=base)
            statics[static] = _run_mean(sweep, testbed, ctrl, plan, seeds,
                                        f"static {'→'.join(static)} [{name}]")
        oracle = build_oracle(plans, [statics[p]["duration"] for p in plans])

        measured: Dict[str, Dict] = {}
        if "greedy" in policies:
            ctrl = base.with_(policy="greedy", initial=offline[0],
                              phase_pairs=tuple(offline))
            measured["greedy"] = _run_mean(sweep, testbed, ctrl, plan, seeds,
                                           f"greedy [{name}]")
        if "hysteresis" in policies:
            ctrl = base.with_(policy="hysteresis", initial=offline[0],
                              phase_pairs=tuple(offline), cost_budget=5.0)
            measured["hysteresis"] = _run_mean(sweep, testbed, ctrl, plan,
                                               seeds, f"hysteresis [{name}]")
        if "bandit" in policies:
            state: tuple = ()
            eval_regrets = []
            for round_no in range(TRAIN_ROUNDS):
                train = base.with_(policy="bandit", initial=CTRL_PAIRS[0],
                                   arms=CTRL_PAIRS, epsilon=0.05,
                                   state=state)
                out = _run_mean(sweep, testbed, train, plan, (seeds[0],),
                                f"bandit train {round_no} [{name}]")
                state = tuple(
                    tuple(row) for row in out["payloads"][0]["ctrl"]["state"]
                )
                evaluate = train.with_(epsilon=0.0, state=state)
                ev = _run_mean(sweep, testbed, evaluate, plan, seeds,
                               f"bandit eval {round_no} [{name}]")
                eval_regrets.append(oracle.regret(ev["duration"]))
            measured["bandit"] = dict(ev, eval_regrets=eval_regrets)

        results[name] = {
            "oracle": oracle.rows(),
            "optimum": {"plan": "→".join(oracle.optimum_plan),
                        "duration": oracle.optimum_duration},
            "policies": {
                pol: dict(out, regret=oracle.regret(out["duration"]),
                          payloads=None)
                for pol, out in measured.items()
            },
        }

    return ExperimentResult(
        experiment_id="fig-ctrl",
        title="Online controller regret vs. offline-optimal plan",
        data={
            "scale": scale,
            "seeds": list(seeds),
            "pairs": list(CTRL_PAIRS),
            "offline_plan": offline,
            "conditions": results,
        },
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    rows = []
    for name, cond in result.data["conditions"].items():
        opt = cond["optimum"]
        rows.append([name, "offline-optimal", opt["plan"],
                     opt["duration"], 0.0, "-"])
        for pol, out in cond["policies"].items():
            rows.append([name, pol, "→".join(out["plan"]), out["duration"],
                         out["regret"], str(out["switches"])])
    table = format_table(
        ["condition", "policy", "plan", "duration", "regret", "switches"],
        rows,
        title=(f"regret vs. exhaustive enumeration over "
               f"{{{','.join(result.data['pairs'])}}} "
               f"(offline plan: {'→'.join(result.data['offline_plan'])}, "
               f"scale={result.data['scale']})"),
    )
    blame = render_obs_blame(result)
    return table + ("\n\n" + blame if blame else "")


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    checks = []
    offline = result.data["offline_plan"]
    tol = 1e-6
    for name, cond in result.data["conditions"].items():
        for pol, out in cond["policies"].items():
            checks.append(ShapeCheck(
                f"{name}/{pol}: optimum lower-bounds the policy",
                out["regret"] >= -tol,
                f"regret {out['regret']:.3f}s",
            ))
    free = result.data["conditions"].get("fault-free", {})
    greedy = free.get("policies", {}).get("greedy")
    if greedy is not None:
        checks.append(ShapeCheck(
            "fault-free: greedy executes Algorithm 1's offline plan",
            list(greedy["plan"]) == list(offline),
            f"greedy {'→'.join(greedy['plan'])} vs offline "
            f"{'→'.join(offline)}",
        ))
    bandit = free.get("policies", {}).get("bandit")
    if bandit is not None:
        regrets = bandit["eval_regrets"]
        checks.append(ShapeCheck(
            "fault-free: bandit eval regret non-increasing over training",
            all(b <= a + tol for a, b in zip(regrets, regrets[1:])),
            " -> ".join(f"{r:.3f}s" for r in regrets),
        ))
    hysteresis = free.get("policies", {}).get("hysteresis")
    if greedy is not None and hysteresis is not None:
        checks.append(ShapeCheck(
            "fault-free: hysteresis never switches more than greedy",
            hysteresis["switches"] <= greedy["switches"],
            f"hysteresis {hysteresis['switches']} vs greedy "
            f"{greedy['switches']}",
        ))
    return checks
