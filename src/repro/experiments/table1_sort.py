"""Table I — sort runtime for all 16 pairs, as a 4×4 matrix.

Paper values (seconds, VM rows × VMM columns):

              CFQ  Deadline  Anticipatory  Noop
    CFQ       402  436       375           962
    Deadline  405  415       365           927
    Antic.    399  516       369           987
    Noop      413  418       370           915

Shape checks: the Anticipatory column wins every row; the Noop column
is catastrophically worse (~2.3×); the best pair beats (CFQ, CFQ) by
roughly 9%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..iosched.registry import SCHEDULER_NAMES, abbrev
from ..metrics.summary import format_matrix
from ..runner import SweepRunner
from ..virt.pair import DEFAULT_PAIR, SchedulerPair
from ..workloads.profiles import SORT
from .base import ExperimentResult, ShapeCheck
from ..api import DEFAULT_SCALE
from .fig2_pairs import run_one_benchmark

__all__ = ["run", "PAPER_TABLE_I"]

#: The paper's measured matrix, keyed (vm_row, vmm_col) by canonical name.
PAPER_TABLE_I = {
    ("cfq", "cfq"): 402, ("cfq", "deadline"): 436, ("cfq", "anticipatory"): 375, ("cfq", "noop"): 962,
    ("deadline", "cfq"): 405, ("deadline", "deadline"): 415, ("deadline", "anticipatory"): 365, ("deadline", "noop"): 927,
    ("anticipatory", "cfq"): 399, ("anticipatory", "deadline"): 516, ("anticipatory", "anticipatory"): 369, ("anticipatory", "noop"): 987,
    ("noop", "cfq"): 413, ("noop", "deadline"): 418, ("noop", "anticipatory"): 370, ("noop", "noop"): 915,
}


def run(
    scale: float = DEFAULT_SCALE,
    seeds: Sequence[int] = (0, 1, 2),
    durations: Optional[Dict[SchedulerPair, float]] = None,
    sweep: Optional[SweepRunner] = None,
) -> ExperimentResult:
    if durations is None:
        durations = run_one_benchmark(SORT, scale=scale, seeds=seeds,
                                      sweep=sweep)
    return ExperimentResult(
        experiment_id="table1",
        title="Sort runtime matrix (VM rows x VMM columns)",
        data={"durations": durations, "scale": scale},
        renderer=_render,
        checker=_check,
    )


def _render(result: ExperimentResult) -> str:
    durations = result.data["durations"]
    values = {}
    for pair, secs in durations.items():
        values[(abbrev(pair.vm), abbrev(pair.vmm))] = secs
    labels = [abbrev(n) for n in SCHEDULER_NAMES]
    return format_matrix(
        labels,
        labels,
        values,
        title=f"seconds (rows=VM elevator, cols=VMM elevator; scale={result.data['scale']})",
    )


def _check(result: ExperimentResult) -> List[ShapeCheck]:
    durations = result.data["durations"]
    checks = []

    def col(vmm):
        return {p.vm: d for p, d in durations.items() if p.vmm == vmm}

    antic = col("anticipatory")
    others = {
        vmm: col(vmm) for vmm in SCHEDULER_NAMES if vmm not in ("anticipatory", "noop")
    }
    wins = sum(
        1
        for vm in antic
        if all(antic[vm] <= others[vmm][vm] + 1e-9 for vmm in others)
    )
    checks.append(
        ShapeCheck(
            "Anticipatory VMM column wins (most rows)",
            wins >= 3,
            f"AS best in {wins}/4 rows",
        )
    )

    noop = col("noop")
    non_noop_best = min(
        d for p, d in durations.items() if p.vmm != "noop"
    )
    ratio = min(noop.values()) / non_noop_best
    checks.append(
        ShapeCheck(
            "Noop VMM column catastrophic",
            ratio > 1.2,
            f"x{ratio:.2f} vs best non-noop (paper ~x2.3)",
        )
    )

    best = min(durations.values())
    default = durations[DEFAULT_PAIR]
    gain = 1 - best / default
    checks.append(
        ShapeCheck(
            "best single pair beats default by a margin",
            0.02 < gain < 0.35,
            f"{100 * gain:.1f}% (paper ~9%)",
        )
    )
    return checks
