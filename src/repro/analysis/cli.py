"""``repro lint`` — the determinism & invariant linter's entry point.

Usage::

    repro lint                       # lint src/repro (auto-detected)
    repro lint src/repro tests       # explicit roots
    repro lint --format json --out lint-report.json
    repro lint --select DET001,DET002
    repro lint --list-rules

Exit codes follow the CLI convention used across ``repro``:

* ``0`` — scan ran and found nothing;
* ``1`` — scan ran and produced findings;
* ``2`` — usage error (unknown rule id, missing path, bad flags).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import RULES, run_lint
from .reporters import render_json, render_text

__all__ = ["main", "build_parser"]


def _parse_rule_list(raw: str) -> List[str]:
    rules = [r.strip() for r in raw.split(",") if r.strip()]
    if not rules:
        raise argparse.ArgumentTypeError(
            f"rule list {raw!r} is empty; give rule ids like DET001,DET002"
        )
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically enforce the simulator's reproducibility "
        "contract (see DESIGN.md 'Static analysis').",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src/repro, "
        "./repro, or . — first that exists)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the report to FILE",
    )
    parser.add_argument(
        "--select",
        type=_parse_rule_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_parse_rule_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def default_paths() -> List[Path]:
    for candidate in (Path("src/repro"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return [Path(".")]


def main(argv: Optional[List[str]] = None) -> int:
    # Registers the rules (core only holds the empty registry).
    from . import rules as _rules  # noqa: F401

    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; keep both
        # but return instead of raising so embedding callers get an int.
        return int(exc.code or 0)

    if args.list_rules:
        for rule_id, rule in RULES.items():
            print(f"{rule_id}: {rule.summary}")
        return 0

    for listed in (args.select or []), (args.ignore or []):
        for rule_id in listed:
            if rule_id not in RULES:
                print(
                    f"repro lint: error: unknown rule {rule_id!r} "
                    f"(known: {', '.join(RULES)})",
                    file=sys.stderr,
                )
                return 2

    paths = [Path(p) for p in args.paths] if args.paths else default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"repro lint: error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    findings, files_scanned = run_lint(
        paths, select=args.select, ignore=args.ignore
    )
    if args.format == "json":
        report = render_json(findings, files_scanned)
    else:
        report = render_text(findings, files_scanned)
    print(report)
    if args.out:
        Path(args.out).write_text(report + "\n", encoding="utf-8")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
