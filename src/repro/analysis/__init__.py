"""repro.analysis — static enforcement of the reproducibility contract.

Everything this reproduction claims rests on seed-deterministic,
bit-identical payloads.  The golden digests and property tests catch a
determinism hazard only when some run happens to exercise it; this
package catches the hazard at the source line, in CI, before it ships.

An AST-based linter (stdlib :mod:`ast` only) with six rules:

======== ==============================================================
DET001   no wall-clock reads inside simulation-path packages
DET002   all randomness routes through ``repro.sim.rng``
DET003   sim-path iteration over set/frozenset/``.keys()`` results
         must be wrapped in ``sorted(...)``
TRACE001 string-literal trace topics must be registered in
         ``repro.obs.topics``; registered topics must be published
CACHE001 cache-key construction (``spec_key``/``canonical``/
         ``Scenario.to_spec``) must not read os.environ, the wall
         clock, or mutated module-level state
API001   no attribute assignment to frozen/slotted dataclasses
         outside their defining module
======== ==============================================================

Run it as ``repro lint`` or ``python -m repro.analysis``.  Silence an
intentional exception with an inline comment carrying a justification::

    self.rng = rng  # repro-lint: disable=DET002 calibrated fixture

See DESIGN.md "Static analysis & the determinism contract".
"""

from .core import RULES, Finding, Rule, register_rule, rule_ids, run_lint
from .cli import main
from .reporters import render_json, render_text

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "main",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "run_lint",
]
