"""Linter infrastructure: findings, rules, suppressions, project scan.

The linter is a whole-program AST pass (stdlib :mod:`ast` only — no new
dependencies): :func:`scan_paths` parses every Python file under the
given roots into :class:`ModuleInfo` records, a :class:`Project` bundles
them for cross-module rules, and :func:`run_lint` drives every
registered :class:`Rule` over the project, dropping findings a
``# repro-lint: disable=RULE`` comment suppresses.

Rules never *execute* the code under analysis: even whole-program rules
like TRACE001 (which needs the topic registry) read it from the scanned
tree's AST, so linting a broken or hostile tree is safe.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "RULES",
    "register_rule",
    "rule_ids",
    "scan_paths",
    "run_lint",
    "ImportMap",
    "dotted_name",
]

#: Marker that introduces a suppression comment.
SUPPRESS_MARKER = "repro-lint:"

#: Directory names never descended into while scanning.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".repro-cache", ".venv", "venv",
    "node_modules", ".mypy_cache", ".pytest_cache", "build", "dist",
})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids disabled on that line.

    Syntax: ``# repro-lint: disable=DET001`` (comma-separate several
    ids; ``disable=all`` silences every rule on the line).  Comments are
    found with :mod:`tokenize`, so the marker inside a string literal
    is not a suppression.
    """
    out: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(t.start[0], t.string) for t in tokens
                    if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for line, text in comments:
        body = text.lstrip("#").strip()
        if not body.startswith(SUPPRESS_MARKER):
            continue
        directive = body[len(SUPPRESS_MARKER):].strip()
        # Everything after the rule list is a free-form justification.
        if not directive.startswith("disable="):
            continue
        rules_part = directive[len("disable="):].split()[0] if directive[len("disable="):] else ""
        ids = frozenset(r.strip() for r in rules_part.split(",") if r.strip())
        if ids:
            out[line] = out.get(line, frozenset()) | ids
    return out


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    #: Path as shown in findings (relative to the scan root when possible).
    rel: str
    #: Dotted module parts, e.g. ``("repro", "sim", "tracing")`` —
    #: derived from the ``__init__.py`` chain above the file.
    parts: Tuple[str, ...]
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return ".".join(self.parts)

    #: Package the module lives in (the module itself for ``__init__``).
    @property
    def package(self) -> Tuple[str, ...]:
        return self.parts if self.path.stem == "__init__" else self.parts[:-1]

    def suppressed(self, rule: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        return bool(ids) and (rule in ids or "all" in ids)


def _module_parts(path: Path) -> Tuple[str, ...]:
    """Dotted-name parts for ``path`` from its ``__init__.py`` ancestry."""
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    if not parts:  # a stray __init__.py with no package dir above it
        parts = [path.stem]
    return tuple(parts)


class Project:
    """Every scanned module, plus an index by dotted name."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = sorted(modules, key=lambda m: m.rel)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}

    def find(self, *suffix: str) -> Optional[ModuleInfo]:
        """The first module whose dotted parts end with ``suffix``."""
        for module in self.modules:
            if module.parts[-len(suffix):] == suffix:
                return module
        return None


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for root in paths:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for sub in sorted(root.rglob("*.py")):
            if any(part in SKIP_DIRS or part.startswith(".") for part in
                   sub.relative_to(root).parts[:-1]):
                continue
            yield sub


def scan_paths(paths: Sequence[Path]) -> Tuple[Project, List[Finding]]:
    """Parse every file under ``paths``; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    cwd = Path.cwd()
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            rel = str(file_path.resolve().relative_to(cwd))
        except ValueError:
            rel = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(Finding(
                rule="SYNTAX", path=rel, line=line, col=0,
                message=f"cannot parse file: {exc}",
            ))
            continue
        modules.append(ModuleInfo(
            path=file_path.resolve(),
            rel=rel,
            parts=_module_parts(file_path.resolve()),
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        ))
    return Project(modules), errors


# -- rules ----------------------------------------------------------------------------


class Rule:
    """Base class: subclass, set ``id``/``summary``, register.

    ``check_module`` runs once per file; ``check_project`` once per lint
    for whole-program invariants.  Either may be a no-op.
    """

    id: str = ""
    summary: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


#: Registry of rule instances by id, in registration order.
RULES: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def rule_ids() -> Tuple[str, ...]:
    return tuple(RULES)


def run_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], int]:
    """Run the registered rules over ``paths``.

    Returns ``(findings, files_scanned)`` with findings sorted by
    location and suppressed ones dropped.  ``select`` limits the run to
    the named rules; ``ignore`` drops rules from it.
    """
    # Imported here so `import repro.analysis.core` (e.g. from rule unit
    # tests) does not require the rule modules, which import this one.
    from . import rules as _rules  # noqa: F401  (registers the rules)

    active = [RULES[r] for r in (select if select is not None else RULES)]
    if ignore is not None:
        dropped = set(ignore)
        active = [rule for rule in active if rule.id not in dropped]
    project, findings = scan_paths(paths)
    for rule in active:
        for module in project.modules:
            for finding in rule.check_module(module, project):
                if not module.suppressed(finding.rule, finding.line):
                    findings.append(finding)
        for finding in rule.check_project(project):
            owner = next((m for m in project.modules if m.rel == finding.path), None)
            if owner is None or not owner.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings, len(project.modules)


# -- shared AST helpers ---------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local name -> absolute dotted path, from a module's imports."""

    def __init__(self, module: ModuleInfo):
        self.names: Dict[str, str] = {}
        package = module.package
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: resolve against the package.
                    base_parts = package[:len(package) - (node.level - 1)] \
                        if node.level > 1 else package
                    base = ".".join(base_parts)
                    prefix = f"{base}.{node.module}" if node.module else base
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{prefix}.{alias.name}" if prefix else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted path of a Name/Attribute chain, if its root
        name was imported; ``None`` for local/builtin roots."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self.names.get(root)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base
