"""``python -m repro.analysis`` — run the determinism linter."""

import sys

from .cli import main

sys.exit(main())
