"""CACHE001: cache-key construction must be a pure function of the spec.

The sweep cache's whole guarantee — two specs with equal keys produce
bit-identical payloads — collapses if key construction reads anything
besides the spec: an environment variable, the host clock, or mutable
module state would make the "same" key mean different runs on
different hosts.  This rule builds a conservative project call graph
from the key-construction entry points (``spec_key`` / ``canonical`` /
``Scenario.to_spec``) and flags ambient reads anywhere reachable.

Reachability is static and name-based (no execution): calls resolve to
same-module functions, imported project functions, ``self.`` methods
and properties of the enclosing class, ``Class.method`` references,
and project class constructors (``__init__`` / ``__post_init__``); an
unresolvable call falls back to every project function of that name.
Over-approximation is deliberate — a false edge only widens the purity
requirement, never hides a read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ImportMap, ModuleInfo, Project, Rule, register_rule
from .determinism import WALL_CLOCK_CALLS

__all__ = ["CacheKeyPurityRule", "ENTRY_POINT_NAMES"]

#: Function (or method) simple names that construct cache keys.  Names,
#: not module paths, so fixture trees can exercise the rule without
#: replicating the repo layout.
ENTRY_POINT_NAMES = frozenset({"spec_key", "canonical", "to_spec"})

#: Method calls that mutate the receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
})


@dataclass
class FuncInfo:
    """One function/method definition in the scanned tree."""

    module: ModuleInfo
    qualname: str          # "f" or "Class.f"
    cls: Optional[str]     # enclosing class name, if a method
    node: ast.AST          # FunctionDef / AsyncFunctionDef
    calls: List[Tuple[str, ast.expr]] = field(default_factory=list)


def _mutated_globals(module: ModuleInfo) -> Set[str]:
    """Module-level names some function in the module mutates."""
    top_level: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    top_level.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            top_level.add(node.target.id)
    mutated: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            mutated.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    mutated.add(target.value.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS and \
                isinstance(node.func.value, ast.Name):
            mutated.add(node.func.value.id)
    return mutated & top_level


class _Index:
    """Project-wide function index + call edges."""

    def __init__(self, project: Project):
        self.functions: Dict[Tuple[str, str], FuncInfo] = {}
        self.by_name: Dict[str, List[FuncInfo]] = {}
        self.imports: Dict[str, ImportMap] = {}
        for module in project.modules:
            self.imports[module.name] = ImportMap(module)
            self._index_module(module)

    def _index_module(self, module: ModuleInfo) -> None:
        def add(node, cls: Optional[str]):
            qual = f"{cls}.{node.name}" if cls else node.name
            info = FuncInfo(module=module, qualname=qual, cls=cls, node=node)
            self.functions[(module.name, qual)] = info
            self.by_name.setdefault(node.name, []).append(info)

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, None)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add(sub, node.name)

    # -- edge resolution ------------------------------------------------------
    def callees(self, info: FuncInfo) -> List["FuncInfo"]:
        module = info.module
        imports = self.imports[module.name]
        out: List[FuncInfo] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                out.extend(self._resolve_call(node, info, imports))
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and info.cls is not None:
                # self.x loads cover @property accessors.
                found = self.functions.get(
                    (module.name, f"{info.cls}.{node.attr}"))
                if found is not None:
                    out.append(found)
        return out

    def _resolve_call(self, call: ast.Call, caller: FuncInfo,
                      imports: ImportMap) -> List["FuncInfo"]:
        func = call.func
        module = caller.module
        if isinstance(func, ast.Name):
            name = func.id
            # Same module first: plain function or class constructor.
            found = self.functions.get((module.name, name))
            if found is not None:
                return [found]
            ctor = self._constructors(module.name, name)
            if ctor:
                return ctor
            resolved = imports.resolve(func)
            if resolved is not None:
                return self._resolve_dotted(resolved, name)
            return list(self.by_name.get(name, []))
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and caller.cls is not None:
                    found = self.functions.get(
                        (module.name, f"{caller.cls}.{attr}"))
                    return [found] if found is not None else []
                # Class.method in the same module.
                found = self.functions.get((module.name, f"{base}.{attr}"))
                if found is not None:
                    return [found]
                resolved = imports.resolve(func)
                if resolved is not None:
                    return self._resolve_dotted(resolved, attr)
            # obj.method(): fall back to name matching on project methods.
            return [f for f in self.by_name.get(attr, []) if f.cls is not None]
        return []

    def _constructors(self, module_name: str, cls: str) -> List["FuncInfo"]:
        out = []
        for method in ("__init__", "__post_init__"):
            found = self.functions.get((module_name, f"{cls}.{method}"))
            if found is not None:
                out.append(found)
        return out

    def _resolve_dotted(self, resolved: str, simple: str) -> List["FuncInfo"]:
        """Map an absolute dotted path to project functions."""
        parts = resolved.split(".")
        # module.func  /  module.Class (constructor)  /  module.Class.method
        for split in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:split])
            qual = ".".join(parts[split:])
            found = self.functions.get((module_name, qual))
            if found is not None:
                return [found]
            ctor = self._constructors(module_name, qual)
            if ctor:
                return ctor
        # Re-exported through a package __init__: match by simple name.
        return list(self.by_name.get(simple, []))


@register_rule
class CacheKeyPurityRule(Rule):
    """Ambient reads reachable from cache-key construction."""

    id = "CACHE001"
    summary = ("functions reachable from spec_key/canonical/"
               "Scenario.to_spec must not read os.environ, the wall "
               "clock, or mutated module-level state")

    def check_project(self, project: Project) -> Iterator[Finding]:
        index = _Index(project)
        entries = [info for (_, qual), info in index.functions.items()
                   if qual.split(".")[-1] in ENTRY_POINT_NAMES
                   and info.module.parts and info.module.parts[0] == "repro"]
        if not entries:
            return
        reachable: Set[int] = set()
        order: List[FuncInfo] = []
        stack = list(entries)
        while stack:
            info = stack.pop()
            if id(info) in reachable:
                continue
            reachable.add(id(info))
            order.append(info)
            stack.extend(index.callees(info))
        mutated_cache: Dict[str, Set[str]] = {}
        for info in sorted(order, key=lambda f: (f.module.rel, f.node.lineno)):
            yield from self._check_function(info, index, mutated_cache)

    def _check_function(self, info: FuncInfo, index: _Index,
                        mutated_cache: Dict[str, Set[str]]) -> Iterator[Finding]:
        module = info.module
        imports = index.imports[module.name]
        mutated = mutated_cache.get(module.name)
        if mutated is None:
            mutated = mutated_cache[module.name] = _mutated_globals(module)
        where = f"{info.qualname} (reachable from cache-key construction)"
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                if resolved in WALL_CLOCK_CALLS:
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=f"wall-clock read {resolved}() in {where}",
                    )
                elif resolved == "os.getenv":
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=f"os.getenv() read in {where}",
                    )
            elif isinstance(node, ast.Attribute):
                if imports.resolve(node) == "os.environ":
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=f"os.environ read in {where}",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id in mutated:
                yield Finding(
                    rule=self.id, path=module.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(f"read of mutable module-level state "
                             f"{node.id!r} in {where}"),
                )
