"""TRACE001: trace-topic literals vs the registry, both directions.

Every string-literal topic handed to ``TraceBus.publish`` /
``record_topic`` / ``subscribe`` must name a topic registered in
``repro.obs.topics`` (globs must match at least one), and every
registered topic must have at least one publish site — otherwise the
registry entry is dead and the metrics bridge subscribes to silence.

The registry is read from the *scanned tree's* AST (the ``TopicSpec``
calls in the module whose dotted name ends ``obs.topics``), never
imported, so the rule works on fixture trees and broken checkouts
alike.  When the scanned tree has no registry module the rule is inert.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import Finding, ModuleInfo, Project, Rule, register_rule

__all__ = ["TraceTopicRule"]

#: Method names that *consume* a topic as their first string argument.
_TOPIC_SINKS = ("record_topic", "subscribe")


def _registry(project: Project) -> Optional[Tuple[ModuleInfo, Dict[str, int]]]:
    """The topics module and its ``name -> lineno`` map, if present."""
    module = project.find("obs", "topics")
    if module is None:
        return None
    topics: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "TopicSpec":
            name_node: Optional[ast.expr] = None
            if node.args:
                name_node = node.args[0]
            for kw in node.keywords:
                if kw.arg == "name":
                    name_node = kw.value
            if isinstance(name_node, ast.Constant) and \
                    isinstance(name_node.value, str):
                topics.setdefault(name_node.value, name_node.lineno)
    return module, topics


def _matches(pattern: str, topics: Dict[str, int]) -> bool:
    if pattern == "*":
        return bool(topics)
    if pattern.endswith(".*"):
        prefix = pattern[:-1]
        return any(name.startswith(prefix) for name in topics)
    return pattern in topics


def _literal_topic(call: ast.Call, arg_index: int) -> Optional[Tuple[str, ast.expr]]:
    if len(call.args) <= arg_index:
        return None
    node = call.args[arg_index]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node
    return None


@register_rule
class TraceTopicRule(Rule):
    """Publish/record sites and the topic registry must agree."""

    id = "TRACE001"
    summary = ("string-literal trace topics must be registered in "
               "repro.obs.topics; registered topics must have a "
               "publish site")

    def _sites(self, module: ModuleInfo) -> Iterator[Tuple[str, str, ast.expr]]:
        """Yields ``(kind, topic, node)`` for literal-topic call sites."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr == "publish":
                found = _literal_topic(node, 1)  # publish(time, topic, **p)
                if found:
                    yield "publish", found[0], found[1]
            elif attr in _TOPIC_SINKS:
                found = _literal_topic(node, 0)
                if found:
                    yield attr, found[0], found[1]

    def check_project(self, project: Project) -> Iterator[Finding]:
        loaded = _registry(project)
        if loaded is None:
            return
        registry_module, topics = loaded
        published: set = set()
        for module in project.modules:
            if module is registry_module:
                continue
            for kind, topic, node in self._sites(module):
                if kind == "publish":
                    published.add(topic)
                    if topic not in topics:
                        yield Finding(
                            rule=self.id, path=module.rel,
                            line=node.lineno, col=node.col_offset,
                            message=(f"published topic {topic!r} is not in "
                                     f"the registry ({registry_module.rel}); "
                                     "add a TopicSpec for it"),
                        )
                elif not _matches(topic, topics):
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"{kind}() topic {topic!r} matches no "
                                 f"registered topic ({registry_module.rel})"),
                    )
        for name, lineno in topics.items():
            if name not in published:
                yield Finding(
                    rule=self.id, path=registry_module.rel,
                    line=lineno, col=0,
                    message=(f"registered topic {name!r} has no publish "
                             "site in the scanned tree; delete the dead "
                             "TopicSpec or publish it"),
                )
