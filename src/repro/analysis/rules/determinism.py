"""Determinism rules: wall clock, RNG routing, unordered iteration.

These guard the property every golden digest and the sweep cache rely
on: a run is a pure function of ``(kind, config, seed)``.  Wall-clock
reads, unseeded RNG draws, and set-iteration order are the three ways
host state has historically leaked into simulations.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import Finding, ImportMap, ModuleInfo, Project, Rule, register_rule

__all__ = ["SIM_PACKAGES", "WallClockRule", "RngRoutingRule", "UnorderedIterationRule"]

#: Sub-packages of ``repro`` that execute *inside* a simulation: code
#: here must read only simulated time (``env.now``) and injected RNG
#: streams.  The driver layers (cli, runner, bench, obs, api, metrics,
#: experiments, analysis) may read the host clock for progress output.
SIM_PACKAGES = frozenset({
    "sim", "core", "ctrl", "disk", "iosched", "mapreduce", "virt", "hdfs",
    "net", "faults", "workloads",
})

#: Call targets that read the host clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def in_sim_path(module: ModuleInfo) -> bool:
    parts = module.parts
    return (len(parts) >= 2 and parts[0] == "repro"
            and parts[1] in SIM_PACKAGES)


def _wall_clock_target(imports: ImportMap, call: ast.Call) -> str | None:
    resolved = imports.resolve(call.func)
    if resolved in WALL_CLOCK_CALLS:
        return resolved
    return None


@register_rule
class WallClockRule(Rule):
    """DET001: simulation-path code must not read the host clock."""

    id = "DET001"
    summary = ("no wall-clock reads (time.time/monotonic, datetime.now/"
               "today) inside simulation-path packages — use env.now")

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not in_sim_path(module):
            return
        imports = ImportMap(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = _wall_clock_target(imports, node)
                if target is not None:
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"wall-clock read {target}() in the "
                                 "simulation path; simulated components "
                                 "must use env.now"),
                    )


@register_rule
class RngRoutingRule(Rule):
    """DET002: randomness routes through ``repro.sim.rng`` only."""

    id = "DET002"
    summary = ("no direct random / numpy.random use outside repro.sim.rng"
               " — draw from the seeded RngStreams service")

    #: The one module allowed to construct generators.
    ALLOWED: Tuple[str, ...] = ("sim", "rng")

    def _allowed(self, module: ModuleInfo) -> bool:
        # Only repro's own source is held to the routing contract; the
        # rule still applies project-wide (not just sim-path packages).
        return module.parts[-2:] == self.ALLOWED or module.parts[0] != "repro"

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if self._allowed(module):
            return
        imports = ImportMap(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield Finding(
                            rule=self.id, path=module.rel,
                            line=node.lineno, col=node.col_offset,
                            message=("import of stdlib random; all draws "
                                     "must come from repro.sim.rng streams"),
                        )
            elif isinstance(node, ast.ImportFrom):
                if not node.level and node.module and \
                        node.module.split(".")[0] == "random":
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=("import from stdlib random; all draws "
                                 "must come from repro.sim.rng streams"),
                    )
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                if resolved and (resolved.startswith("numpy.random.")
                                 or resolved.startswith("random.")):
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"direct call to {resolved}; construct "
                                 "generators in repro.sim.rng (RngStreams/"
                                 "fallback_rng) and inject them"),
                    )


def _unordered_iterable(node: ast.AST) -> str | None:
    """Describe ``node`` when it is an unordered iterable, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys" \
                and not node.args and not node.keywords:
            return ".keys() of a dict"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    """DET003: iteration order in the sim path must be deterministic."""

    id = "DET003"
    summary = ("iteration over set/frozenset/.keys() results in the "
               "simulation path must be wrapped in sorted(...)")

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not in_sim_path(module):
            return
        iters = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            what = _unordered_iterable(expr)
            if what is not None:
                yield Finding(
                    rule=self.id, path=module.rel,
                    line=expr.lineno, col=expr.col_offset,
                    message=(f"iteration over {what} in the simulation "
                             "path; wrap the iterable in sorted(...) so "
                             "event order is seed-deterministic"),
                )
