"""API001: frozen/slotted dataclasses are written only by their module.

Frozen dataclasses (``RunSpec``, ``Scenario``, ``TraceRecord``,
``CaptureConfig``, the config dataclasses…) are the repo's value
objects: cache keys hash them, payload equality relies on them.  The
runtime ``FrozenInstanceError`` only fires on plain attribute syntax —
``object.__setattr__`` slips straight past it — so this rule flags
*both* forms whenever they target a frozen or slotted dataclass from
outside its defining module (the defining module legitimately uses
``object.__setattr__`` in ``__post_init__`` normalisers).

Inference is local and conservative: a variable's class is known when
it was constructed in the same scope (``x = RunSpec(...)``) or
annotated (``x: RunSpec``); anything else is not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import Finding, ImportMap, ModuleInfo, Project, Rule, register_rule

__all__ = ["FrozenDataclassRule"]


def _truthy_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _is_guarded_dataclass(node: ast.ClassDef) -> bool:
    """True for ``@dataclass(frozen=True)`` / ``@dataclass(slots=True)``
    or a dataclass whose body defines ``__slots__``."""
    decorated = False
    frozen_or_slots = False
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else None
        if name != "dataclass":
            continue
        decorated = True
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg in ("frozen", "slots") and _truthy_const(kw.value):
                    frozen_or_slots = True
    if not decorated:
        return False
    if frozen_or_slots:
        return True
    return any(
        isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets)
        for stmt in node.body
    )


def _guarded_classes(project: Project) -> Dict[str, str]:
    """Map class name -> defining module dotted name."""
    out: Dict[str, str] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_guarded_dataclass(node):
                out.setdefault(node.name, module.name)
    return out


class _ScopeTypes(ast.NodeVisitor):
    """Infer local-variable class names within one function scope."""

    def __init__(self, imports: ImportMap, guarded: Dict[str, str]):
        self.imports = imports
        self.guarded = guarded
        self.types: Dict[str, str] = {}

    def _class_of(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Call):
            return self._class_of(node.func)
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return None
        if name in self.guarded:
            resolved = self.imports.resolve(node)
            if resolved is None or resolved.split(".")[-1] == name:
                return name
        return None

    def bind_args(self, fn: ast.AST) -> None:
        args = getattr(fn, "args", None)
        if args is None:
            return
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = self._class_of(arg.annotation)
            if cls is not None:
                self.types[arg.arg] = cls

    def visit_Assign(self, node: ast.Assign) -> None:
        cls = self._class_of(node.value) if isinstance(node.value, ast.Call) else None
        for target in node.targets:
            if isinstance(target, ast.Name):
                if cls is not None:
                    self.types[target.id] = cls
                else:
                    self.types.pop(target.id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            cls = self._class_of(node.annotation)
            if cls is not None:
                self.types[node.target.id] = cls


@register_rule
class FrozenDataclassRule(Rule):
    """Attribute writes to frozen/slotted dataclasses, cross-module."""

    id = "API001"
    summary = ("no attribute assignment (or object.__setattr__) on "
               "frozen/slotted dataclass instances outside their "
               "defining module")

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        guarded = _guarded_classes(project)
        if not guarded:
            return
        imports = ImportMap(module)
        scopes: List[Tuple[ast.AST, Optional[str]]] = [(module.tree, None)]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, None))
        for scope, _ in scopes:
            yield from self._check_scope(scope, module, imports, guarded)

    @staticmethod
    def _iter_scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes of one scope in source order, skipping nested scopes
        (nested defs get their own `_check_scope` pass)."""
        stack: List[ast.AST] = list(reversed(getattr(scope, "body", [])))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(reversed(list(ast.iter_child_nodes(node))))

    def _check_scope(self, scope: ast.AST, module: ModuleInfo,
                     imports: ImportMap, guarded: Dict[str, str]) -> Iterator[Finding]:
        tracker = _ScopeTypes(imports, guarded)
        tracker.bind_args(scope)
        for node in self._iter_scope_nodes(scope):
            if isinstance(node, ast.Assign):
                tracker.visit_Assign(node)
                yield from self._check_targets(node.targets, tracker,
                                              module, guarded)
            elif isinstance(node, ast.AnnAssign):
                tracker.visit_AnnAssign(node)
                yield from self._check_targets([node.target], tracker,
                                               module, guarded)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_targets([node.target], tracker,
                                               module, guarded)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                # Loop variables shadow earlier bindings of unknown type.
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        tracker.types.pop(name_node.id, None)
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(node, tracker, module,
                                               guarded)

    def _flag(self, cls: str, module: ModuleInfo, guarded: Dict[str, str],
              node: ast.AST, via: str) -> Iterator[Finding]:
        defining = guarded[cls]
        if defining == module.name:
            return
        yield Finding(
            rule=self.id, path=module.rel,
            line=node.lineno, col=node.col_offset,
            message=(f"{via} on frozen/slotted dataclass {cls} "
                     f"(defined in {defining}) outside its module; "
                     "use dataclasses.replace() / a with_() helper"),
        )

    def _check_targets(self, targets, tracker: _ScopeTypes,
                       module: ModuleInfo, guarded: Dict[str, str]) -> Iterator[Finding]:
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name):
                cls = tracker.types.get(target.value.id)
                if cls is not None:
                    yield from self._flag(cls, module, guarded, target,
                                          f"attribute assignment .{target.attr}")

    def _check_setattr(self, node: ast.Call, tracker: _ScopeTypes,
                       module: ModuleInfo, guarded: Dict[str, str]) -> Iterator[Finding]:
        func = node.func
        is_setattr = (
            isinstance(func, ast.Attribute) and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name) and func.value.id == "object"
        ) or (isinstance(func, ast.Name) and func.id == "setattr")
        if not is_setattr or not node.args:
            return
        target = node.args[0]
        if isinstance(target, ast.Name):
            cls = tracker.types.get(target.id)
            if cls is not None:
                yield from self._flag(cls, module, guarded, node,
                                      "object.__setattr__")
