"""Rule modules; importing this package registers every rule.

Grouped by the contract they guard:

* :mod:`.determinism` — DET001 (no wall clock in the simulation path),
  DET002 (all randomness routes through ``repro.sim.rng``), DET003 (no
  iteration over unordered collections in the simulation path);
* :mod:`.trace_topics` — TRACE001 (publish sites vs the topic registry);
* :mod:`.cache_purity` — CACHE001 (cache-key construction reads no
  ambient state);
* :mod:`.frozen_api` — API001 (no attribute assignment to frozen or
  slotted dataclasses outside their defining module).
"""

from . import cache_purity, determinism, frozen_api, trace_topics  # noqa: F401

__all__ = ["cache_purity", "determinism", "frozen_api", "trace_topics"]
