"""Renderers for lint results: human-readable text and stable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .core import RULES, Finding

__all__ = ["render_text", "render_json", "counts_by_rule"]

#: Schema version of the JSON report (bump on breaking shape changes).
REPORT_SCHEMA = 1


def counts_by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        per_rule = ", ".join(f"{rule} x{n}" for rule, n in
                             counts_by_rule(findings).items())
        lines.append(f"{len(findings)} finding(s) in {files_scanned} "
                     f"file(s): {per_rule}")
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    """Deterministic JSON document (sorted findings, sorted keys)."""
    payload = {
        "schema": REPORT_SCHEMA,
        "files_scanned": files_scanned,
        "rules": {rule_id: rule.summary for rule_id, rule in RULES.items()},
        "counts": counts_by_rule(findings),
        "findings": [f.to_json() for f in findings],
        "clean": not findings,
    }
    return json.dumps(payload, indent=1, sort_keys=True)
