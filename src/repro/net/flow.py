"""Max-min fair flow-level network model.

Shuffle traffic is modelled at flow granularity: a transfer occupies a
set of links (source NIC egress, destination NIC ingress) and all
concurrent flows share link capacity max-min fairly (progressive
filling).  Rates are recomputed whenever a flow starts or finishes and
the next completion is scheduled analytically — the same event-driven
technique as the processor-sharing CPU.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment

__all__ = ["Link", "Flow", "FlowNetwork"]

_fid_counter = itertools.count(1)


def reset_fids() -> None:
    """Restart flow numbering at 1; fids label flows (repr/hash) and
    never order them, so this only stabilises cross-run diagnostics."""
    global _fid_counter
    _fid_counter = itertools.count(1)


class Link:
    """A unidirectional capacity constraint (bytes/second)."""

    __slots__ = ("name", "capacity", "flows", "_epoch", "_residual", "_count")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive: {name}")
        self.name = name
        self.capacity = capacity
        # Scratch used by FlowNetwork._reallocate_and_schedule, valid
        # only within the reallocation epoch stamped on ``_epoch``.
        self._epoch = 0
        self._residual = 0.0
        self._count = 0
        # Insertion-ordered (dict keys) so iteration order — and hence
        # float accumulation order — is a function of the run alone,
        # not of the process-global flow counter.
        self.flows: Dict["Flow", None] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Link {self.name} {self.capacity:.0f}B/s flows={len(self.flows)}>"


class Flow:
    """One in-progress transfer across a fixed set of links."""

    __slots__ = ("fid", "links", "remaining", "nbytes", "rate", "done", "label",
                 "start_time", "_epoch")

    def __init__(self, links: Tuple[Link, ...], nbytes: float, done: Event,
                 label: Any, start_time: float):
        self.fid = next(_fid_counter)
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done
        self.label = label
        self.start_time = start_time
        # Epoch stamp: marks the flow rate-assigned during a
        # reallocation pass (see FlowNetwork._reallocate_and_schedule).
        self._epoch = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Flow #{self.fid} {self.label!r} left={self.remaining:.0f}B @{self.rate:.0f}B/s>"

    def __hash__(self) -> int:
        return self.fid

    def __eq__(self, other) -> bool:
        return self is other


class FlowNetwork:
    """The flow scheduler: max-min fair rates, analytic completions."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._flows: Dict[Flow, None] = {}
        self._last_update = env.now
        self._generation = 0
        self._epoch = 0
        self.completed_flows = 0
        self.bytes_transferred = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, links: List[Link], nbytes: float, label: Any = None) -> Event:
        """Start a transfer; the returned event fires at completion.

        Zero-byte transfers complete immediately.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not links:
            raise ValueError("a flow needs at least one link")
        done = Event(self.env)
        if nbytes == 0:
            done.succeed(0.0)
            return done
        self._advance()
        flow = Flow(tuple(links), nbytes, done, label, self.env._now)
        self._flows[flow] = None
        for link in flow.links:
            link.flows[flow] = None
        self._reallocate_and_schedule()
        return done

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _is_done(flow: Flow) -> bool:
        """Finished within float tolerance (absolute or relative)."""
        return flow.remaining <= 1e-6 + 1e-12 * flow.nbytes

    def _advance(self) -> None:
        """Charge elapsed progress to every active flow."""
        now = self.env._now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        for flow in self._flows:
            flow.remaining -= dt * flow.rate
            if flow.remaining < 0:
                flow.remaining = 0.0

    def _reallocate_and_schedule(self) -> None:
        """Progressive filling, then schedule the earliest completion."""
        self._generation += 1
        if not self._flows:
            return

        # Fast path: a lone flow gets the capacity of its tightest link
        # (progressive filling with one flow divides each capacity by 1,
        # which is exact, then takes the first strict minimum — min()
        # over the links in order is the identical result).
        if len(self._flows) == 1:
            (flow,) = self._flows
            flow.rate = rate = min(link.capacity for link in flow.links)
            eta = flow.remaining / rate
            gen = self._generation
            wakeup = self.env.timeout(eta if eta > 1e-9 else 1e-9)
            wakeup.callbacks.append(lambda _ev, gen=gen: self._on_wakeup(gen))
            return

        # -- max-min rates (progressive filling on link scratch slots) ------------
        # Residual capacity and unassigned-flow counts live directly on
        # the Link objects for the duration of one epoch.  Bottleneck
        # candidates are scanned in first-encounter order and members in
        # ``link.flows`` order; both match the order of ``self._flows``
        # exactly as the old index-list build did, so rates come out in
        # the identical sequence of float operations.
        flows_dict = self._flows
        epoch = self._epoch = self._epoch + 1
        links: List[Link] = []
        for flow in flows_dict:
            for link in flow.links:
                if link._epoch != epoch:
                    link._epoch = epoch
                    link._residual = link.capacity
                    link._count = 1
                    links.append(link)
                else:
                    link._count += 1

        remaining = len(flows_dict)
        inf = float("inf")
        while remaining:
            # Fair share on each link among its unassigned flows.
            best_share = inf
            bottleneck = None
            for link in links:
                count = link._count
                if count == 0:
                    continue
                share = link._residual / count
                if share < best_share:
                    best_share, bottleneck = share, link
            if bottleneck is None:  # pragma: no cover - defensive
                break
            for flow in bottleneck.flows:
                if flow._epoch == epoch:
                    continue  # already assigned this pass
                flow._epoch = epoch
                flow.rate = best_share
                remaining -= 1
                for link in flow.links:
                    left = link._residual - best_share
                    link._residual = left if left > 0.0 else 0.0
                    link._count -= 1

        # -- next completion ------------------------------------------------------
        gen = self._generation
        soonest = inf
        for f in flows_dict:
            rate = f.rate
            if rate > 0:
                eta = f.remaining / rate
                if eta < soonest:
                    soonest = eta
        if soonest == inf:  # pragma: no cover - defensive
            return
        # Clamp below: a residual so small that now+soonest == now in
        # float would wake us at the same timestamp with zero progress,
        # spinning forever.  One nanosecond is far below any modelled
        # effect and guarantees the clock moves.
        wakeup = self.env.timeout(max(soonest, 1e-9))
        wakeup.callbacks.append(lambda _ev, gen=gen: self._on_wakeup(gen))

    def _on_wakeup(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded
        self._advance()
        finished = [
            f for f in self._flows if f.remaining <= 1e-6 + 1e-12 * f.nbytes
        ]
        for flow in finished:
            del self._flows[flow]
            for link in flow.links:
                link.flows.pop(flow, None)
            self.completed_flows += 1
            self.bytes_transferred += flow.nbytes
            flow.done.succeed(self.env.now - flow.start_time)
        self._reallocate_and_schedule()
