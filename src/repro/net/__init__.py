"""Flow-level network substrate (max-min fair sharing)."""

from .flow import Flow, FlowNetwork, Link
from .topology import GBIT, HostNic, Topology

__all__ = ["Flow", "FlowNetwork", "GBIT", "HostNic", "Link", "Topology"]
