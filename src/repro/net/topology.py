"""Cluster network topology: full-duplex NICs behind a non-blocking switch.

The paper's testbed is 1 Gb/s Ethernet through one switch; the switch
fabric is not the bottleneck, so a transfer contends only on the source
NIC's egress and the destination NIC's ingress.  Same-host transfers
(VM to VM over the Xen bridge) ride a faster loopback link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict

from ..sim.events import Event
from .flow import FlowNetwork, Link

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Environment

__all__ = ["HostNic", "Topology", "GBIT"]

#: 1 Gb/s in bytes per second.
GBIT = 125_000_000.0


@dataclass
class HostNic:
    """Per-host link trio: egress, ingress, loopback."""

    host: str
    tx: Link
    rx: Link
    loopback: Link


class Topology:
    """Registry of host NICs plus the shared flow scheduler."""

    def __init__(
        self,
        env: "Environment",
        nic_bandwidth: float = GBIT,
        loopback_bandwidth: float = 4 * GBIT,
    ):
        if nic_bandwidth <= 0 or loopback_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.env = env
        self.network = FlowNetwork(env)
        self.nic_bandwidth = nic_bandwidth
        self.loopback_bandwidth = loopback_bandwidth
        self._nics: Dict[str, HostNic] = {}

    def add_host(self, host: str) -> HostNic:
        """Register a host; idempotent."""
        nic = self._nics.get(host)
        if nic is None:
            nic = HostNic(
                host=host,
                tx=Link(f"{host}.tx", self.nic_bandwidth),
                rx=Link(f"{host}.rx", self.nic_bandwidth),
                loopback=Link(f"{host}.lo", self.loopback_bandwidth),
            )
            self._nics[host] = nic
        return nic

    def nic(self, host: str) -> HostNic:
        try:
            return self._nics[host]
        except KeyError:
            raise KeyError(f"host {host!r} not registered") from None

    def transfer(self, src: str, dst: str, nbytes: float, label: Any = None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; fires on completion.

        Same-host transfers use the loopback link only (Xen bridge);
        cross-host transfers occupy src egress + dst ingress.
        """
        if src == dst:
            links = [self.nic(src).loopback]
        else:
            links = [self.nic(src).tx, self.nic(dst).rx]
        return self.network.transfer(links, nbytes, label=label)
