"""``python -m repro`` — run a paper experiment."""

import sys

from .cli import main

sys.exit(main())
