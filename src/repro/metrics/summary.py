"""Plain-text tables and series for the experiment harness output.

Every benchmark prints the rows/series of its paper table or figure in
a uniform ASCII format so ``bench_output.txt`` doubles as the
reproduction record.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    floatfmt: str = ".1f",
) -> str:
    """Render a fixed-width table."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    for idx, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"format_table: row {idx} has {len(row)} cell(s) but "
                f"there are {len(headers)} header(s): {list(row)!r}"
            )
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[Sequence[Any]], floatfmt: str = ".2f"
) -> str:
    """Render an (x, y) series one point per line."""
    lines = [f"series: {name}"]
    for point in points:
        lines.append(
            "  " + "  ".join(
                format(v, floatfmt) if isinstance(v, float) else str(v)
                for v in point
            )
        )
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Dict,
    title: Optional[str] = None,
    floatfmt: str = ".1f",
) -> str:
    """Render a labelled 2-D matrix keyed by (row, col)."""
    headers = [""] + list(col_labels)
    rows: List[List[Any]] = []
    for r in row_labels:
        rows.append([r] + [values.get((r, c), "") for c in col_labels])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)
