"""Deterministic SLO percentiles (nearest-rank) for latency reporting.

The multi-job payloads report per-tenant p50/p95/p99 job latency.
Nearest-rank is used deliberately: every reported percentile is an
*observed* sample (no interpolation), so the numbers canonicalise into
golden digests without float-interpolation jitter and stay meaningful
at the small sample counts a simulated arrival stream produces.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

__all__ = ["percentile", "percentiles"]

DEFAULT_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-th percentile of ``values``.

    ``q`` is in [0, 100].  The result is always one of the input
    samples; ``q=0`` is the minimum and ``q=100`` the maximum.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def percentiles(
    values: Sequence[float], qs: Sequence[float] = DEFAULT_QUANTILES
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., ...}`` for the requested quantiles.

    Keys render integers without a trailing ``.0`` (``p99`` not
    ``p99.0``) so the payload stays tidy in JSON.
    """
    out: Dict[str, float] = {}
    for q in qs:
        label = f"p{int(q)}" if float(q).is_integer() else f"p{q}"
        out[label] = percentile(values, q)
    return out
