"""Timelines: progress curves and per-point comparisons (paper Fig. 4)."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ProgressTimeline"]


@dataclass(frozen=True)
class ProgressTimeline:
    """A monotone (time, fraction-complete) curve."""

    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def of(cls, points: Sequence[Tuple[float, float]]) -> "ProgressTimeline":
        pts = sorted((float(t), float(f)) for t, f in points)
        for (_, f1), (_, f2) in zip(pts, pts[1:]):
            if f2 < f1:
                raise ValueError("progress must be monotone")
        return cls(tuple(pts))

    @property
    def empty(self) -> bool:
        return not self.points

    def time_at_fraction(self, fraction: float) -> float:
        """Earliest time at which progress reached ``fraction``."""
        if self.empty:
            raise ValueError("empty timeline")
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        for t, f in self.points:
            if f >= fraction:
                return t
        raise ValueError(f"progress never reached {fraction}")

    def fraction_at_time(self, time: float) -> float:
        """Progress at ``time`` (step interpolation)."""
        if self.empty:
            raise ValueError("empty timeline")
        times = [t for t, _ in self.points]
        idx = bisect_right(times, time)
        if idx == 0:
            return 0.0
        return self.points[idx - 1][1]

    def checkpoints(self, fractions: Sequence[float]) -> List[Tuple[float, float]]:
        """(fraction, time) pairs for a set of progress checkpoints."""
        return [(f, self.time_at_fraction(f)) for f in fractions]
