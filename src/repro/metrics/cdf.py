"""Empirical CDFs (paper Fig. 3 reports I/O-throughput CDFs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Cdf"]


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution over samples."""

    samples: Tuple[float, ...]

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Cdf":
        return cls(tuple(sorted(float(s) for s in samples)))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def empty(self) -> bool:
        return not self.samples

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100]."""
        if self.empty:
            raise ValueError("empty CDF")
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        return float(np.percentile(self.samples, q))

    @property
    def mean(self) -> float:
        if self.empty:
            raise ValueError("empty CDF")
        return float(np.mean(self.samples))

    @property
    def maximum(self) -> float:
        if self.empty:
            raise ValueError("empty CDF")
        return self.samples[-1]

    @property
    def minimum(self) -> float:
        if self.empty:
            raise ValueError("empty CDF")
        return self.samples[0]

    def prob_at_most(self, x: float) -> float:
        """P(X <= x)."""
        if self.empty:
            raise ValueError("empty CDF")
        return float(np.searchsorted(self.samples, x, side="right")) / len(self)

    def points(self, n: int = 50) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs for plotting/printing."""
        if self.empty:
            return []
        n = min(n, len(self.samples))
        idx = np.linspace(0, len(self.samples) - 1, n).astype(int)
        return [
            (self.samples[i], (i + 1) / len(self.samples)) for i in idx
        ]
