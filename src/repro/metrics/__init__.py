"""Measurement helpers: CDFs, timelines, table rendering."""

from .cdf import Cdf
from .slo import percentile, percentiles
from .summary import format_matrix, format_series, format_table
from .timeline import ProgressTimeline

__all__ = [
    "Cdf",
    "ProgressTimeline",
    "format_matrix",
    "format_series",
    "format_table",
    "percentile",
    "percentiles",
]
