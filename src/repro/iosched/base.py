"""Common machinery for block I/O schedulers (elevators).

Every Linux 2.6 elevator performs the same two base operations the paper
recounts — *merging* adjacent requests and *sorting* pending requests —
and differs in its arbitration policy.  This module provides:

* :class:`DispatchDecision` — what a scheduler tells the device to do;
* :class:`SortedRequestList` — an LBA-sorted pending queue with the
  one-way-elevator lookup the deadline/AS/CFQ schedulers need;
* :class:`IOScheduler` — the abstract base handling front/back merge
  hash lookups (the kernel's ``elv_rqhash``/rbtree equivalent) and the
  drain protocol used when hot-switching elevators.
"""

from __future__ import annotations

import abc
from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterator, List, Optional

from ..disk.request import BlockRequest

__all__ = [
    "DEFAULT_MAX_SECTORS",
    "DispatchDecision",
    "IOScheduler",
    "SortedRequestList",
]

#: Kernel default ``max_sectors_kb=512`` → 1024 sectors per request.
DEFAULT_MAX_SECTORS = 1024


class DispatchDecision:
    """Answer to "what should the disk do now?".

    Exactly one interpretation applies:

    * ``request`` set — dispatch it to the platter;
    * ``wait_until`` set — hold the disk idle until that time unless a
      new request arrives first (anticipation / CFQ slice idling);
    * neither — the scheduler is empty; sleep until an arrival.

    A plain slotted class (not a dataclass): one is allocated per
    dispatch-loop iteration, which makes construction cost visible.
    """

    __slots__ = ("request", "wait_until")

    def __init__(self, request: Optional[BlockRequest] = None,
                 wait_until: Optional[float] = None):
        self.request = request
        self.wait_until = wait_until

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DispatchDecision(request={self.request!r}, "
                f"wait_until={self.wait_until!r})")

    @property
    def idle(self) -> bool:
        return self.request is None and self.wait_until is None


class SortedRequestList:
    """Pending requests kept in ascending LBA order.

    Supports the one-way elevator scan: ``first_at_or_after(lba)`` finds
    the next request in the sweep direction, wrapping to the lowest LBA
    when the sweep passes the end (exactly the deadline scheduler's
    behaviour).
    """

    def __init__(self) -> None:
        self._keys: List[tuple] = []  # (lba, rid) for stable ordering
        self._reqs: Dict[tuple, BlockRequest] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[BlockRequest]:
        return (self._reqs[k] for k in self._keys)

    def __contains__(self, request: BlockRequest) -> bool:
        return (request.lba, request.rid) in self._reqs

    def add(self, request: BlockRequest) -> None:
        key = (request.lba, request.rid)
        if key in self._reqs:
            raise ValueError(f"{request!r} already queued")
        insort(self._keys, key)
        self._reqs[key] = request

    def remove(self, request: BlockRequest) -> None:
        key = (request.lba, request.rid)
        if key not in self._reqs:
            raise KeyError(f"{request!r} not queued")
        idx = bisect_left(self._keys, key)
        del self._keys[idx]
        del self._reqs[key]

    def reposition(self, request: BlockRequest, old_lba: int) -> None:
        """Re-sort ``request`` after a front merge changed its LBA."""
        old_key = (old_lba, request.rid)
        idx = bisect_left(self._keys, old_key)
        if idx >= len(self._keys) or self._keys[idx] != old_key:
            raise KeyError(f"{request!r} not queued at lba={old_lba}")
        del self._keys[idx]
        del self._reqs[old_key]
        self.add(request)

    def first(self) -> Optional[BlockRequest]:
        return self._reqs[self._keys[0]] if self._keys else None

    def first_at_or_after(self, lba: int, wrap: bool = True) -> Optional[BlockRequest]:
        """Next request at or beyond ``lba`` (wrapping to the start)."""
        if not self._keys:
            return None
        idx = bisect_left(self._keys, (lba, -1))
        if idx < len(self._keys):
            return self._reqs[self._keys[idx]]
        return self._reqs[self._keys[0]] if wrap else None

    def closest_to(self, lba: int) -> Optional[BlockRequest]:
        """Request whose start LBA is nearest ``lba`` (either side)."""
        if not self._keys:
            return None
        idx = bisect_right(self._keys, (lba, float("inf")))
        candidates = []
        if idx < len(self._keys):
            candidates.append(self._keys[idx])
        if idx > 0:
            candidates.append(self._keys[idx - 1])
        best = min(candidates, key=lambda k: abs(k[0] - lba))
        return self._reqs[best]


class IOScheduler(abc.ABC):
    """Abstract elevator.

    The base class owns the merge hash (front and back maps keyed by
    boundary LBA) and statistics; subclasses implement queueing policy
    via the ``_enqueue`` / ``_remove`` / ``_select`` hooks.
    """

    #: Registry name, e.g. ``"cfq"``; set by subclasses.
    name: str = "abstract"

    def __init__(self, max_sectors: int = DEFAULT_MAX_SECTORS):
        if max_sectors <= 0:
            raise ValueError("max_sectors must be positive")
        self.max_sectors = max_sectors
        #: end_lba -> request, for back merges.
        self._back_map: Dict[int, BlockRequest] = {}
        #: lba -> request, for front merges.
        self._front_map: Dict[int, BlockRequest] = {}
        self.queued = 0
        self.total_added = 0
        self.total_merged = 0
        self.total_dispatched = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.__class__.__name__} queued={self.queued}>"

    # -- public API ----------------------------------------------------------
    def add_request(self, request: BlockRequest, now: float) -> bool:
        """Queue ``request``; returns True if it merged into another."""
        self.total_added += 1
        back_map = self._back_map
        front_map = self._front_map
        end_lba = request.lba + request.nsectors
        target = back_map.get(request.lba)
        if target is not None and target.can_back_merge(request, self.max_sectors):
            del back_map[target.end_lba]
            target.back_merge(request)
            back_map[target.end_lba] = target
            self.total_merged += 1
            self._on_merged(target, now)
            return True

        target = front_map.get(end_lba)
        if target is not None and target.can_front_merge(request, self.max_sectors):
            old_lba = target.lba
            del front_map[target.lba]
            target.front_merge(request)
            front_map[target.lba] = target
            self.total_merged += 1
            self._repositioned(target, old_lba)
            self._on_merged(target, now)
            return True

        back_map[end_lba] = request
        front_map[request.lba] = request
        self.queued += 1
        self._enqueue(request, now)
        return False

    def next_request(self, now: float) -> DispatchDecision:
        """Pick the next action for the device."""
        decision = self._select(now)
        if decision.request is not None:
            self._forget(decision.request)
            self.queued -= 1
            self.total_dispatched += 1
        return decision

    def on_complete(self, request: BlockRequest, now: float) -> None:
        """Hook invoked by the device when the platter finishes a request."""

    def drain(self) -> List[BlockRequest]:
        """Remove and return every queued request (for elevator switch)."""
        drained = self._drain_all()
        self._back_map.clear()
        self._front_map.clear()
        self.queued = 0
        return drained

    @property
    def pending(self) -> int:
        return self.queued

    # -- subclass hooks --------------------------------------------------------
    @abc.abstractmethod
    def _enqueue(self, request: BlockRequest, now: float) -> None:
        """Insert a brand-new (unmerged) request into policy structures."""

    @abc.abstractmethod
    def _select(self, now: float) -> DispatchDecision:
        """Policy decision; must remove the returned request internally."""

    @abc.abstractmethod
    def _drain_all(self) -> List[BlockRequest]:
        """Remove and return all queued requests from policy structures."""

    def _repositioned(self, request: BlockRequest, old_lba: int) -> None:
        """A front merge moved ``request``'s start; fix sorted structures."""

    def _on_merged(self, request: BlockRequest, now: float) -> None:
        """A request grew by merging (e.g. restart anticipation timers)."""

    # -- helpers -----------------------------------------------------------------
    def _forget(self, request: BlockRequest) -> None:
        """Drop a request from the merge maps once dispatched."""
        end_lba = request.lba + request.nsectors
        if self._back_map.get(end_lba) is request:
            del self._back_map[end_lba]
        if self._front_map.get(request.lba) is request:
            del self._front_map[request.lba]
