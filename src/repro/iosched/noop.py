"""The noop elevator: merging only, strict FIFO dispatch.

Noop performs the base merging but no sorting and no arbitration.  With
several VMs streaming into disjoint disk regions, FIFO interleaving
forces a long seek on nearly every command — the mechanism behind the
catastrophic Noop-in-VMM column of the paper's Table I.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..disk.request import BlockRequest
from .base import DispatchDecision, IOScheduler

__all__ = ["NoopScheduler"]


class NoopScheduler(IOScheduler):
    """First-in, first-out with adjacent-request merging."""

    name = "noop"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._fifo: Deque[BlockRequest] = deque()

    def _enqueue(self, request: BlockRequest, now: float) -> None:
        self._fifo.append(request)

    def _select(self, now: float) -> DispatchDecision:
        if not self._fifo:
            return DispatchDecision()
        return DispatchDecision(request=self._fifo.popleft())

    def _drain_all(self) -> List[BlockRequest]:
        drained = list(self._fifo)
        self._fifo.clear()
        return drained
