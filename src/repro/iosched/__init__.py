"""Reimplementations of the Linux 2.6 block I/O schedulers.

Four elevators — noop, deadline, anticipatory and CFQ — matching the
set the paper evaluates in both the hypervisor and the guests, plus the
registry used to name them and the hot-switch support in
:mod:`repro.iosched.switching`.
"""

from .anticipatory import AnticipatoryParams, AnticipatoryScheduler, ProcessIoStats
from .base import DEFAULT_MAX_SECTORS, DispatchDecision, IOScheduler, SortedRequestList
from .cfq import CfqParams, CfqScheduler
from .deadline import DeadlineParams, DeadlineScheduler
from .noop import NoopScheduler
from .registry import (
    ABBREVIATIONS,
    SCHEDULER_NAMES,
    SCHEDULERS,
    abbrev,
    make_scheduler,
    resolve_name,
    scheduler_factory,
)

__all__ = [
    "ABBREVIATIONS",
    "AnticipatoryParams",
    "AnticipatoryScheduler",
    "CfqParams",
    "CfqScheduler",
    "DEFAULT_MAX_SECTORS",
    "DeadlineParams",
    "DeadlineScheduler",
    "DispatchDecision",
    "IOScheduler",
    "NoopScheduler",
    "ProcessIoStats",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "SortedRequestList",
    "abbrev",
    "make_scheduler",
    "resolve_name",
    "scheduler_factory",
]
