"""Scheduler registry: names, abbreviations, and factories.

The paper abbreviates the four schedulers CFQ/DL/AS/NP and writes a
scheduler *pair* as (VMM-level, VM-level).  This module is the single
source of truth for those names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from .anticipatory import AnticipatoryScheduler
from .base import IOScheduler
from .cfq import CfqScheduler
from .deadline import DeadlineScheduler
from .noop import NoopScheduler

__all__ = [
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "ABBREVIATIONS",
    "UnknownSchedulerError",
    "abbrev",
    "make_scheduler",
    "resolve_name",
]


class UnknownSchedulerError(KeyError, ValueError):
    """An unregistered scheduler name.

    Subclasses both ``KeyError`` (the registry's historical contract —
    lookups raise it) and ``ValueError`` (what input-validation layers
    like the CLI catch), so neither kind of caller needs special
    casing.  ``str()`` returns the plain message rather than
    ``KeyError``'s quoted repr.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else ""

SCHEDULERS: Dict[str, Type[IOScheduler]] = {
    NoopScheduler.name: NoopScheduler,
    DeadlineScheduler.name: DeadlineScheduler,
    AnticipatoryScheduler.name: AnticipatoryScheduler,
    CfqScheduler.name: CfqScheduler,
}

#: Canonical order used throughout the paper's tables.
SCHEDULER_NAMES: List[str] = ["cfq", "deadline", "anticipatory", "noop"]

ABBREVIATIONS: Dict[str, str] = {
    "cfq": "CFQ",
    "deadline": "DL",
    "anticipatory": "AS",
    "noop": "NP",
}

_ALIASES: Dict[str, str] = {
    "cfq": "cfq",
    "deadline": "deadline",
    "dl": "deadline",
    "anticipatory": "anticipatory",
    "as": "anticipatory",
    "noop": "noop",
    "np": "noop",
    "none": "noop",
}


def resolve_name(name: str) -> str:
    """Map a name or abbreviation (case-insensitive) to the canonical name."""
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise UnknownSchedulerError(
            f"unknown scheduler {name!r}; choose from {sorted(set(_ALIASES))}"
        )
    return canonical


def abbrev(name: str) -> str:
    """Paper-style abbreviation (CFQ/DL/AS/NP) for a scheduler name."""
    return ABBREVIATIONS[resolve_name(name)]


def make_scheduler(name: str, **kwargs) -> IOScheduler:
    """Instantiate a scheduler by (possibly abbreviated) name."""
    return SCHEDULERS[resolve_name(name)](**kwargs)


def scheduler_factory(name: str, **kwargs) -> Callable[[], IOScheduler]:
    """A zero-argument factory, handy for device construction."""
    canonical = resolve_name(name)

    def factory() -> IOScheduler:
        return SCHEDULERS[canonical](**kwargs)

    return factory
