"""The Completely Fair Queueing (CFQ) elevator.

Each process gets its own LBA-sorted queue of synchronous requests and
the disk is handed to one process at a time for a *time slice*; within
a slice the owner's requests are served in elevator order, and when the
owner's queue runs dry CFQ *idles* briefly rather than seeking away
(like anticipation, but bounded by the slice).  Asynchronous writeback
shares one queue served between slices, with an anti-starvation bound.

Fairness across VMs is CFQ's selling point at the hypervisor level —
the paper's Fig. 3 shows (CFQ, CFQ) giving the most even per-VM
throughput while (Anticipatory, Deadline) gives the best aggregate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from ..disk.request import BlockRequest, IoOp
from .base import DispatchDecision, IOScheduler, SortedRequestList

__all__ = ["CfqScheduler", "CfqParams"]


@dataclass(frozen=True)
class CfqParams:
    """Tunables mirroring ``/sys/block/*/queue/iosched`` for cfq."""

    #: Sync time slice per process, seconds.
    slice_sync: float = 0.100
    #: Slice for the shared async queue, seconds.
    slice_async: float = 0.040
    #: Idle window at the end of an empty sync queue, seconds.
    slice_idle: float = 0.008
    #: Serve async once its oldest request waits longer than this.
    async_max_wait: float = 0.300


class CfqScheduler(IOScheduler):
    """Per-process sync queues with time slices and slice idling."""

    name = "cfq"

    def __init__(self, params: Optional[CfqParams] = None, **kwargs):
        super().__init__(**kwargs)
        self.params = params or CfqParams()
        self._sync_queues: Dict[Any, SortedRequestList] = {}
        self._rr: Deque[Any] = deque()  # round-robin order of sync pids
        self._async: SortedRequestList = SortedRequestList()
        # Arrival-ordered by rid; a dict gives O(1) removal where a
        # deque's .remove() scans the whole FIFO per dispatch.
        self._async_fifo: Dict[int, BlockRequest] = {}
        self._active: Optional[Any] = None  # pid or the _ASYNC sentinel
        self._slice_end: float = 0.0
        self._idle_until: Optional[float] = None
        self._last_end = 0  # elevator position within the active queue
        #: Diagnostics.
        self.slices_started = 0
        self.idle_grants = 0

    _ASYNC = object()

    # -- hooks ----------------------------------------------------------------
    def _enqueue(self, request: BlockRequest, now: float) -> None:
        request.deadline = now  # arrival time, for async starvation checks
        if request.sync:
            pid = request.process_id
            queue = self._sync_queues.get(pid)
            if queue is None:
                queue = SortedRequestList()
                self._sync_queues[pid] = queue
                self._rr.append(pid)
            queue.add(request)
        else:
            self._async.add(request)
            self._async_fifo[request.rid] = request

    def _repositioned(self, request: BlockRequest, old_lba: int) -> None:
        if request.sync:
            self._sync_queues[request.process_id].reposition(request, old_lba)
        else:
            self._async.reposition(request, old_lba)

    def _drain_all(self) -> List[BlockRequest]:
        drained: List[BlockRequest] = []
        for queue in self._sync_queues.values():
            drained.extend(queue)
        drained.extend(self._async_fifo.values())
        self._sync_queues.clear()
        self._rr.clear()
        self._async = SortedRequestList()
        self._async_fifo.clear()
        self._active = None
        self._idle_until = None
        return drained

    def _select(self, now: float) -> DispatchDecision:
        if self.queued == 0:
            self._active = None
            self._idle_until = None
            return DispatchDecision()

        # Anti-starvation: force an async slice when writeback has waited
        # too long, regardless of pending sync work.
        if (self._active is not self._ASYNC and self._async_fifo
                and self._async_starving(now)):
            self._start_slice(self._ASYNC, now, self.params.slice_async)

        if self._active is not None:
            decision = self._serve_active(now)
            if decision is not None:
                return decision

        # Pick the next queue: sync processes round-robin, else async.
        pid = self._next_sync_pid()
        if pid is not None:
            self._start_slice(pid, now, self.params.slice_sync)
        elif len(self._async):
            self._start_slice(self._ASYNC, now, self.params.slice_async)
        else:  # pragma: no cover - queued>0 guarantees one branch above
            return DispatchDecision()
        decision = self._serve_active(now)
        assert decision is not None
        return decision

    # -- internals ---------------------------------------------------------------
    def _async_starving(self, now: float) -> bool:
        if not self._async_fifo:
            return False
        oldest = next(iter(self._async_fifo.values()))
        return oldest.deadline is not None and (
            now - oldest.deadline >= self.params.async_max_wait
        )

    def _start_slice(self, owner: Any, now: float, length: float) -> None:
        self._active = owner
        self._slice_end = now + length
        self._idle_until = None
        self.slices_started += 1

    def _next_sync_pid(self) -> Optional[Any]:
        """Rotate to the next process with pending sync requests."""
        rr = self._rr
        queues = self._sync_queues
        for _ in range(len(rr)):
            pid = rr[0]
            rr.rotate(-1)
            queue = queues.get(pid)
            if queue is not None and len(queue._keys):
                return pid
        return None

    def _serve_active(self, now: float) -> Optional[DispatchDecision]:
        """Dispatch from the active slice, idle, or expire it (→ None)."""
        if self._active is self._ASYNC:
            if now >= self._slice_end or not len(self._async):
                self._active = None
                return None
            request = self._async.first_at_or_after(self._last_end, wrap=True)
            assert request is not None
            self._async.remove(request)
            del self._async_fifo[request.rid]
            self._last_end = request.end_lba
            return DispatchDecision(request=request)

        pid = self._active
        queue = self._sync_queues.get(pid)
        if now >= self._slice_end:
            self._active = None
            self._idle_until = None
            return None
        if queue is not None and len(queue._keys):
            self._idle_until = None
            request = queue.first_at_or_after(self._last_end, wrap=True)
            assert request is not None
            queue.remove(request)
            self._last_end = request.end_lba
            return DispatchDecision(request=request)

        # Owner's queue empty: idle briefly in case it sends more.
        if self.params.slice_idle <= 0:
            self._active = None
            return None
        if self._idle_until is None:
            self._idle_until = min(self._slice_end, now + self.params.slice_idle)
            self.idle_grants += 1
        if now >= self._idle_until:
            self._active = None
            self._idle_until = None
            return None
        return DispatchDecision(wait_until=self._idle_until)
