"""The deadline elevator.

Requests are kept in two LBA-sorted trees (reads/writes) plus two FIFOs
carrying expiry deadlines (reads 500 ms, writes 5 s by default).  The
scheduler dispatches batches in ascending-LBA elevator order, preferring
reads, jumping to the FIFO head when a deadline has expired, and bounding
write starvation.

Deadline has no notion of process identity and never idles the disk —
which is precisely why it suffers from *deceptive idleness* under
multi-VM sync-read workloads (the elevator seeks away to another VM's
region the instant the current VM's read completes), the behaviour the
anticipatory scheduler was invented to fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..disk.request import BlockRequest, IoOp
from .base import DispatchDecision, IOScheduler, SortedRequestList

__all__ = ["DeadlineScheduler", "DeadlineParams"]


@dataclass(frozen=True)
class DeadlineParams:
    """Tunables mirroring ``/sys/block/*/queue/iosched`` for deadline."""

    read_expire: float = 0.5
    write_expire: float = 5.0
    #: Requests dispatched per batch before re-checking FIFOs.
    fifo_batch: int = 16
    #: Batches of reads allowed while writes wait.
    writes_starved: int = 2


class DeadlineScheduler(IOScheduler):
    """Two sorted queues + expiry FIFOs + bounded write starvation."""

    name = "deadline"

    def __init__(self, params: Optional[DeadlineParams] = None, **kwargs):
        super().__init__(**kwargs)
        self.params = params or DeadlineParams()
        self._sorted: Dict[IoOp, SortedRequestList] = {
            IoOp.READ: SortedRequestList(),
            IoOp.WRITE: SortedRequestList(),
        }
        # Arrival-ordered by rid; a plain dict gives O(1) removal where a
        # deque's .remove() scans the whole FIFO per dispatch.
        self._fifo: Dict[IoOp, Dict[int, BlockRequest]] = {
            IoOp.READ: {},
            IoOp.WRITE: {},
        }
        #: End LBA of the last dispatched request (elevator position).
        self._last_end = 0
        self._batch_dir: Optional[IoOp] = None
        self._batch_left = 0
        self._starved = 0

    # -- hooks -----------------------------------------------------------------
    def _enqueue(self, request: BlockRequest, now: float) -> None:
        expire = (
            self.params.read_expire
            if request.op is IoOp.READ
            else self.params.write_expire
        )
        request.deadline = now + expire
        self._sorted[request.op].add(request)
        self._fifo[request.op][request.rid] = request

    def _repositioned(self, request: BlockRequest, old_lba: int) -> None:
        self._sorted[request.op].reposition(request, old_lba)

    def _drain_all(self) -> List[BlockRequest]:
        drained: List[BlockRequest] = []
        for op in (IoOp.READ, IoOp.WRITE):
            drained.extend(self._fifo[op].values())
            self._fifo[op].clear()
            self._sorted[op] = SortedRequestList()
        self._batch_dir = None
        self._batch_left = 0
        return drained

    def _select(self, now: float) -> DispatchDecision:
        reads = self._sorted[IoOp.READ]
        writes = self._sorted[IoOp.WRITE]
        if not reads and not writes:
            return DispatchDecision()

        # Continue the current batch in elevator order if possible.
        if self._batch_left > 0 and self._batch_dir is not None:
            queue = self._sorted[self._batch_dir]
            nxt = queue.first_at_or_after(self._last_end, wrap=False)
            if nxt is not None:
                return self._dispatch(nxt)

        # Start a new batch: prefer reads, bounded by write starvation.
        if reads:
            if writes and self._starved >= self.params.writes_starved:
                direction = IoOp.WRITE
            else:
                direction = IoOp.READ
        else:
            direction = IoOp.WRITE

        if direction is IoOp.READ and writes:
            self._starved += 1
        if direction is IoOp.WRITE:
            self._starved = 0

        queue = self._sorted[direction]
        fifo = self._fifo[direction]
        head = next(iter(fifo.values()))
        if head.deadline is not None and head.deadline <= now:
            # Expired: jump the elevator to the oldest request.
            target = head
        else:
            target = queue.first_at_or_after(self._last_end, wrap=True)
        assert target is not None
        self._batch_dir = direction
        self._batch_left = self.params.fifo_batch
        return self._dispatch(target)

    # -- internals ---------------------------------------------------------------
    def _dispatch(self, request: BlockRequest) -> DispatchDecision:
        self._sorted[request.op].remove(request)
        del self._fifo[request.op][request.rid]
        self._last_end = request.end_lba
        self._batch_left -= 1
        return DispatchDecision(request=request)
