"""The anticipatory elevator.

A one-way elevator with *time-based* read/write batches (the kernel's
``read_batch_expire``/``write_batch_expire``) plus *anticipation*:
after a synchronous read from process *p* completes, the disk is held
idle for a short window in the expectation that *p* will immediately
issue another nearby request — curing the deceptive-idleness problem
that makes a pure elevator seek away between the sequential reads of a
streaming process.

Reads get long batches (500 ms) and writes short ones (125 ms), which
is why AS shines on read-dominated phases and yields ground on
write-heavy ones — exactly the per-phase asymmetry the paper's
meta-scheduler exploits.

Per-process think-time statistics gate the anticipation (a process
whose historical think time exceeds the window is not worth waiting
for), mirroring the kernel's ``as_io_context`` heuristics.  These
statistics are exactly the state lost on an elevator switch, one
source of the paper's non-commutative switching costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from ..disk.request import BlockRequest, IoOp
from .base import DispatchDecision, IOScheduler, SortedRequestList

__all__ = ["AnticipatoryScheduler", "AnticipatoryParams", "ProcessIoStats"]


@dataclass(frozen=True)
class AnticipatoryParams:
    """Tunables mirroring the kernel AS defaults (in seconds)."""

    #: Maximum time to hold the disk for the anticipated process.
    antic_expire: float = 0.006
    #: FIFO expiry for reads / writes.
    read_expire: float = 0.125
    write_expire: float = 0.250
    #: Time-based batch lengths.
    read_batch_expire: float = 0.500
    write_batch_expire: float = 0.125
    #: Anticipate only processes whose mean think time stays below this.
    max_think_time: float = 0.006
    #: EMA weight for think-time updates.
    think_alpha: float = 0.25
    #: A queued request this close (sectors) to the head is "close
    #: enough" that waiting for the anticipated process isn't worth it.
    close_sectors: int = 2048


@dataclass
class ProcessIoStats:
    """Per-process history driving the anticipation decision."""

    mean_think_time: float = 0.0
    samples: int = 0
    last_completion: Optional[float] = None

    def record_think_time(self, value: float, alpha: float) -> None:
        if self.samples == 0:
            self.mean_think_time = value
        else:
            self.mean_think_time = (1 - alpha) * self.mean_think_time + alpha * value
        self.samples += 1


class AnticipatoryScheduler(IOScheduler):
    """Time-batched elevator with sync-read anticipation."""

    name = "anticipatory"

    def __init__(self, params: Optional[AnticipatoryParams] = None, **kwargs):
        super().__init__(**kwargs)
        self.params = params or AnticipatoryParams()
        self._sorted: Dict[IoOp, SortedRequestList] = {
            IoOp.READ: SortedRequestList(),
            IoOp.WRITE: SortedRequestList(),
        }
        self._fifo: Dict[IoOp, Deque[BlockRequest]] = {
            IoOp.READ: deque(),
            IoOp.WRITE: deque(),
        }
        self._last_end = 0
        self._batch_dir: Optional[IoOp] = None
        self._batch_until: float = 0.0
        self._proc_stats: Dict[Any, ProcessIoStats] = {}
        self._antic_proc: Optional[Any] = None
        self._antic_until: float = -1.0
        #: Diagnostics: how often anticipation paid off / timed out.
        self.antic_hits = 0
        self.antic_timeouts = 0

    # -- stats ------------------------------------------------------------------
    def _stats_for(self, pid: Any) -> ProcessIoStats:
        stats = self._proc_stats.get(pid)
        if stats is None:
            stats = ProcessIoStats()
            self._proc_stats[pid] = stats
        return stats

    def _worth_anticipating(self, pid: Any) -> bool:
        stats = self._proc_stats.get(pid)
        if stats is None or stats.samples == 0:
            return True  # no history: give the process the benefit
        return stats.mean_think_time <= self.params.max_think_time

    # -- hooks ------------------------------------------------------------------
    def _enqueue(self, request: BlockRequest, now: float) -> None:
        expire = (
            self.params.read_expire
            if request.op is IoOp.READ
            else self.params.write_expire
        )
        request.deadline = now + expire
        self._sorted[request.op].add(request)
        self._fifo[request.op].append(request)
        self._note_arrival(request, now)

    def _repositioned(self, request: BlockRequest, old_lba: int) -> None:
        self._sorted[request.op].reposition(request, old_lba)

    def _on_merged(self, request: BlockRequest, now: float) -> None:
        self._note_arrival(request, now)

    def _note_arrival(self, request: BlockRequest, now: float) -> None:
        if not request.sync:
            return
        stats = self._stats_for(request.process_id)
        if stats.last_completion is not None:
            stats.record_think_time(
                max(0.0, now - stats.last_completion), self.params.think_alpha
            )
        if self._antic_proc == request.process_id and now < self._antic_until:
            self.antic_hits += 1
            # Anticipation succeeded; _select will now find this request.
            self._end_anticipation()

    def on_complete(self, request: BlockRequest, now: float) -> None:
        if request.op is IoOp.READ and request.sync:
            pid = request.process_id
            self._stats_for(pid).last_completion = now
            if self._worth_anticipating(pid):
                self._antic_proc = pid
                self._antic_until = now + self.params.antic_expire

    def _drain_all(self) -> List[BlockRequest]:
        self._end_anticipation()
        drained: List[BlockRequest] = []
        for op in (IoOp.READ, IoOp.WRITE):
            drained.extend(self._fifo[op])
            self._fifo[op].clear()
            self._sorted[op] = SortedRequestList()
        self._batch_dir = None
        # NOTE: _proc_stats survives a drain of *requests*, but a full
        # elevator switch constructs a new scheduler object, losing the
        # statistics — the cold-start component of the switch cost.
        return drained

    # -- selection ------------------------------------------------------------------
    def _select(self, now: float) -> DispatchDecision:
        reads = self._sorted[IoOp.READ]
        writes = self._sorted[IoOp.WRITE]
        if not reads and not writes:
            self._end_anticipation()
            return DispatchDecision()

        batch_live = self._batch_dir is not None and now < self._batch_until

        # Pressure valve: an expired write FIFO ends the read batch (the
        # kernel switches to a write batch once the oldest async request
        # has waited write_expire), bounding writeback starvation.
        write_pressure = self._fifo_expired(IoOp.WRITE, now)
        if write_pressure and self._batch_dir is IoOp.READ:
            batch_live = False

        # Anticipation: hold the disk for the process we just served.
        # It only applies inside (or at the start of) a read batch; an
        # unexpired write batch proceeds regardless, and once the read
        # batch has expired the anticipated process has had its run —
        # competitors (an expired FIFO or pending writes) take over.
        if self._antic_proc is not None:
            in_read_context = self._batch_dir is not IoOp.WRITE or not batch_live
            if now >= self._antic_until:
                if self._antic_until >= 0:
                    self.antic_timeouts += 1
                self._end_anticipation()
            elif not in_read_context:
                pass  # write batch unexpired: ignore the hold for now
            else:
                read_batch_over = not (
                    self._batch_dir is IoOp.READ and batch_live
                )
                competitors = writes or self._fifo_expired(IoOp.READ, now)
                if write_pressure or (read_batch_over and competitors):
                    self._end_anticipation()
                else:
                    mine = self._first_from(self._antic_proc)
                    if mine is not None:
                        self._end_anticipation()
                        return self._dispatch(mine)
                    if self._close_request_available():
                        # Something right next to the head is cheaper
                        # than waiting.
                        self._end_anticipation()
                    else:
                        return DispatchDecision(wait_until=self._antic_until)

        # Continue the current time batch in elevator order.
        if batch_live:
            queue = self._sorted[self._batch_dir]
            if len(queue):
                nxt = queue.first_at_or_after(self._last_end, wrap=False)
                if nxt is None:
                    nxt = queue.first()  # wrap the elevator
                return self._dispatch(nxt)
            if self._batch_dir is IoOp.WRITE and reads:
                pass  # write queue drained: fall through to reads
            elif self._batch_dir is IoOp.READ and writes and not reads:
                pass  # read queue drained: fall through to writes
            else:
                # Batch direction empty and nothing else: unreachable
                # because the queues are not both empty here.
                pass

        # Start a new batch, alternating directions when both classes
        # are waiting so writes get their share (500 ms reads / 125 ms
        # writes is the kernel's asymmetry).
        if reads and writes:
            direction = (
                IoOp.WRITE if self._batch_dir is IoOp.READ else IoOp.READ
            )
        elif reads:
            direction = IoOp.READ
        else:
            direction = IoOp.WRITE
        self._start_batch(direction, now)
        queue = self._sorted[direction]
        if self._fifo_expired(direction, now):
            target = self._fifo[direction][0]
        else:
            target = queue.first_at_or_after(self._last_end, wrap=True)
        assert target is not None
        return self._dispatch(target)

    # -- internals ----------------------------------------------------------------
    def _start_batch(self, direction: IoOp, now: float) -> None:
        self._batch_dir = direction
        length = (
            self.params.read_batch_expire
            if direction is IoOp.READ
            else self.params.write_batch_expire
        )
        self._batch_until = now + length

    def _dispatch(self, request: BlockRequest) -> DispatchDecision:
        self._sorted[request.op].remove(request)
        self._fifo[request.op].remove(request)
        self._last_end = request.end_lba
        return DispatchDecision(request=request)

    def _end_anticipation(self) -> None:
        self._antic_proc = None
        self._antic_until = -1.0

    def _first_from(self, pid: Any) -> Optional[BlockRequest]:
        """Best queued sync read from ``pid`` (nearest the elevator head)."""
        best = None
        best_dist = None
        for request in self._sorted[IoOp.READ]:
            if request.process_id != pid:
                continue
            dist = abs(request.lba - self._last_end)
            if best is None or dist < best_dist:
                best, best_dist = request, dist
        return best

    def _close_request_available(self) -> bool:
        """Is there a queued read right next to the head position?

        The kernel does not anticipate when the best candidate is close —
        serving it costs (almost) no seek, so waiting cannot win.
        """
        nearest = self._sorted[IoOp.READ].closest_to(self._last_end)
        return (
            nearest is not None
            and abs(nearest.lba - self._last_end) <= self.params.close_sectors
        )

    def _fifo_expired(self, op: IoOp, now: float) -> bool:
        fifo = self._fifo[op]
        return bool(fifo) and fifo[0].deadline is not None and fifo[0].deadline <= now

    def _deadline_pressure(self, now: float) -> bool:
        """True if any FIFO head has expired (anticipation must yield)."""
        return self._fifo_expired(IoOp.READ, now) or self._fifo_expired(IoOp.WRITE, now)
