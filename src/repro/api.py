"""The stable public facade: build a scenario, simulate it, sweep it.

Everything the examples and experiment kinds used to wire by hand —
``scaled_testbed`` → ``JobRunner`` → ``SweepRunner`` — is reachable
through three names:

* :class:`Scenario` — a declarative description of one simulated
  MapReduce experiment (workload, testbed shape, scheduler plan,
  optional faults);
* :func:`simulate` — run one scenario in-process and get a
  :class:`RunResult` (decoded job result + payload + event/wall counts);
* :func:`sweep` — run many ``(scenario, seed)`` combinations through
  the memoised parallel :class:`~repro.runner.sweep.SweepRunner`.

The facade is a thin veneer: a ``Scenario`` lowers to exactly the
:class:`~repro.runner.spec.RunSpec` the experiment suite has always
produced, so payloads and on-disk cache keys are bit-identical whether
a run comes from here, from ``repro.experiments``, or from the CLI.

The calibrated-testbed helpers (``scaled_testbed`` and friends) moved
here from ``repro.experiments.common``; the old module re-exports them
with a :class:`DeprecationWarning`.

Quickstart::

    from repro.api import Scenario, simulate

    sc = Scenario(workload="sort", scale=0.125, pair="ac")
    res = simulate(sc, seed=0)
    print(res.duration, res.events, res.wall_s)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .core.experiment import JobRunner, TestbedConfig
from .core.solution import Solution
from .ctrl.config import CtrlConfig
from .ctrl.policies import resolve_policy
from .disk.backend import UnknownStorageError, resolve_storage
from .faults.plan import FaultPlan
from .hdfs.namenode import NameNode
from .mapreduce.job import MB, JobConfig, JobSpec
from .mapreduce.jobtracker import MapReduceJob
from .mapreduce.multijob import JOB_SCHEDULERS, MultiJobConfig, SwitchPlan
from .mapreduce.phases import JobResult
from .net.topology import Topology
from .sim.core import Environment, finish_event_census, start_event_census
from .virt.cluster import ClusterConfig, VirtualCluster
from .virt.pagecache import PageCacheParams
from .virt.pair import DEFAULT_PAIR, SchedulerPair
from .workloads import benchmark
from .workloads.arrivals import DEFAULT_SIZE_MIX, ArrivalConfig, SizeClass

__all__ = [
    "ControlledScenario",
    "DEFAULT_SCALE",
    "JobAssembly",
    "MultiJobScenario",
    "PAPER_SEEDS",
    "RunResult",
    "Scenario",
    "UnknownStorageError",
    "assemble_cluster",
    "assemble_job",
    "default_seeds",
    "scaled_cluster",
    "scaled_job",
    "scaled_pagecache",
    "scaled_testbed",
    "simulate",
    "sweep",
    "validate_scale",
]


# -- the calibrated testbed (moved from repro.experiments.common) ---------------------
#
# All experiments run on one calibrated testbed matching the paper's:
# 4 hosts × 4 VMs, 1 TB SATA per host, 1 Gb/s NICs, Hadoop 0.19 slot
# layout.  Because a Python discrete-event simulation of the full 512 MB
# per-node dataset costs minutes per job run, experiments support a
# ``scale`` factor that shrinks every *data* quantity (input per node,
# block size, sort/shuffle buffers, page-cache sizes) by the same ratio —
# preserving the structure that drives the paper's effects (number of
# map waves, spill counts, cache-hit behaviour, dirty-throttle pressure)
# while cutting the event count.  ``scale=1.0`` is the paper's exact
# sizing; the default ``DEFAULT_SCALE`` is read from the ``REPRO_SCALE``
# environment variable (falling back to 0.25).


def validate_scale(value: float, source: str = "scale") -> float:
    """Check a data-size scale factor is usable; returns it unchanged."""
    if not 0 < value <= 1:
        raise ValueError(f"{source} must be in (0, 1], got {value}")
    return value


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "0.25")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    return validate_scale(value, source="REPRO_SCALE")


#: Global data-size scale for experiments (1.0 = paper-exact sizes).
DEFAULT_SCALE = _env_scale()

#: Seeds for the paper's "average of three consecutive runs".
PAPER_SEEDS: Tuple[int, ...] = (0, 1, 2)


def default_seeds(n: int = 3) -> Tuple[int, ...]:
    """The first ``n`` experiment seeds.

    Starts with the paper's three consecutive runs and keeps counting
    upward past them, so asking for more seeds than the paper used
    extends the set deterministically instead of silently truncating
    to three.
    """
    if n <= len(PAPER_SEEDS):
        return PAPER_SEEDS[:n]
    return PAPER_SEEDS + tuple(range(len(PAPER_SEEDS), n))


def scaled_pagecache(scale: float) -> PageCacheParams:
    """Guest page-cache sizing, scaled with the dataset."""
    return PageCacheParams(
        capacity_bytes=max(8 * MB, int(600 * MB * scale)),
        dirty_background_bytes=max(2 * MB, int(32 * MB * scale)),
        dirty_limit_bytes=max(4 * MB, int(128 * MB * scale)),
    )


def scaled_cluster(
    scale: float = DEFAULT_SCALE,
    hosts: int = 4,
    vms_per_host: int = 4,
    seed: int = 0,
    storage: str = "hdd",
    storage_overrides: Tuple[Tuple[int, str], ...] = (),
) -> ClusterConfig:
    """The paper's testbed shape with scaled guest memory sizing.

    ``storage`` names the per-host backend (``repro.disk.backend``
    registry); the name is carried as plain data and resolved at
    cluster build time, keeping this function spec-canonicalisation
    pure.
    """
    return ClusterConfig(
        hosts=hosts,
        vms_per_host=vms_per_host,
        storage=storage,
        storage_overrides=tuple(storage_overrides),
        pagecache=scaled_pagecache(scale),
        seed=seed,
    )


def scaled_job(
    spec: JobSpec,
    scale: float = DEFAULT_SCALE,
    bytes_per_vm: Optional[int] = None,
    **overrides,
) -> JobConfig:
    """Paper job sizing × ``scale``.

    Defaults keep the paper's 8 blocks per VM (4 map waves at 2 slots)
    whatever the scale, because the wave count — not the absolute bytes —
    controls the phase structure (paper Table II).
    """
    if bytes_per_vm is None:
        bytes_per_vm = int(512 * MB * scale)
    block_size = max(1 * MB, bytes_per_vm // 8)
    # Keep the input an exact multiple of the block size so the wave
    # count stays exactly 8/slots (a remainder byte would add a block).
    bytes_per_vm = block_size * max(1, bytes_per_vm // block_size)
    return JobConfig(
        spec=spec,
        bytes_per_vm=bytes_per_vm,
        block_size=block_size,
        sort_buffer_bytes=max(2 * MB, int(100 * MB * scale)),
        shuffle_buffer_bytes=max(2 * MB, int(128 * MB * scale)),
        **overrides,
    )


def scaled_testbed(
    spec: JobSpec,
    scale: float = DEFAULT_SCALE,
    hosts: int = 4,
    vms_per_host: int = 4,
    seeds: Sequence[int] = PAPER_SEEDS,
    n_phases: int = 2,
    bytes_per_vm: Optional[int] = None,
    storage: str = "hdd",
    storage_overrides: Tuple[Tuple[int, str], ...] = (),
    **job_overrides,
) -> TestbedConfig:
    """One-stop testbed for experiments and examples."""
    return TestbedConfig(
        cluster=scaled_cluster(scale, hosts=hosts, vms_per_host=vms_per_host,
                               storage=storage,
                               storage_overrides=storage_overrides),
        job=scaled_job(spec, scale, bytes_per_vm=bytes_per_vm, **job_overrides),
        seeds=tuple(seeds),
        n_phases=n_phases,
    )


# -- low-level assembly --------------------------------------------------------------


@dataclass
class JobAssembly:
    """Everything one simulated MapReduce run is built from.

    ``env.run(until=assembly.job.start())`` executes the job; the other
    members stay reachable for instrumentation (per-device stats,
    controller attachment, elevator knockouts) between assembly and run.
    """

    env: Environment
    cluster: VirtualCluster
    topology: Topology
    namenode: NameNode
    job: MapReduceJob


def assemble_cluster(
    cluster_config: ClusterConfig,
    seed: Optional[int] = None,
    trace=None,
    storage: Optional[str] = None,
) -> Tuple[Environment, VirtualCluster]:
    """Fresh environment + virtual cluster (the bottom half of a run).

    ``storage`` overrides the config's backend by registry name
    (hdd/ssd/hybrid); unknown names raise
    :class:`~repro.disk.backend.UnknownStorageError` listing what is
    registered.
    """
    env = Environment(trace=trace)
    if seed is not None:
        cluster_config = cluster_config.with_(seed=seed)
    if storage is not None:
        cluster_config = cluster_config.with_(storage=resolve_storage(storage))
    cluster = VirtualCluster(env, cluster_config, trace=trace)
    return env, cluster


def assemble_job(
    cluster_config: ClusterConfig,
    job_config: JobConfig,
    seed: Optional[int] = None,
    trace=None,
    fault_plan: Optional[FaultPlan] = None,
    replication: Optional[int] = None,
) -> JobAssembly:
    """Wire up one MapReduce run: env, cluster, network, HDFS, job.

    This is the construction sequence previously copy-pasted across the
    run kinds and examples; every keyword defaults to what those call
    sites passed, so routing them through here is behaviour-preserving.
    """
    env, cluster = assemble_cluster(cluster_config, seed=seed, trace=trace)
    topology = Topology(env)
    if replication is None:
        namenode = NameNode(cluster, block_size=job_config.block_size)
    else:
        namenode = NameNode(cluster, block_size=job_config.block_size,
                            replication=replication)
    job = MapReduceJob(env, cluster, topology, namenode, job_config,
                       trace=trace, fault_plan=fault_plan)
    return JobAssembly(env=env, cluster=cluster, topology=topology,
                       namenode=namenode, job=job)


# -- the scenario builder ------------------------------------------------------------


def _validate_storage(
    storage: str, overrides: Tuple[Tuple[int, str], ...]
) -> None:
    """Reject unknown backend names at scenario construction.

    Runs in scenario ``__post_init__`` — outside the pure ``to_spec``
    lowering path — so the registry read stays out of the cache-key
    call graph (CACHE001) while bad names still fail fast with the
    registered alternatives listed.
    """
    resolve_storage(storage)
    for _host, name in overrides:
        resolve_storage(name)


@dataclass(frozen=True)
class Scenario:
    """A declarative description of one simulated MapReduce experiment.

    A scenario is pure data; nothing is built until :func:`simulate` or
    :func:`sweep` runs it.  ``workload`` and ``pair`` accept the short
    string forms used throughout the docs (``"sort"``, ``"ac"``) as
    well as the underlying :class:`JobSpec` / :class:`SchedulerPair`
    objects.  ``plan`` overrides ``pair`` with a full per-phase
    :class:`~repro.core.solution.Solution` (elevator switching).
    """

    #: Benchmark name (``sort``/``wordcount``/…) or an explicit JobSpec.
    workload: Union[str, JobSpec] = "sort"
    #: Data-size scale in (0, 1]; 1.0 = the paper's exact sizing.
    scale: float = DEFAULT_SCALE
    hosts: int = 4
    vms_per_host: int = 4
    #: Uniform (VMM, VM) elevator pair; ``None`` = the stock (cfq, cfq).
    pair: Union[str, SchedulerPair, None] = None
    #: Full per-phase plan; overrides ``pair`` when set.
    plan: Optional[Solution] = None
    n_phases: int = 2
    #: Fault-injection plan; ``None`` keeps the run fault-free.
    faults: Optional[FaultPlan] = None
    bytes_per_vm: Optional[int] = None
    #: Storage backend for every host (``repro.disk.backend`` registry:
    #: hdd/ssd/hybrid); validated here, lowered as plain data.
    storage: str = "hdd"
    #: Per-host backend overrides as ``(host_index, name)`` pairs.
    storage_overrides: Tuple[Tuple[int, str], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        validate_scale(self.scale)
        _validate_storage(self.storage, self.storage_overrides)
        if self.plan is not None and len(self.plan) != self.n_phases:
            raise ValueError(
                f"plan has {len(self.plan)} phases, scenario expects "
                f"{self.n_phases}"
            )

    def with_(self, **changes) -> "Scenario":
        return replace(self, **changes)

    # -- lowering ------------------------------------------------------------------
    @property
    def job_spec(self) -> JobSpec:
        workload = self.workload
        return benchmark(workload) if isinstance(workload, str) else workload

    def solution(self) -> Solution:
        if self.plan is not None:
            return self.plan
        pair = self.pair
        if pair is None:
            pair = DEFAULT_PAIR
        elif isinstance(pair, str):
            pair = SchedulerPair.parse(pair)
        return Solution.uniform(pair, self.n_phases)

    def testbed(self, seeds: Sequence[int] = (0,)) -> TestbedConfig:
        return scaled_testbed(
            self.job_spec,
            scale=self.scale,
            hosts=self.hosts,
            vms_per_host=self.vms_per_host,
            seeds=seeds,
            n_phases=self.n_phases,
            bytes_per_vm=self.bytes_per_vm,
            storage=self.storage,
            storage_overrides=self.storage_overrides,
        )

    def to_spec(self, seed: int = 0) -> "RunSpec":
        """The :class:`~repro.runner.spec.RunSpec` this scenario equals.

        Matches the specs the experiment suite builds for the same
        configuration (kind, config tuple shape, per-seed testbed), so
        cache keys — and therefore cached payloads — are shared.
        """
        # Imported here, not at module level: the runner layer imports
        # this facade (assemble_job), so the facade must sit above it.
        from .runner.spec import RunSpec

        testbed = self.testbed(seeds=(seed,))
        solution = self.solution()
        label = self.label or f"{self.job_spec.name} [{solution}] seed={seed}"
        if self.faults is not None:
            return RunSpec(kind="faulty_job", seed=seed,
                           config=(testbed, solution, self.faults),
                           label=label)
        return RunSpec(kind="job", seed=seed, config=(testbed, solution),
                       label=label)


@dataclass(frozen=True)
class MultiJobScenario:
    """A declarative multi-tenant experiment: N concurrent jobs.

    Lowers to a ``RunSpec(kind="multi_job")`` executing a
    :class:`~repro.mapreduce.multijob.MultiJobTracker` over a Poisson
    (or trace-driven) arrival stream.  Like :class:`Scenario` it is
    pure data with a pure ``to_spec`` — equal scenarios share sweep
    cache keys.

    ``pair`` sets the cluster's static elevator pair; ``switch``
    overrides it with cluster-scope phase-majority switching, given as
    ``(map_pair, tail_pair)`` in any form ``SchedulerPair.parse``
    accepts (e.g. ``("ad", "cc")``) or as a full
    :class:`~repro.mapreduce.multijob.SwitchPlan`.
    """

    workload: Union[str, JobSpec] = "sort"
    scale: float = DEFAULT_SCALE
    hosts: int = 4
    vms_per_host: int = 4
    #: Static (VMM, VM) pair; ``None`` = the stock (cfq, cfq).
    pair: Union[str, SchedulerPair, None] = None
    #: Phase-majority switch plan; overrides ``pair`` when set.
    switch: Union[SwitchPlan, Tuple[str, str], None] = None
    #: Job-level scheduler: fifo | fair | capacity | sjf.
    scheduler: str = "fifo"
    n_jobs: int = 3
    #: Mean Poisson arrival rate, jobs per simulated second.
    arrival_rate: float = 0.02
    tenants: Tuple[str, ...] = ("tenant-a", "tenant-b")
    size_mix: Tuple[SizeClass, ...] = DEFAULT_SIZE_MIX
    #: Full arrival process; overrides the poisson fields when set.
    arrivals: Optional[ArrivalConfig] = None
    bytes_per_vm: Optional[int] = None
    #: Storage backend name (hdd/ssd/hybrid) + per-host overrides.
    storage: str = "hdd"
    storage_overrides: Tuple[Tuple[int, str], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        validate_scale(self.scale)
        _validate_storage(self.storage, self.storage_overrides)
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.scheduler not in JOB_SCHEDULERS:
            raise ValueError(
                f"unknown job scheduler {self.scheduler!r}; choose from "
                f"{sorted(JOB_SCHEDULERS)}"
            )
        if self.arrivals is None and not self.tenants:
            raise ValueError("at least one tenant is required")

    def with_(self, **changes) -> "MultiJobScenario":
        return replace(self, **changes)

    # -- lowering ------------------------------------------------------------------
    @property
    def job_spec(self) -> JobSpec:
        workload = self.workload
        return benchmark(workload) if isinstance(workload, str) else workload

    def arrival_config(self) -> ArrivalConfig:
        if self.arrivals is not None:
            return self.arrivals
        return ArrivalConfig(
            kind="poisson",
            n_jobs=self.n_jobs,
            rate=self.arrival_rate,
            tenants=self.tenants,
            size_classes=self.size_mix,
        )

    def switch_plan(self) -> Optional[SwitchPlan]:
        if self.switch is None:
            return None
        if isinstance(self.switch, SwitchPlan):
            return self.switch
        map_pair, tail_pair = self.switch
        return SwitchPlan(
            map_pair=SchedulerPair.parse(map_pair)
            if isinstance(map_pair, str) else map_pair,
            tail_pair=SchedulerPair.parse(tail_pair)
            if isinstance(tail_pair, str) else tail_pair,
        )

    def multi_job_config(self) -> MultiJobConfig:
        cluster = scaled_cluster(
            self.scale, hosts=self.hosts, vms_per_host=self.vms_per_host,
            storage=self.storage, storage_overrides=self.storage_overrides,
        )
        if self.pair is not None:
            pair = (SchedulerPair.parse(self.pair)
                    if isinstance(self.pair, str) else self.pair)
            cluster = cluster.with_(initial_pair=pair)
        job = scaled_job(self.job_spec, self.scale,
                         bytes_per_vm=self.bytes_per_vm)
        return MultiJobConfig(
            cluster=cluster,
            base_job=job,
            arrivals=self.arrival_config(),
            scheduler=self.scheduler,
            switch_plan=self.switch_plan(),
        )

    def to_spec(self, seed: int = 0) -> "RunSpec":
        """The ``multi_job`` :class:`~repro.runner.spec.RunSpec` this
        scenario equals (pure: no environment reads, no clock)."""
        # Imported here, not at module level: the runner layer imports
        # this facade, so the facade must sit above it.
        from .runner.spec import RunSpec

        label = self.label or (
            f"{self.job_spec.name} x{self.n_jobs} [{self.scheduler}] "
            f"seed={seed}"
        )
        return RunSpec(kind="multi_job", seed=seed,
                       config=self.multi_job_config(), label=label)


@dataclass(frozen=True)
class ControlledScenario:
    """A declarative online-controlled experiment (``repro.ctrl``).

    Like :class:`Scenario` it is pure data with a pure ``to_spec``:
    equal scenarios lower to equal ``controlled_job`` specs and share
    sweep cache keys.  ``controller=None`` runs the static ``initial``
    pair end to end — the baseline the regret oracle and the
    metamorphic tests compare against.
    """

    workload: Union[str, JobSpec] = "sort"
    scale: float = DEFAULT_SCALE
    hosts: int = 4
    vms_per_host: int = 4
    n_phases: int = 2
    #: Registered policy name (greedy/hysteresis/bandit) or ``None``.
    controller: Optional[str] = None
    #: Pair installed at job start (two-letter label).
    initial: str = "cc"
    #: Target pair label per phase for greedy/hysteresis (index 0 = map).
    phase_pairs: Tuple[str, ...] = ()
    dwell: float = 0.0
    cost_factor: float = 1.0
    cost_budget: float = 5.0
    epsilon: float = 0.1
    #: Bandit arms; ``()`` keeps the registry default.
    arms: Tuple[str, ...] = ()
    #: Bandit context features as ``(key, value)`` pairs.
    features: Tuple[Tuple[str, str], ...] = ()
    #: Learned bandit state threaded from a previous run's payload.
    state: Tuple[Tuple[str, str, int, float], ...] = ()
    #: Fault-injection plan; ``None`` keeps the run fault-free.
    faults: Optional[FaultPlan] = None
    #: Background co-tenant write volume (bytes; 0 = none).
    interference_bytes: int = 0
    bytes_per_vm: Optional[int] = None
    #: Storage backend name (hdd/ssd/hybrid) + per-host overrides.
    storage: str = "hdd"
    storage_overrides: Tuple[Tuple[int, str], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        validate_scale(self.scale)
        _validate_storage(self.storage, self.storage_overrides)
        if self.controller is not None:
            resolve_policy(self.controller)
        if self.phase_pairs and len(self.phase_pairs) != self.n_phases:
            raise ValueError(
                f"phase_pairs has {len(self.phase_pairs)} entries, "
                f"scenario expects {self.n_phases}"
            )
        self.ctrl_config()  # validates labels and knob ranges

    def with_(self, **changes) -> "ControlledScenario":
        return replace(self, **changes)

    # -- lowering ------------------------------------------------------------------
    @property
    def job_spec(self) -> JobSpec:
        workload = self.workload
        return benchmark(workload) if isinstance(workload, str) else workload

    def ctrl_config(self) -> CtrlConfig:
        kwargs = dict(
            policy=self.controller,
            initial=self.initial,
            phase_pairs=self.phase_pairs,
            dwell=self.dwell,
            cost_factor=self.cost_factor,
            cost_budget=self.cost_budget,
            epsilon=self.epsilon,
            features=self.features,
            state=self.state,
            interference_bytes=self.interference_bytes,
        )
        if self.arms:
            kwargs["arms"] = self.arms
        return CtrlConfig(**kwargs)

    def testbed(self, seeds: Sequence[int] = (0,)) -> TestbedConfig:
        return scaled_testbed(
            self.job_spec,
            scale=self.scale,
            hosts=self.hosts,
            vms_per_host=self.vms_per_host,
            seeds=seeds,
            n_phases=self.n_phases,
            bytes_per_vm=self.bytes_per_vm,
            storage=self.storage,
            storage_overrides=self.storage_overrides,
        )

    def to_spec(self, seed: int = 0) -> "RunSpec":
        """The ``controlled_job`` :class:`~repro.runner.spec.RunSpec`
        this scenario equals (pure: no environment reads, no clock)."""
        # Imported here, not at module level: the runner layer imports
        # this facade, so the facade must sit above it.
        from .runner.spec import RunSpec

        policy = self.controller or "static"
        label = self.label or (
            f"{self.job_spec.name} [ctrl:{policy}] seed={seed}"
        )
        return RunSpec(
            kind="controlled_job", seed=seed,
            config=(self.testbed(seeds=(seed,)), self.ctrl_config(),
                    self.faults),
            label=label,
        )


@dataclass(frozen=True)
class RunResult:
    """One simulated run, decoded: result object + raw payload + cost."""

    #: The JSON-able payload (what the sweep cache stores).
    payload: Dict[str, Any]
    #: Decoded phase-structured job result.
    result: JobResult
    #: Wall-clock (simulated) seconds stalled in elevator switches.
    switch_stall: float
    #: Simulation events processed across every Environment in the run.
    events: int
    #: Real (host) seconds the simulation took.
    wall_s: float

    @property
    def duration(self) -> float:
        """Simulated job duration in seconds."""
        return self.result.duration

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def simulate(scenario: Scenario, seed: int = 0, trace=None) -> RunResult:
    """Run one scenario in-process (no cache, no worker fan-out).

    Deterministic: the same ``(scenario, seed)`` always produces the
    same payload, bit-for-bit — the same guarantee the sweep cache
    relies on (DESIGN.md §6).
    """
    from .runner.kinds import encode_job_result, _reset_run_ids

    _reset_run_ids()
    runner = JobRunner(
        scenario.testbed(seeds=(seed,)),
        trace_factory=(lambda _seed: trace) if trace is not None else None,
        fault_plan=scenario.faults,
    )
    start_event_census()
    t0 = time.perf_counter()
    result, stall = runner.execute_once(scenario.solution(), seed)
    wall_s = time.perf_counter() - t0
    events = finish_event_census()
    payload = encode_job_result(result, stall)
    if scenario.faults is not None:
        payload["faults"] = {k: result.fault_stats[k]
                             for k in sorted(result.fault_stats)}
    return RunResult(payload=payload, result=result, switch_stall=stall,
                     events=events, wall_s=wall_s)


def sweep(
    scenarios: Union[Scenario, Sequence[Scenario]],
    seeds: Sequence[int] = (0,),
    runner=None,
    **runner_kwargs,
) -> List[List[Dict[str, Any]]]:
    """Run scenarios × seeds through the memoised parallel sweep runner.

    Returns one list per scenario, holding that scenario's payload for
    each seed (in ``seeds`` order).  ``runner`` is an optional existing
    :class:`~repro.runner.sweep.SweepRunner`; without one, a private
    runner is built from ``runner_kwargs`` (``jobs=``, ``use_cache=``,
    ``cache_dir=``…) and closed before returning.

    Payloads are identical to :func:`simulate` and to
    :func:`~repro.runner.kinds.execute_spec` for the equivalent spec —
    same simulation, same JSON round-trip normalisation.
    """
    from .runner.sweep import SweepRunner

    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    specs = [sc.to_spec(seed) for sc in scenarios for seed in seeds]
    if runner is not None:
        if runner_kwargs:
            raise TypeError("pass runner_kwargs only when runner is None")
        flat = runner.run_specs(specs)
    else:
        with SweepRunner(**runner_kwargs) as own:
            flat = own.run_specs(specs)
    n = len(seeds)
    return [flat[i * n:(i + 1) * n] for i in range(len(scenarios))]
