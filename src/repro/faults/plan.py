"""Declarative fault plans.

A :class:`FaultPlan` is part of a run's identity: ``faulty_job`` specs
carry ``(TestbedConfig, Solution, FaultPlan)`` as their config, so the
plan participates in the sweep runner's content-addressed cache keys
exactly like every other configuration dataclass.  All fields are
primitives for that reason (see :func:`repro.runner.spec.canonical`).

The all-default plan is inert: :attr:`FaultPlan.is_active` is False,
no injector processes are spawned, no RNG streams are drawn, and a job
run is bit-identical to one that never heard of faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DiskFaults",
    "VmFaults",
    "TaskFaults",
    "SpeculationConfig",
    "FaultPlan",
    "NO_FAULTS",
]


@dataclass(frozen=True)
class DiskFaults:
    """Episodic Dom0 disk degradation (hot spare rebuilds, noisy
    neighbours on shared storage, SMART remaps).

    While an episode is active every request served by the host disk
    takes ``slow_factor`` times its modelled service time plus
    ``spike_latency_s`` of extra per-request latency.
    """

    #: Mean seconds between episodes per host (exponential); 0 = off.
    slow_interval_s: float = 0.0
    #: Service-time multiplier during an episode.
    slow_factor: float = 1.0
    #: Mean episode length in seconds (exponential).
    slow_duration_s: float = 0.0
    #: Additive per-request latency during an episode.
    spike_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.slow_interval_s < 0 or self.slow_duration_s < 0:
            raise ValueError("episode timings must be non-negative")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if self.spike_latency_s < 0:
            raise ValueError("spike_latency_s must be non-negative")

    @property
    def active(self) -> bool:
        return self.slow_interval_s > 0 and self.slow_duration_s > 0 and (
            self.slow_factor > 1.0 or self.spike_latency_s > 0
        )


@dataclass(frozen=True)
class VmFaults:
    """Guest-level disturbances: finite pauses and TaskTracker crashes.

    A *pause* freezes the VM's vCPU and its virtual disk dispatch for a
    while (Xen ``xm pause``-style); outstanding backend I/O drains.  A
    *crash* models the TaskTracker process dying: running attempts on
    the VM are killed, no new work is placed there, but the guest's
    storage stays readable so already-served map outputs survive (the
    common Hadoop failure mode; a full disk loss is out of scope).
    """

    #: Mean seconds between pauses per VM (exponential); 0 = off.
    pause_interval_s: float = 0.0
    #: Mean pause length in seconds (exponential).
    pause_duration_s: float = 0.0
    #: Probability that a given VM crashes during the crash window.
    crash_prob: float = 0.0
    #: Crash times are uniform over ``[0, crash_window_s)``.
    crash_window_s: float = 0.0
    #: Hard cap on crashed VMs per run (keeps the cluster schedulable).
    max_crashes: int = 1

    def __post_init__(self) -> None:
        if self.pause_interval_s < 0 or self.pause_duration_s < 0:
            raise ValueError("pause timings must be non-negative")
        if not 0 <= self.crash_prob <= 1:
            raise ValueError("crash_prob must be in [0, 1]")
        if self.crash_window_s < 0:
            raise ValueError("crash_window_s must be non-negative")
        if self.max_crashes < 0:
            raise ValueError("max_crashes must be non-negative")

    @property
    def pauses_active(self) -> bool:
        return self.pause_interval_s > 0 and self.pause_duration_s > 0

    @property
    def crashes_active(self) -> bool:
        return self.crash_prob > 0 and self.crash_window_s > 0 and self.max_crashes > 0

    @property
    def active(self) -> bool:
        return self.pauses_active or self.crashes_active


@dataclass(frozen=True)
class TaskFaults:
    """Per-attempt task failures (bad records, JVM OOMs, lost leases).

    Each attempt fails with the configured probability at a uniformly
    drawn progress point; the JobTracker retries it elsewhere, up to
    ``max_attempts`` total attempts per task.  The final allowed
    attempt never draws a failure — the simulated job always completes,
    matching the paper's measured (successful) runs — so
    ``max_attempts`` bounds the retry storm rather than aborting jobs.
    """

    map_fail_prob: float = 0.0
    reduce_fail_prob: float = 0.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.map_fail_prob <= 1 or not 0 <= self.reduce_fail_prob <= 1:
            raise ValueError("failure probabilities must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def active(self) -> bool:
        return (self.map_fail_prob > 0 or self.reduce_fail_prob > 0) and (
            self.max_attempts > 1
        )


@dataclass(frozen=True)
class SpeculationConfig:
    """Hadoop-style speculative execution for straggling map attempts.

    When the pending-task pool is dry, a map attempt running longer
    than ``slowdown_threshold`` times the mean successful map duration
    gets a backup attempt on a different VM; the first attempt to
    finish wins and the loser is killed at its next checkpoint.
    """

    enabled: bool = False
    slowdown_threshold: float = 1.5
    #: Fraction of maps that must have finished before speculating.
    min_finished_fraction: float = 0.5
    #: Straggler-scan period in simulated seconds.
    check_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.slowdown_threshold < 1.0:
            raise ValueError("slowdown_threshold must be >= 1")
        if not 0 <= self.min_finished_fraction <= 1:
            raise ValueError("min_finished_fraction must be in [0, 1]")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault configuration of one run."""

    disk: DiskFaults = field(default_factory=DiskFaults)
    vms: VmFaults = field(default_factory=VmFaults)
    tasks: TaskFaults = field(default_factory=TaskFaults)
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)

    @property
    def is_active(self) -> bool:
        """Whether this plan perturbs a run at all."""
        return (
            self.disk.active
            or self.vms.active
            or self.tasks.active
            or self.speculation.enabled
        )

    @property
    def needs_recovery(self) -> bool:
        """Whether the JobTracker must track retries/backup attempts."""
        return self.tasks.active or self.vms.crashes_active or self.speculation.enabled

    def with_(self, **changes) -> "FaultPlan":
        return replace(self, **changes)


#: The inert plan: no injection, no recovery bookkeeping, bit-identical
#: job results to a run without any fault machinery.
NO_FAULTS = FaultPlan()
