"""Fault injection: seed-deterministic perturbations of a running job.

The paper's measurements assume every map wave completes cleanly; real
virtualized Hadoop deployments are dominated by stragglers and
transient disk/VM faults.  This package adds that axis:

* :class:`FaultPlan` — a frozen, canonicalisable description of the
  faults to inject (disk slow-down episodes, VM pauses/crashes,
  task-attempt failures) plus the speculative-execution policy;
* :class:`FaultInjector` — the simulation processes that realise a
  plan against a :class:`~repro.virt.cluster.VirtualCluster`;
* :data:`PRESETS` — named plans (``none``/``light``/``heavy``) exposed
  through the CLI's ``--faults`` option.

Every random decision draws from dedicated ``faults.*`` RNG streams
derived from the run's root seed, so a fault plan never perturbs the
fault-free simulation and two runs of the same plan are bit-identical.
"""

from .injector import FaultInjector
from .plan import (
    NO_FAULTS,
    DiskFaults,
    FaultPlan,
    SpeculationConfig,
    TaskFaults,
    VmFaults,
)
from .presets import PRESETS, get_preset

__all__ = [
    "DiskFaults",
    "FaultInjector",
    "FaultPlan",
    "NO_FAULTS",
    "PRESETS",
    "SpeculationConfig",
    "TaskFaults",
    "VmFaults",
    "get_preset",
]
