"""The fault injector: environment-level disturbances on a schedule.

Turns a :class:`~repro.faults.plan.FaultPlan` into concrete episodes on
a live cluster:

* **Disk slow-downs** — per-host episodes during which the shared
  spindle's service times are scaled by ``slow_factor`` and every
  request pays ``spike_latency_s`` extra (a neighbour VM hammering the
  disk, a firmware hiccup, background scrubbing).
* **VM pauses** — Xen-style ``xm pause``/``unpause``: the guest's VCPU
  freezes and its virtual disk queue stops dispatching, while the host
  keeps running.
* **VM crashes** — the TaskTracker on a VM dies for good.  Storage is
  *not* lost (a simplification: think of the guest image surviving on
  the host while the JVMs are gone), so already-produced map outputs
  remain fetchable; the :class:`~repro.mapreduce.attempts.AttemptManager`
  is told so it can kill and rehome the VM's work.

Every draw comes from dedicated ``faults.*`` RNG streams keyed per
host / per VM, so episode schedules are a pure function of the cluster
seed and the plan — independent of simulation interleaving, and of
every stream the fault-free simulation uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..mapreduce.attempts import AttemptManager
    from ..sim.core import Environment
    from ..sim.tracing import TraceBus
    from ..virt.cluster import VirtualCluster
    from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a plan's episodes against a cluster for one job run.

    Create it *after* the job has started (so the attempt manager
    exists) but before running the simulation::

        job = MapReduceJob(..., fault_plan=plan)
        proc = job.start()
        FaultInjector(env, cluster, plan, manager=job.attempts,
                      trace=trace, stats=job.extra_fault_stats)
        env.run(until=proc)

    Episode counters accumulate in ``stats`` (pass the job's
    ``extra_fault_stats`` to surface them in the result payload).
    """

    def __init__(
        self,
        env: "Environment",
        cluster: "VirtualCluster",
        plan: "FaultPlan",
        manager: Optional["AttemptManager"] = None,
        trace: Optional["TraceBus"] = None,
        stats: Optional[Dict[str, int]] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.plan = plan
        self.manager = manager
        self.trace = trace
        self.stats = stats if stats is not None else {}
        if plan.disk.active:
            self.stats.setdefault("disk_slow_episodes", 0)
            for host in cluster.hosts:
                env.process(self._disk_episodes(host))
        if plan.vms.pauses_active:
            self.stats.setdefault("vm_pauses", 0)
            for vm in cluster.vms:
                env.process(self._pause_episodes(vm))
        if plan.vms.crashes_active:
            self.stats.setdefault("vm_crashes", 0)
            for when, vm in self._crash_schedule():
                env.process(self._crash_at(when, vm))

    # -- disk ------------------------------------------------------------------
    def _disk_episodes(self, host):
        """Alternating healthy/degraded periods for one host's spindle."""
        disk = host.disk
        faults = self.plan.disk
        g = self.cluster.rng.stream(f"faults.{host.name}.disk")
        while True:
            yield self.env.timeout(float(g.exponential(faults.slow_interval_s)))
            duration = float(g.exponential(faults.slow_duration_s))
            disk.service_scale = faults.slow_factor
            disk.extra_latency = faults.spike_latency_s
            self.stats["disk_slow_episodes"] += 1
            if self.trace is not None:
                self.trace.publish(
                    self.env.now, "fault.disk_slow", host=host.name,
                    factor=faults.slow_factor, duration=duration,
                )
            yield self.env.timeout(duration)
            disk.service_scale = 1.0
            disk.extra_latency = 0.0
            if self.trace is not None:
                self.trace.publish(
                    self.env.now, "fault.disk_recover", host=host.name
                )

    # -- pauses ----------------------------------------------------------------
    def _pause_episodes(self, vm):
        """Alternating run/pause periods for one VM (skipped if crashed)."""
        faults = self.plan.vms
        g = self.cluster.rng.stream(f"faults.{vm.vm_id}.pause")
        while True:
            yield self.env.timeout(float(g.exponential(faults.pause_interval_s)))
            if vm.crashed:
                return  # a crashed VM no longer pauses/resumes
            duration = float(g.exponential(faults.pause_duration_s))
            vm.pause()
            self.stats["vm_pauses"] += 1
            if self.trace is not None:
                self.trace.publish(
                    self.env.now, "fault.vm_pause", vm=vm.vm_id,
                    duration=duration,
                )
            yield self.env.timeout(duration)
            vm.resume()
            if self.trace is not None:
                self.trace.publish(self.env.now, "fault.vm_resume", vm=vm.vm_id)

    # -- crashes ---------------------------------------------------------------
    def _crash_schedule(self) -> List[Tuple[float, object]]:
        """Pre-draw which VMs crash and when.

        Each VM independently draws a crash with ``crash_prob`` at a
        uniform time inside the crash window; the earliest
        ``min(max_crashes, n_vms - 1)`` draws survive, so at least one
        VM always lives to finish the job.
        """
        faults = self.plan.vms
        draws: List[Tuple[float, object]] = []
        for vm in self.cluster.vms:
            g = self.cluster.rng.stream(f"faults.{vm.vm_id}.crash")
            if g.random() < faults.crash_prob:
                draws.append((float(g.uniform(0.0, faults.crash_window_s)), vm))
        draws.sort(key=lambda pair: pair[0])
        cap = min(faults.max_crashes, len(self.cluster.vms) - 1)
        return draws[: max(0, cap)]

    def _crash_at(self, when: float, vm):
        yield self.env.timeout(when)
        vm.crash()
        self.stats["vm_crashes"] += 1
        if self.trace is not None:
            self.trace.publish(self.env.now, "fault.vm_crash", vm=vm.vm_id)
        if self.manager is not None:
            self.manager.on_vm_crashed(vm.vm_id)
