"""Named fault plans for the CLI's ``--faults`` option.

Timings are in simulated seconds and sized against the experiments'
scaled sort job (a few hundred simulated seconds at the default scale),
so ``light`` produces a handful of episodes and retries per run and
``heavy`` keeps the recovery machinery visibly busy without stalling
the job.
"""

from __future__ import annotations

from typing import Dict

from .plan import (
    NO_FAULTS,
    DiskFaults,
    FaultPlan,
    SpeculationConfig,
    TaskFaults,
    VmFaults,
)

__all__ = ["PRESETS", "get_preset"]

LIGHT = FaultPlan(
    disk=DiskFaults(slow_interval_s=60.0, slow_factor=2.0, slow_duration_s=8.0),
    vms=VmFaults(pause_interval_s=90.0, pause_duration_s=2.0),
    tasks=TaskFaults(map_fail_prob=0.05, reduce_fail_prob=0.03),
    speculation=SpeculationConfig(enabled=True),
)

HEAVY = FaultPlan(
    disk=DiskFaults(
        slow_interval_s=30.0,
        slow_factor=4.0,
        slow_duration_s=12.0,
        spike_latency_s=0.010,
    ),
    vms=VmFaults(
        pause_interval_s=45.0,
        pause_duration_s=5.0,
        crash_prob=0.10,
        crash_window_s=60.0,
        max_crashes=2,
    ),
    tasks=TaskFaults(map_fail_prob=0.15, reduce_fail_prob=0.10),
    speculation=SpeculationConfig(enabled=True),
)

PRESETS: Dict[str, FaultPlan] = {
    "none": NO_FAULTS,
    "light": LIGHT,
    "heavy": HEAVY,
}


def get_preset(name: str) -> FaultPlan:
    """Look up a preset plan by name (``none``/``light``/``heavy``)."""
    try:
        return PRESETS[name.strip().lower()]
    except KeyError:
        raise KeyError(
            f"unknown fault preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
