"""Command-line runner for the paper experiments.

Usage::

    python -m repro table1 --scale 0.25 --seeds 0,1,2
    python -m repro fig7a --jobs 4
    python -m repro all --scale 0.1 --seeds 0 --cache-dir /tmp/repro

Each experiment prints the table/series of its paper artifact plus its
PASS/FAIL shape checks.  Simulations fan out over ``--jobs`` worker
processes and are memoised in a content-addressed on-disk cache, so
re-running an experiment with the same configuration replays results
without simulating (``--no-cache`` disables the disk cache).
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from .experiments import DEFAULT_SCALE, EXPERIMENTS
from .experiments.common import validate_scale
from .faults import PRESETS
from .runner import DEFAULT_CACHE_DIR, RunSpec, SweepRunner, default_jobs

__all__ = ["main"]


def _parse_seeds(raw: str) -> tuple:
    try:
        seeds = tuple(int(s) for s in raw.split(",") if s != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {raw!r}") from None
    if not seeds:
        raise argparse.ArgumentTypeError(
            f"seed list {raw!r} is empty; give at least one seed, e.g. "
            "--seeds 0 or --seeds 0,1,2"
        )
    return seeds


def _parse_scale(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a float, got {raw!r}") from None
    try:
        return validate_scale(value, source="--scale")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_jobs(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an int, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures in simulation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=DEFAULT_SCALE,
        help="data-size scale factor in (0, 1] (1.0 = paper-exact sizes; "
        f"default {DEFAULT_SCALE} or $REPRO_SCALE)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0,),
        help="comma-separated seeds to average over (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help="simulation worker processes "
        "(default: $REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (in-process memoisation stays on)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and timing output (tables and checks only)",
    )
    parser.add_argument(
        "--faults",
        choices=sorted(PRESETS),
        default=None,
        help="fault-injection preset for experiments that support it "
        "(currently fig9-faults; other figures stay fault-free by "
        "construction)",
    )
    return parser


def run_one(exp_id: str, sweep: SweepRunner, scale: float, seeds: tuple,
            quiet: bool = False, faults: Optional[str] = None) -> bool:
    start = time.time()
    before = sweep.stats.snapshot()
    fn = EXPERIMENTS[exp_id]
    kwargs = dict(scale=scale, seeds=seeds, sweep=sweep)
    if faults is not None:
        if "faults" not in inspect.signature(fn).parameters:
            print(
                f"repro: note: {exp_id} does not take faults; "
                "--faults ignored (the figure is fault-free by construction)",
                file=sys.stderr,
            )
        else:
            kwargs["faults"] = faults
    result = fn(**kwargs)
    rendered = result.render()
    delta = sweep.stats.since(before)
    print(rendered)
    if not quiet:
        print(f"(elapsed {time.time() - start:.1f}s; {delta.summary()})")
    print()
    return result.all_checks_pass


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    def progress(spec: RunSpec, seconds: float) -> None:
        name = spec.label or f"{spec.kind} seed={spec.seed}"
        print(f"  ran {name} ({seconds:.1f}s)", file=sys.stderr)

    try:
        sweep = SweepRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            progress=None if args.quiet else progress,
        )
    except ValueError as exc:  # e.g. a garbage $REPRO_JOBS value
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    ok = True
    with sweep:
        for exp_id in ids:
            ok = run_one(exp_id, sweep, args.scale, args.seeds,
                         quiet=args.quiet, faults=args.faults) and ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
