"""Command-line runner for the paper experiments.

Usage::

    python -m repro table1 --scale 0.25 --seeds 0,1,2
    python -m repro fig7a --jobs 4
    python -m repro all --scale 0.1 --seeds 0 --cache-dir /tmp/repro
    python -m repro fig8 --seeds 0 --trace-out traces/
    python -m repro report traces/ --chrome-out traces/job.chrome.json
    python -m repro run --controller hysteresis --ctrl-cost-budget 0.5
    python -m repro bench --quick
    python -m repro lint --format json

Each experiment prints the table/series of its paper artifact plus its
PASS/FAIL shape checks.  Simulations fan out over ``--jobs`` worker
processes and are memoised in a content-addressed on-disk cache, so
re-running an experiment with the same configuration replays results
without simulating (``--no-cache`` disables the disk cache).

``--trace-out DIR`` records every simulated run's trace to
``DIR/<run>.trace.jsonl`` (plus a metrics snapshot); ``repro report``
renders those artifacts — per-phase durations, per-device I/O, a phase
timeline — and can re-export them as a Chrome/Perfetto trace.

``repro bench`` times the canonical scenarios against their golden
payload digests and writes ``BENCH_<rev>.json`` (see :mod:`repro.bench`).

``repro lint`` statically checks the source tree against the
reproducibility contract — no wall clock or stray RNG in the simulation
path, trace topics registered, cache keys pure (see
:mod:`repro.analysis`).  Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
from typing import List, Optional, Set

from .api import DEFAULT_SCALE, validate_scale
from .experiments import EXPERIMENTS
from .faults import PRESETS
from .mapreduce.multijob import JOB_SCHEDULERS
from .obs import capture
from .obs.metrics import merge_snapshots
from .obs.report import report_path
from .runner import DEFAULT_CACHE_DIR, RunSpec, SweepRunner, default_jobs

__all__ = ["main"]


def _parse_seeds(raw: str) -> tuple:
    try:
        seeds = tuple(int(s) for s in raw.split(",") if s != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {raw!r}") from None
    if not seeds:
        raise argparse.ArgumentTypeError(
            f"seed list {raw!r} is empty; give at least one seed, e.g. "
            "--seeds 0 or --seeds 0,1,2"
        )
    return seeds


def _parse_scale(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a float, got {raw!r}") from None
    try:
        return validate_scale(value, source="--scale")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_jobs(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an int, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def _parse_policy(raw: str) -> str:
    from .ctrl import policy_names

    if raw not in policy_names():
        raise argparse.ArgumentTypeError(
            f"unknown controller policy {raw!r}; choose from "
            f"{', '.join(policy_names())}"
        )
    return raw


def _parse_storage(raw: str) -> str:
    from .disk.backend import UnknownStorageError, resolve_storage

    try:
        return resolve_storage(raw)
    except UnknownStorageError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_pair(raw: str) -> str:
    from .iosched.registry import SCHEDULER_NAMES
    from .virt.pair import SchedulerPair

    try:
        return SchedulerPair.parse(raw).label
    except ValueError as exc:
        # UnknownSchedulerError subclasses ValueError, so both a bad
        # label ('zz') and a bad long name ('bfq,cfq') land here with
        # the registry's choices instead of a deep KeyError traceback.
        initials = "".join(name[0] for name in SCHEDULER_NAMES)
        raise argparse.ArgumentTypeError(
            f"{exc}; give a two-letter label over [{initials}] "
            f"(e.g. 'ad') or 'vmm,vm' names from {SCHEDULER_NAMES}"
        ) from None


def _parse_plan(raw: str) -> tuple:
    labels = tuple(_parse_pair(part) for part in raw.split(",") if part.strip())
    if not labels:
        raise argparse.ArgumentTypeError(
            f"plan {raw!r} is empty; give one pair label per phase, "
            "e.g. --plan ad,cc"
        )
    return labels


def _parse_cost(raw: str) -> float:
    try:
        value = float(raw)  # accepts 'inf' (= never switch)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a float (or 'inf'), got {raw!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _parse_topics(raw: str) -> tuple:
    topics = tuple(t.strip() for t in raw.split(",") if t.strip())
    if not topics:
        raise argparse.ArgumentTypeError(
            f"topic list {raw!r} is empty; give topics or globs, e.g. "
            "--trace-topics 'disk.*,job.*' (default: '*')"
        )
    return topics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures in simulation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=DEFAULT_SCALE,
        help="data-size scale factor in (0, 1] (1.0 = paper-exact sizes; "
        f"default {DEFAULT_SCALE} or $REPRO_SCALE)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0,),
        help="comma-separated seeds to average over (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help="simulation worker processes "
        "(default: $REPRO_JOBS or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (in-process memoisation stays on)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and timing output (tables and checks only)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live single-line sweep progress on stderr (runs done/total, "
        "cache and memo hits, ETA) instead of one line per finished run",
    )
    parser.add_argument(
        "--faults",
        choices=sorted(PRESETS),
        default=None,
        help="fault-injection preset for experiments that support it "
        "(currently fig9-faults; other figures stay fault-free by "
        "construction)",
    )
    parser.add_argument(
        "--arrivals",
        type=_parse_jobs,
        default=None,
        metavar="N",
        help="number of jobs in the arrival stream, for experiments that "
        "take one (currently fig-multijob; default 4)",
    )
    parser.add_argument(
        "--scheduler",
        choices=sorted(JOB_SCHEDULERS),
        default=None,
        help="restrict multi-job experiments to one job-level scheduler "
        "(default: compare fifo/fair/sjf)",
    )
    parser.add_argument(
        "--tenants",
        type=_parse_jobs,
        default=None,
        metavar="N",
        help="number of tenants sharing the cluster in multi-job "
        "experiments (default 2)",
    )
    parser.add_argument(
        "--controller",
        type=_parse_policy,
        default=None,
        metavar="POLICY",
        help="restrict controller experiments to one policy "
        "(currently fig-ctrl; default: compare greedy/hysteresis/bandit)",
    )
    parser.add_argument(
        "--storage",
        type=_parse_storage,
        default=None,
        metavar="BACKEND",
        help="storage backend for experiments that take one (registry "
        "names: hdd/ssd/hybrid; currently fig-ssd restricts its "
        "comparison; other figures model the paper's SATA spindles)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="record each simulated run's trace to DIR/<run>.trace.jsonl "
        "plus a metrics snapshot; implies fresh simulation (the result "
        "cache is bypassed so every run actually traces)",
    )
    parser.add_argument(
        "--trace-topics",
        type=_parse_topics,
        default=("*",),
        metavar="TOPICS",
        help="comma-separated trace topics or globs to record with "
        "--trace-out, e.g. 'disk.*,job.*' (default: '*')",
    )
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a metrics summary and phase timeline from "
        "trace artifacts recorded with --trace-out.",
    )
    parser.add_argument(
        "trace",
        help="a .trace.jsonl file, or a directory of them (reported in "
        "name order)",
    )
    parser.add_argument(
        "--chrome-out",
        metavar="PATH",
        default=None,
        help="also export all records as Chrome trace-event JSON "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="reconstruct the causal span tree and append per-file "
        "critical-path + blame tables (which task/device/VM/fault owned "
        "each second of the makespan)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema'd JSON report (repro.report/1) instead of "
        "text tables; combine with --critical-path for span data",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the report (text or --json) to PATH instead of stdout",
    )
    parser.add_argument(
        "--spans-out",
        metavar="PATH",
        default=None,
        help="export the span tree + critical path as Chrome/Perfetto "
        "trace-event JSON (task tracks per VM, critical-path tiles on "
        "their own track)",
    )
    return parser


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run one job under the online adaptive controller "
        "(repro.ctrl) and print what it detected, decided, and switched.",
    )
    parser.add_argument(
        "--workload",
        default="sort",
        help="benchmark name (default: sort)",
    )
    parser.add_argument(
        "--controller",
        type=_parse_policy,
        default=None,
        metavar="POLICY",
        help="controller policy (greedy/hysteresis/bandit); omit to run "
        "the static --initial pair end to end",
    )
    parser.add_argument(
        "--initial",
        type=_parse_pair,
        default=None,
        metavar="PAIR",
        help="pair installed at job start (default: the plan's first "
        "entry, or 'cc' without a plan)",
    )
    parser.add_argument(
        "--plan",
        type=_parse_plan,
        default=None,
        metavar="PAIRS",
        help="per-phase target pairs for greedy/hysteresis, e.g. "
        "'ad,cc' (default: the paper's sort plan, ad then cc)",
    )
    parser.add_argument("--scale", type=_parse_scale, default=DEFAULT_SCALE,
                        help="data-size scale factor in (0, 1] "
                        f"(default {DEFAULT_SCALE} or $REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--hosts", type=_parse_jobs, default=4,
                        help="physical hosts (default 4)")
    parser.add_argument("--vms-per-host", type=_parse_jobs, default=4,
                        help="VMs per host (default 4)")
    parser.add_argument("--n-phases", type=int, choices=(2, 3), default=2,
                        help="phases the controller divides the job into "
                        "(default 2)")
    parser.add_argument("--faults", choices=sorted(PRESETS), default=None,
                        help="fault-injection preset (default: fault-free)")
    parser.add_argument("--storage", type=_parse_storage, default="hdd",
                        metavar="BACKEND",
                        help="storage backend name (hdd/ssd/hybrid; "
                        "default hdd, the paper's SATA spindle)")
    parser.add_argument("--ctrl-dwell", type=_parse_cost, default=0.0,
                        metavar="SECONDS",
                        help="observation dwell after a detected boundary "
                        "before deciding (default 0)")
    parser.add_argument("--ctrl-cost-factor", type=_parse_cost, default=1.0,
                        metavar="X",
                        help="multiplier on the estimated switch cost "
                        "('inf' = never switch; default 1.0)")
    parser.add_argument("--ctrl-cost-budget", type=_parse_cost, default=5.0,
                        metavar="SECONDS",
                        help="max charged switch cost hysteresis accepts "
                        "(default 5.0)")
    parser.add_argument("--ctrl-epsilon", type=_parse_cost, default=0.1,
                        metavar="EPS",
                        help="bandit exploration rate in [0, 1] (default 0.1)")
    parser.add_argument("--ctrl-arms", type=_parse_plan, default=None,
                        metavar="PAIRS",
                        help="bandit arms as pair labels, e.g. 'ad,cc' "
                        "(default: ad,cc,dd,ac)")
    return parser


def run_controlled(argv: List[str]) -> int:
    args = build_run_parser().parse_args(argv)
    from .api import ControlledScenario
    from .runner.kinds import execute_spec

    plan = args.plan
    if plan is None and args.controller in ("greedy", "hysteresis"):
        # The paper's sort plan: anticipatory/deadline for the map
        # phase, CFQ/CFQ for the tail (Table/Fig. picks).
        plan = ("ad",) + ("cc",) * (args.n_phases - 1)
    initial = args.initial
    if initial is None:
        initial = plan[0] if plan else "cc"
    try:
        scenario = ControlledScenario(
            workload=args.workload,
            scale=args.scale,
            hosts=args.hosts,
            vms_per_host=args.vms_per_host,
            n_phases=args.n_phases,
            controller=args.controller,
            initial=initial,
            phase_pairs=plan or (),
            dwell=args.ctrl_dwell,
            cost_factor=args.ctrl_cost_factor,
            cost_budget=args.ctrl_cost_budget,
            epsilon=args.ctrl_epsilon,
            arms=args.ctrl_arms or (),
            storage=args.storage,
            faults=None if args.faults in (None, "none")
            else PRESETS[args.faults],
        )
    except ValueError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    payload = execute_spec(scenario.to_spec(args.seed))
    ctrl = payload["ctrl"]
    phases = payload["phases"]
    print(f"workload:   {args.workload} (seed {args.seed}, "
          f"scale {args.scale})")
    print(f"policy:     {ctrl['policy']}")
    print(f"plan:       {' -> '.join(ctrl['plan'])}")
    print(f"duration:   {phases['end'] - phases['start']:.3f}s")
    print(f"switches:   {ctrl['n_switches']} "
          f"(stall {ctrl['switch_stall']:.3f}s)")
    for det in ctrl["detections"]:
        print(f"  detected {det['boundary']} at t={det['time']:.3f}s")
    for dec in ctrl["decisions"]:
        action = (f"switch to {dec['target']}" if dec["target"]
                  else "hold")
        print(f"  phase {dec['phase']}: {action} ({dec['reason']}; "
              f"queue depth {dec['queue_depth']:.0f}, "
              f"est cost {dec['est_cost']:.3f}s)")
    return 0


def _attach_obs_snapshot(result, out_dir: str, files_before: Set[str],
                         sweep: Optional[SweepRunner] = None) -> None:
    """Fold this experiment's capture artifacts into its result payload.

    Behind the --trace-out flag by construction: without capture the
    payload carries no ``obs`` key at all, keeping rendered output and
    cached run payloads bit-identical to the pre-observability ones.
    Alongside the merged metrics snapshot this attaches per-trace
    critical-path blame summaries (so fig-ctrl/fig-multijob can render
    *why* a plan won, not just that it did) and the sweep/cache-traffic
    counters.
    """
    from .obs.export import load_jsonl
    from .obs.spans import blame_summary, critical_path

    try:
        names = set(os.listdir(out_dir))
    except OSError:
        return
    fresh = sorted(names - files_before)
    snapshots = []
    for name in fresh:
        if not name.endswith(".metrics.json"):
            continue
        try:
            with open(os.path.join(out_dir, name), encoding="utf-8") as fh:
                snapshots.append(json.load(fh))
        except (OSError, ValueError):
            continue
    traces = [n for n in fresh if n.endswith(".trace.jsonl")]
    blame = {}
    for name in traces:
        try:
            records = load_jsonl(os.path.join(out_dir, name))
        except (OSError, ValueError):
            continue
        if records:
            blame[name] = blame_summary(critical_path(records))
    result.data["obs"] = {
        "trace_files": traces,
        "metrics": merge_snapshots(snapshots),
        "critical_path": blame,
    }
    if sweep is not None:
        result.data["obs"]["sweep"] = sweep.profiler.snapshot(
            sweep.cache_stats()
        )


def run_one(exp_id: str, sweep: SweepRunner, scale: float, seeds: tuple,
            quiet: bool = False, faults: Optional[str] = None,
            trace_out: Optional[str] = None,
            arrivals: Optional[int] = None, scheduler: Optional[str] = None,
            tenants: Optional[int] = None,
            controller: Optional[str] = None,
            storage: Optional[str] = None) -> bool:
    start = time.time()
    before = sweep.stats.snapshot()
    files_before: Set[str] = set()
    if trace_out is not None and os.path.isdir(trace_out):
        files_before = set(os.listdir(trace_out))
    fn = EXPERIMENTS[exp_id]
    params = inspect.signature(fn).parameters
    kwargs = dict(scale=scale, seeds=seeds, sweep=sweep)
    if faults is not None:
        if "faults" not in params:
            print(
                f"repro: note: {exp_id} does not take faults; "
                "--faults ignored (the figure is fault-free by construction)",
                file=sys.stderr,
            )
        else:
            kwargs["faults"] = faults
    for flag, value in (("arrivals", arrivals), ("scheduler", scheduler),
                        ("tenants", tenants), ("controller", controller),
                        ("storage", storage)):
        if value is None:
            continue
        if flag not in params:
            print(
                f"repro: note: {exp_id} does not take {flag}; "
                f"--{flag} ignored (it runs a single job by construction)",
                file=sys.stderr,
            )
        else:
            kwargs[flag] = value
    result = fn(**kwargs)
    if trace_out is not None:
        _attach_obs_snapshot(result, trace_out, files_before, sweep=sweep)
    rendered = result.render()
    delta = sweep.stats.since(before)
    print(rendered)
    if not quiet:
        print(f"(elapsed {time.time() - start:.1f}s; {delta.summary()})")
    print()
    return result.all_checks_pass


def run_report(argv: List[str]) -> int:
    args = build_report_parser().parse_args(argv)
    from .obs.report import ReportError, report_json

    try:
        if args.json:
            doc = report_json(args.trace, critical=args.critical_path,
                              spans_out=args.spans_out)
            text = json.dumps(doc, sort_keys=True, indent=1)
        else:
            text = report_path(args.trace, chrome_out=args.chrome_out,
                               critical=args.critical_path,
                               spans_out=args.spans_out)
    except (ReportError, FileNotFoundError) as exc:
        # Named errors (MissingTraceError / EmptyTraceError) exit 2
        # instead of surfacing a traceback.
        print(f"repro report: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.out is not None:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    if argv and argv[0] == "run":
        return run_controlled(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    def progress(spec: RunSpec, seconds: float) -> None:
        name = spec.label or f"{spec.kind} seed={spec.seed}"
        print(f"  ran {name} ({seconds:.1f}s)", file=sys.stderr)

    tracing = args.trace_out is not None
    use_cache = not args.no_cache and not tracing
    if tracing and not args.no_cache and not args.quiet:
        print(
            "repro: note: --trace-out bypasses the result cache so every "
            "run is simulated (and traced) fresh",
            file=sys.stderr,
        )
    renderer = None
    try:
        sweep = SweepRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=use_cache,
            progress=None if args.quiet or args.progress else progress,
        )
        if args.progress and not args.quiet:
            from .runner.telemetry import ProgressRenderer

            renderer = ProgressRenderer(jobs=sweep.jobs)
            sweep.events = renderer
    except ValueError as exc:  # e.g. a garbage $REPRO_JOBS value
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    if tracing:
        os.makedirs(args.trace_out, exist_ok=True)
        capture.enable(args.trace_out, args.trace_topics)
    ok = True
    try:
        with sweep:
            for exp_id in ids:
                ok = run_one(exp_id, sweep, args.scale, args.seeds,
                             quiet=args.quiet, faults=args.faults,
                             trace_out=args.trace_out,
                             arrivals=args.arrivals,
                             scheduler=args.scheduler,
                             tenants=args.tenants,
                             controller=args.controller,
                             storage=args.storage) and ok
            if renderer is not None:
                renderer.close()
            if not args.quiet:
                print(sweep.profile_summary(), file=sys.stderr)
    finally:
        if renderer is not None:
            renderer.close()
        if tracing:
            capture.disable()
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
