"""Command-line runner for the paper experiments.

Usage::

    python -m repro table1 --scale 0.25 --seeds 0,1,2
    python -m repro fig7a
    python -m repro all --scale 0.1 --seeds 0

Each experiment prints the table/series of its paper artifact plus its
PASS/FAIL shape checks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import DEFAULT_SCALE, EXPERIMENTS

__all__ = ["main"]


def _parse_seeds(raw: str) -> tuple:
    try:
        return tuple(int(s) for s in raw.split(",") if s != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {raw!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures in simulation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help="data-size scale factor (1.0 = paper-exact sizes; "
        f"default {DEFAULT_SCALE} or $REPRO_SCALE)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0,),
        help="comma-separated seeds to average over (default: 0)",
    )
    return parser


def run_one(exp_id: str, scale: float, seeds: tuple) -> bool:
    start = time.time()
    result = EXPERIMENTS[exp_id](scale=scale, seeds=seeds)
    print(result.render())
    print(f"(elapsed {time.time() - start:.1f}s)\n")
    return result.all_checks_pass


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    ok = True
    for exp_id in ids:
        ok = run_one(exp_id, args.scale, args.seeds) and ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
